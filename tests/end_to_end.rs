//! End-to-end accuracy and overhead floors for the full pipeline:
//! workload generator → simulated machine → RDX profiler → conversion,
//! judged against exhaustive ground truth.
//!
//! Thresholds are deliberately looser than the release-mode experiment
//! results (tests run with fewer accesses in debug builds); the real
//! numbers live in EXPERIMENTS.md.

use rdx::core::{RdxConfig, RdxRunner};
use rdx::groundtruth::ExactProfile;
use rdx::histogram::accuracy::{geometric_mean, histogram_intersection};
use rdx::traces::Granularity;
use rdx::workloads::{by_name, suite, Params};

fn accuracy_of(workload: &str, params: &Params, config: RdxConfig) -> f64 {
    let w = by_name(workload).expect("workload exists");
    let exact = ExactProfile::measure(w.stream(params), Granularity::WORD, config.binning);
    let est = RdxRunner::new(config).profile(w.stream(params));
    histogram_intersection(est.rd.as_histogram(), exact.rd.as_histogram()).expect("same binning")
}

fn test_params() -> Params {
    Params::default().with_accesses(1_500_000)
}

fn test_config() -> RdxConfig {
    RdxConfig::default().with_period(1024)
}

#[test]
fn cyclic_kernels_are_near_exact() {
    for name in ["lru_adversary", "stream_triad", "pointer_chase"] {
        let acc = accuracy_of(name, &test_params(), test_config());
        assert!(acc > 0.95, "{name}: accuracy {acc} below 0.95");
    }
}

#[test]
fn skewed_kernels_above_eighty() {
    for name in ["zipf", "gauss_hotset", "hash_probe"] {
        let acc = accuracy_of(name, &test_params(), test_config());
        assert!(acc > 0.72, "{name}: accuracy {acc} below 0.72");
    }
}

#[test]
fn suite_geo_mean_accuracy_floor() {
    let params = Params::default().with_accesses(800_000);
    let config = RdxConfig::default().with_period(512);
    let accs: Vec<f64> = suite()
        .iter()
        .map(|w| accuracy_of(w.name, &params, config).max(1e-9))
        .collect();
    let geo = geometric_mean(&accs).expect("non-empty");
    assert!(geo > 0.65, "suite geo-mean accuracy {geo} below floor");
}

#[test]
fn paper_operating_point_overhead() {
    let w = by_name("gauss_hotset").unwrap();
    let params = Params::default().with_accesses(2_000_000);
    let profile = RdxRunner::new(RdxConfig::default()).profile(w.stream(&params));
    assert!(
        profile.time_overhead < 0.08,
        "overhead {} not featherlight at period 64Ki",
        profile.time_overhead
    );
    assert!(profile.instrumentation_slowdown() > 20.0);
}

#[test]
fn profiles_are_deterministic_across_runs() {
    let w = by_name("spmv").unwrap();
    let params = Params::default().with_accesses(500_000);
    let config = RdxConfig::default().with_period(1024).with_seed(7);
    let a = RdxRunner::new(config).profile(w.stream(&params));
    let b = RdxRunner::new(config).profile(w.stream(&params));
    assert_eq!(a.rd, b.rd);
    assert_eq!(a.rt, b.rt);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.traps, b.traps);
}

#[test]
fn histogram_mass_equals_access_count() {
    let params = Params::default().with_accesses(400_000);
    let config = RdxConfig::default().with_period(1024);
    for name in ["zipf", "stencil2d", "sort_merge"] {
        let w = by_name(name).unwrap();
        let p = RdxRunner::new(config).profile(w.stream(&params));
        let total = p.rd.total_weight();
        assert!(
            (total - p.accesses as f64).abs() < 1e-6 * p.accesses as f64,
            "{name}: rd mass {total} != accesses {}",
            p.accesses
        );
    }
}

#[test]
fn m_estimate_tracks_true_distinct_count() {
    let params = Params::default().with_accesses(1_500_000);
    let config = RdxConfig::default().with_period(1024);
    for name in ["lru_adversary", "gauss_hotset"] {
        let w = by_name(name).unwrap();
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, config.binning);
        let est = RdxRunner::new(config).profile(w.stream(&params));
        let truth = exact.distinct_blocks as f64;
        assert!(
            est.m_estimate > 0.3 * truth && est.m_estimate < 3.0 * truth,
            "{name}: m̂ {} vs m {truth}",
            est.m_estimate
        );
    }
}

#[test]
fn more_samples_do_not_hurt_badly() {
    // Accuracy at a denser period should be at least comparable.
    let params = Params::default().with_accesses(1_000_000);
    let dense = accuracy_of("zipf", &params, RdxConfig::default().with_period(256));
    let sparse = accuracy_of("zipf", &params, RdxConfig::default().with_period(8192));
    assert!(
        dense > sparse - 0.15,
        "dense {dense} should not collapse vs sparse {sparse}"
    );
}
