//! Property-based invariants spanning crates: the algorithms agree with
//! brute-force oracles and with each other on arbitrary inputs.

use proptest::prelude::*;
use rdx::groundtruth::{
    brute_force_rd, footprint::direct_average_footprint, ExactProfile, FootprintCurve,
    OlkenTracker, SplayStructure, TreapStructure,
};
use rdx::histogram::accuracy::histogram_intersection;
use rdx::histogram::{Binning, MissRatioCurve};
use rdx::traces::{io, Granularity, Trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Olken's algorithm matches the O(n²) brute-force oracle on arbitrary
    /// block sequences, for every order-statistic structure.
    #[test]
    fn olken_matches_brute_force(blocks in prop::collection::vec(0u64..40, 1..250)) {
        let expect = brute_force_rd(&blocks);
        let mut fen = OlkenTracker::new();
        let mut treap = OlkenTracker::<TreapStructure>::with_structure();
        let mut splay = OlkenTracker::<SplayStructure>::with_structure();
        for (i, &b) in blocks.iter().enumerate() {
            prop_assert_eq!(fen.access(b), expect[i]);
            prop_assert_eq!(treap.access(b), expect[i]);
            prop_assert_eq!(splay.access(b), expect[i]);
        }
    }

    /// Xiang's linear-time footprint formula equals direct sliding-window
    /// measurement for every window length.
    #[test]
    fn footprint_formula_matches_direct(blocks in prop::collection::vec(0u64..25, 1..150)) {
        let trace = Trace::from_addresses("p", blocks.iter().copied());
        let fp = FootprintCurve::measure(trace.stream(), Granularity::BYTE);
        for w in 1..=blocks.len() {
            let direct = direct_average_footprint(&blocks, w);
            prop_assert!((fp.fp(w as u64) - direct).abs() < 1e-6,
                "w={} formula={} direct={}", w, fp.fp(w as u64), direct);
        }
    }

    /// Trace serialization round-trips arbitrary access sequences.
    #[test]
    fn trace_io_roundtrip(accesses in prop::collection::vec((any::<u64>(), any::<bool>()), 0..300)) {
        let trace: Trace = accesses.iter().copied().collect();
        let back = io::from_bytes(io::to_bytes(&trace)).expect("roundtrip");
        prop_assert_eq!(trace.accesses(), back.accesses());
    }

    /// Miss-ratio curves derived from exact histograms are monotone
    /// non-increasing in capacity and bounded in [floor, 1].
    #[test]
    fn mrc_monotone(blocks in prop::collection::vec(0u64..60, 1..300)) {
        let trace = Trace::from_addresses("m", blocks.iter().map(|b| b * 8));
        let exact = ExactProfile::measure(trace.stream(), Granularity::WORD, Binning::log2());
        let mrc = MissRatioCurve::from_rd_histogram(&exact.rd);
        let mut last = 1.0f64;
        for cap in 0..80u64 {
            let m = mrc.miss_ratio(cap);
            prop_assert!(m <= last + 1e-9);
            prop_assert!(m >= mrc.floor() - 1e-9);
            last = m;
        }
    }

    /// The accuracy metric is symmetric, bounded, and 1 on identity.
    #[test]
    fn accuracy_metric_properties(
        a in prop::collection::vec((0u64..1000, 0.0f64..10.0), 1..50),
        b in prop::collection::vec((0u64..1000, 0.0f64..10.0), 1..50),
    ) {
        let build = |pairs: &[(u64, f64)]| {
            let mut h = rdx::histogram::Histogram::new(Binning::log2());
            for &(v, w) in pairs {
                h.record(v, w);
            }
            h
        };
        let ha = build(&a);
        let hb = build(&b);
        let ab = histogram_intersection(&ha, &hb).unwrap();
        let ba = histogram_intersection(&hb, &ha).unwrap();
        prop_assert!((ab - ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0).contains(&ab));
        let aa = histogram_intersection(&ha, &ha).unwrap();
        if !ha.is_empty() {
            prop_assert!((aa - 1.0).abs() < 1e-9, "identity");
        }
    }

    /// Reuse-distance is granularity-monotone per access: whenever an
    /// access has a finite distance at byte granularity, its distance at
    /// line granularity is finite and no larger. (Note the converse fails:
    /// coarsening *creates* finite distances for same-line neighbours.)
    #[test]
    fn coarser_granularity_dominates_per_access(addrs in prop::collection::vec(0u64..2000, 1..300)) {
        let mut fine = OlkenTracker::new();
        let mut coarse = OlkenTracker::new();
        let mut cold_fine = 0u64;
        let mut cold_coarse = 0u64;
        for &a in &addrs {
            let df = fine.access(a);
            let dc = coarse.access(a >> 6);
            match (df.value(), dc.value()) {
                (Some(f), Some(c)) => prop_assert!(c <= f, "coarse {} > fine {}", c, f),
                (Some(_), None) => prop_assert!(false, "coarse reuse must exist when fine does"),
                (None, _) => cold_fine += 1,
            }
            if dc.is_infinite() {
                cold_coarse += 1;
            }
        }
        prop_assert!(cold_coarse <= cold_fine);
        prop_assert!(coarse.distinct_blocks() <= fine.distinct_blocks());
    }
}

/// Historical shrink from `proptest_invariants.proptest-regressions`,
/// pinned as an explicit case because the vendored proptest shim does not
/// replay that file: a 2^62 address delta zigzags into the top bit of a
/// u64, and with the kind bit appended the record only fits a u128
/// varint — the widest record the codec must round-trip.
#[test]
fn regression_trace_io_roundtrip_two_pow_62_delta() {
    let accesses = [(0u64, false), (4_611_686_018_427_387_904u64, false)];
    let trace: Trace = accesses.iter().copied().collect();
    let back = io::from_bytes(io::to_bytes(&trace)).expect("roundtrip");
    assert_eq!(trace.accesses(), back.accesses());
}
