//! Cross-crate pipeline integration: traces through serialization,
//! ground truth through cache prediction, baselines against exact
//! measurement — everything that must agree when crates are composed.

use rdx::baselines::{FullInstrumentation, Shards};
use rdx::cache::{hierarchy, predict, CacheConfig, SetAssociativeCache};
use rdx::groundtruth::{ExactProfile, FootprintCurve};
use rdx::histogram::accuracy::histogram_intersection;
use rdx::histogram::{Binning, MissRatioCurve};
use rdx::traces::{io, AccessStream, Granularity, Trace, TraceStats};
use rdx::workloads::{by_name, Params};

fn small_params() -> Params {
    Params::default()
        .with_accesses(200_000)
        .with_elements(5_000)
}

#[test]
fn workload_trace_io_roundtrip_preserves_profile() {
    let w = by_name("hash_probe").unwrap();
    let params = small_params();
    let trace = Trace::from_stream(w.name, w.stream(&params));
    let bytes = io::to_bytes(&trace);
    let back = io::from_bytes(bytes).expect("valid trace bytes");
    assert_eq!(trace.accesses(), back.accesses());
    let a = ExactProfile::measure(trace.stream(), Granularity::WORD, Binning::log2());
    let b = ExactProfile::measure(back.stream(), Granularity::WORD, Binning::log2());
    assert_eq!(a.rd, b.rd);
    assert_eq!(a.rt, b.rt);
}

#[test]
fn mrc_prediction_matches_fully_associative_simulation() {
    // A fully-associative LRU cache (1 set) must match the Mattson
    // prediction from exact reuse distances *at the same granularity*.
    let w = by_name("zipf").unwrap();
    let params = small_params();
    let exact = ExactProfile::measure(
        w.stream(&params),
        Granularity::CACHE_LINE,
        Binning::linear(1),
    );
    let mrc = MissRatioCurve::from_rd_histogram(&exact.rd);
    for lines in [64u64, 256, 1024] {
        let config = CacheConfig {
            name: "fa",
            capacity_bytes: lines * 64,
            ways: u32::try_from(lines).unwrap(),
            line_bytes: 64,
        };
        let mut cache = SetAssociativeCache::new(config);
        let sim = cache.simulate(w.stream(&params));
        let predicted = mrc.miss_ratio(lines);
        assert!(
            (predicted - sim.miss_ratio()).abs() < 0.02,
            "{lines} lines: predicted {predicted} vs simulated {}",
            sim.miss_ratio()
        );
    }
}

#[test]
fn full_instrumentation_baseline_is_exact() {
    let w = by_name("sawtooth").unwrap();
    let params = small_params();
    let mut tool = FullInstrumentation::new();
    tool.granularity = Granularity::WORD;
    let full = tool.profile(w.stream(&params));
    let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2());
    let acc = histogram_intersection(full.rd.as_histogram(), exact.rd.as_histogram()).unwrap();
    assert!(
        (acc - 1.0).abs() < 1e-9,
        "full instrumentation must be exact"
    );
}

#[test]
fn shards_converges_to_exact_with_rate() {
    let w = by_name("random_uniform").unwrap();
    let params = Params::default()
        .with_accesses(300_000)
        .with_elements(3_000);
    let exact = ExactProfile::measure(
        w.stream(&params),
        Granularity::default(),
        Binning::default(),
    );
    let acc_at = |rate: f64| {
        let p = Shards::new(rate).profile(w.stream(&params));
        histogram_intersection(p.rd.as_histogram(), exact.rd.as_histogram()).unwrap()
    };
    let coarse = acc_at(0.01);
    let fine = acc_at(0.3);
    assert!(
        fine > coarse - 0.02,
        "more sampling must not hurt: {fine} vs {coarse}"
    );
    assert!(
        fine > 0.9,
        "30% spatial sampling should be near-exact: {fine}"
    );
}

#[test]
fn footprint_theory_predicts_cyclic_distance() {
    // fp(k) over a cyclic trace of k blocks equals k; conversion from time
    // to distance is exact for cycles. Ties groundtruth::footprint to the
    // reuse-distance semantics end to end.
    let k = 500u64;
    let trace = Trace::from_addresses("cycle", (0..20_000u64).map(|i| (i % k) * 8));
    let fp = FootprintCurve::measure(trace.stream(), Granularity::BYTE);
    for w in [1, k / 2, k] {
        assert!(
            (fp.fp(w) - w as f64).abs() < 1e-6,
            "fp({w}) = {} for a {k}-cycle",
            fp.fp(w)
        );
    }
    let exact = ExactProfile::measure(trace.stream(), Granularity::BYTE, Binning::linear(1));
    // all finite reuses at distance k−1
    assert_eq!(
        exact.rd.as_histogram().weight_for(k - 1),
        (20_000 - k) as f64
    );
}

#[test]
fn per_level_prediction_ordering() {
    // Larger caches can only lower the predicted miss ratio.
    let w = by_name("phased").unwrap();
    let exact = ExactProfile::measure(
        w.stream(&small_params()),
        Granularity::WORD,
        Binning::log2(),
    );
    let levels = hierarchy();
    let p = predict::miss_ratios(&exact.rd, &levels, 8);
    assert!(p[0].miss_ratio >= p[1].miss_ratio - 1e-9);
    assert!(p[1].miss_ratio >= p[2].miss_ratio - 1e-9);
}

#[test]
fn trace_stats_consistent_with_exact_profile() {
    let w = by_name("spmv").unwrap();
    let params = small_params();
    let stats = TraceStats::measure(w.stream(&params), Granularity::WORD);
    let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2());
    assert_eq!(stats.accesses, exact.accesses);
    assert_eq!(stats.distinct_blocks, exact.distinct_blocks);
    assert_eq!(exact.rd.cold_weight(), exact.distinct_blocks as f64);
}

#[test]
fn streams_replay_identically_across_granularities() {
    let w = by_name("stencil3d").unwrap();
    let params = small_params();
    let mut a = w.stream(&params);
    let mut b = w.stream(&params);
    loop {
        match (a.next_access(), b.next_access()) {
            (None, None) => break,
            (x, y) => assert_eq!(x, y),
        }
    }
}
