//! Cache-level presets.

use rdx_trace::Granularity;

/// One cache level's geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Human-readable level name ("L1", "LLC", …).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Capacity in lines.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways × line` sets).
    #[must_use]
    pub fn sets(&self) -> u64 {
        let sets = self.lines() / u64::from(self.ways);
        assert!(
            sets > 0 && sets * u64::from(self.ways) * self.line_bytes == self.capacity_bytes,
            "inconsistent cache geometry: {self:?}"
        );
        sets
    }

    /// The line granularity of this cache.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        Granularity::from_block_bytes(self.line_bytes)
    }

    /// Capacity expressed in *elements* of `elem_bytes` (for comparing
    /// against reuse-distance histograms measured at element granularity).
    #[must_use]
    pub fn capacity_elements(&self, elem_bytes: u64) -> u64 {
        self.capacity_bytes / elem_bytes
    }
}

/// A typical three-level server hierarchy at 64-byte lines:
/// 32 KiB 8-way L1, 1 MiB 16-way L2, 32 MiB 16-way LLC.
#[must_use]
pub fn hierarchy() -> [CacheConfig; 3] {
    [
        CacheConfig {
            name: "L1",
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
        },
        CacheConfig {
            name: "L2",
            capacity_bytes: 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        },
        CacheConfig {
            name: "LLC",
            capacity_bytes: 32 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_geometry() {
        let [l1, l2, llc] = hierarchy();
        assert_eq!(l1.lines(), 512);
        assert_eq!(l1.sets(), 64);
        assert_eq!(l2.lines(), 16 * 1024);
        assert_eq!(llc.lines(), 512 * 1024);
        assert_eq!(l1.granularity().block_bytes(), 64);
        assert_eq!(l1.capacity_elements(8), 4096);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn bad_geometry_detected() {
        let bad = CacheConfig {
            name: "bad",
            capacity_bytes: 1000, // not ways × lines × sets
            ways: 8,
            line_bytes: 64,
        };
        let _ = bad.sets();
    }
}
