//! Cache modeling on top of reuse-distance histograms.
//!
//! Reuse distance is the machine-independent locality metric precisely
//! because it predicts cache behaviour: an access with reuse distance `d`
//! hits in a fully-associative LRU cache of capacity `> d`. This crate
//! closes the loop for the characterization experiments (T3):
//!
//! * [`CacheConfig`] / [`hierarchy`] — cache-level presets (sizes in
//!   blocks) matching a typical server part (32 KiB L1 / 1 MiB L2 /
//!   32 MiB LLC at 64-byte lines).
//! * [`SetAssociativeCache`] — an actual set-associative LRU cache
//!   simulator, used to cross-validate miss ratios predicted from
//!   reuse-distance histograms (exact and RDX-estimated).
//! * [`predict`] — glue from [`RdHistogram`]s to per-level miss ratios via
//!   [`MissRatioCurve`].
//!
//! [`MissRatioCurve`]: rdx_histogram::MissRatioCurve
//! [`RdHistogram`]: rdx_histogram::RdHistogram

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod predict;
mod simulator;

pub use config::{hierarchy, CacheConfig};
pub use simulator::{SetAssociativeCache, SimResult};
