//! Miss-ratio prediction from reuse-distance histograms.

use crate::config::CacheConfig;
use rdx_histogram::{MissRatioCurve, RdHistogram};

/// Predicted miss ratio for one cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelPrediction {
    /// The level's name (from its [`CacheConfig`]).
    pub name: &'static str,
    /// Capacity used for the lookup, in histogram-granularity blocks.
    pub capacity_blocks: u64,
    /// Predicted LRU miss ratio at that capacity.
    pub miss_ratio: f64,
}

/// Predicts per-level miss ratios from a reuse-distance histogram.
///
/// `block_bytes` is the granularity the histogram was measured at (8 for
/// word-granular profiles); each cache's capacity is converted into that
/// unit before the lookup. Predictions assume full associativity — compare
/// with [`SetAssociativeCache`] simulation to see conflict effects.
///
/// [`SetAssociativeCache`]: crate::SetAssociativeCache
#[must_use]
pub fn miss_ratios(
    rd: &RdHistogram,
    levels: &[CacheConfig],
    block_bytes: u64,
) -> Vec<LevelPrediction> {
    let mrc = MissRatioCurve::from_rd_histogram(rd);
    levels
        .iter()
        .map(|level| {
            let capacity_blocks = level.capacity_elements(block_bytes);
            LevelPrediction {
                name: level.name,
                capacity_blocks,
                miss_ratio: mrc.miss_ratio(capacity_blocks),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::hierarchy;
    use rdx_histogram::{Binning, ReuseDistance};

    fn rd_with(pairs: &[(u64, f64)], cold: f64) -> RdHistogram {
        let mut h = RdHistogram::new(Binning::log2());
        for &(d, w) in pairs {
            h.record(ReuseDistance::finite(d), w);
        }
        if cold > 0.0 {
            h.record(ReuseDistance::INFINITE, cold);
        }
        h
    }

    #[test]
    fn small_distances_hit_everywhere() {
        // all reuses at distance 10 (words): fits even in L1 (4096 words)
        let rd = rd_with(&[(10, 100.0)], 1.0);
        let p = miss_ratios(&rd, &hierarchy(), 8);
        assert_eq!(p.len(), 3);
        assert!(p[0].miss_ratio < 0.05, "L1 {}", p[0].miss_ratio);
        assert!(p[2].miss_ratio < 0.05, "LLC {}", p[2].miss_ratio);
    }

    #[test]
    fn mid_distances_miss_l1_hit_llc() {
        // distance 100k words: beyond L1 (4096) and L2 (128Ki? 1MiB/8 =
        // 131072), within LLC (4Mi words)
        let rd = rd_with(&[(100_000, 100.0)], 0.0);
        let p = miss_ratios(&rd, &hierarchy(), 8);
        assert!(p[0].miss_ratio > 0.95, "L1 must miss");
        assert!(p[2].miss_ratio < 0.05, "LLC must hit");
    }

    #[test]
    fn cold_floor_applies_to_all_levels() {
        let rd = rd_with(&[(1, 50.0)], 50.0);
        let p = miss_ratios(&rd, &hierarchy(), 8);
        for level in &p {
            assert!(
                (level.miss_ratio - 0.5).abs() < 0.05 || level.miss_ratio >= 0.5,
                "{level:?}"
            );
        }
        assert!((p[2].miss_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn capacity_conversion_uses_block_bytes() {
        let rd = rd_with(&[(5000, 1.0)], 0.0);
        let line_granular = miss_ratios(&rd, &hierarchy(), 64);
        let word_granular = miss_ratios(&rd, &hierarchy(), 8);
        // at 64B blocks L1 holds 512 blocks; at 8B it holds 4096
        assert_eq!(line_granular[0].capacity_blocks, 512);
        assert_eq!(word_granular[0].capacity_blocks, 4096);
        assert!(line_granular[0].miss_ratio >= word_granular[0].miss_ratio);
    }
}
