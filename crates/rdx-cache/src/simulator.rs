//! A set-associative LRU cache simulator.

use crate::config::CacheConfig;
use rdx_trace::AccessStream;

/// Result of simulating a stream through a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Accesses simulated.
    pub accesses: u64,
    /// Misses (including cold misses).
    pub misses: u64,
}

impl SimResult {
    /// Miss ratio (0 for an empty run).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Used to validate miss ratios predicted from reuse-distance histograms:
/// the prediction assumes full associativity, and the simulator quantifies
/// how much real set conflicts deviate from it.
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    config: CacheConfig,
    sets: u64,
    /// Per-set ways, storing line tags; index 0 is MRU.
    lines: Vec<Vec<u64>>,
}

impl SetAssociativeCache {
    /// Builds an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        SetAssociativeCache {
            config,
            sets,
            lines: vec![Vec::with_capacity(config.ways as usize); sets as usize],
        }
    }

    /// The cache's geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accesses one byte address; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.config.line_bytes;
        let set = (line % self.sets) as usize;
        let ways = &mut self.lines[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // move to MRU
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            return true;
        }
        if ways.len() == self.config.ways as usize {
            ways.pop(); // evict LRU
        }
        ways.insert(0, line);
        false
    }

    /// Simulates a whole stream, counting misses.
    pub fn simulate(&mut self, mut stream: impl AccessStream) -> SimResult {
        let mut result = SimResult {
            accesses: 0,
            misses: 0,
        };
        while let Some(a) = stream.next_access() {
            result.accesses += 1;
            if !self.access(a.addr.raw()) {
                result.misses += 1;
            }
        }
        result
    }

    /// Resets the cache to empty, keeping the geometry.
    pub fn clear(&mut self) {
        for set in &mut self.lines {
            set.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    fn tiny_cache(ways: u32, sets: u64) -> SetAssociativeCache {
        SetAssociativeCache::new(CacheConfig {
            name: "tiny",
            capacity_bytes: u64::from(ways) * sets * 64,
            ways,
            line_bytes: 64,
        })
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny_cache(2, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 ways, 1 set: lines 0, 1 fill it; touching 0 keeps it MRU, so
        // line 2 evicts line 1.
        let mut c = tiny_cache(2, 1);
        c.access(0);
        c.access(64);
        c.access(0);
        c.access(128); // evicts line 1 (LRU)
        assert!(c.access(0), "line 0 must survive");
        assert!(!c.access(64), "line 1 was evicted");
    }

    #[test]
    fn set_conflicts_miss_despite_capacity() {
        // 1 way, 2 sets: lines 0 and 2 map to set 0 and conflict even
        // though the cache has 2 lines of capacity.
        let mut c = tiny_cache(1, 2);
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(!c.access(0), "conflict miss");
    }

    #[test]
    fn simulate_cyclic_working_set() {
        // 8-line fully-assoc-ish cache (8 ways, 1 set); loop over 4 lines
        // fits entirely → only 4 cold misses.
        let mut c = tiny_cache(8, 1);
        let trace = Trace::from_addresses("fit", (0..1000u64).map(|i| (i % 4) * 64));
        let r = c.simulate(trace.stream());
        assert_eq!(r.misses, 4);
        assert!((r.miss_ratio() - 0.004).abs() < 1e-12);
        // loop over 16 lines thrashes LRU → ~100% misses
        let mut c2 = tiny_cache(8, 1);
        let trace2 = Trace::from_addresses("thrash", (0..1600u64).map(|i| (i % 16) * 64));
        let r2 = c2.simulate(trace2.stream());
        assert_eq!(r2.misses, 1600, "LRU thrashes a larger-than-cache loop");
    }

    #[test]
    fn clear_resets_contents() {
        let mut c = tiny_cache(2, 2);
        c.access(0);
        c.clear();
        assert!(!c.access(0));
    }

    #[test]
    fn empty_sim() {
        let mut c = tiny_cache(2, 2);
        let r = c.simulate(Trace::new("e").stream());
        assert_eq!(r.miss_ratio(), 0.0);
    }
}
