// rdx-lint-allow: forbid-unsafe — fixture: suppression must silence the root-attr check
//! Suppressed fixture crate: the dirty patterns, each individually allowed.

mod hot;
mod registry;

use std::collections::HashMap; // rdx-lint-allow: hash-collections — fixture
use std::time::Instant;

pub fn nondeterministic(values: &[u64]) -> usize {
    let mut m = HashMap::new();
    for &v in values {
        m.insert(v, ());
    }
    m.len()
}

pub fn wall_clock() -> Instant {
    Instant::now() // rdx-lint-allow: wall-clock — fixture
}

pub fn entropy() -> u64 {
    thread_rng().next_u64() // rdx-lint-allow: entropy-rng — fixture
}

pub fn badly_named_counter() {
    // rdx-lint-allow: metrics-name, metrics-manifest — fixture
    rdx_metrics::counter("Bad Name").incr();
}

pub fn backpressure_free_queue() -> usize {
    // rdx-lint-allow: unbounded-channel — fixture
    let (tx, rx) = crossbeam::channel::unbounded::<u64>();
    tx.send(1).ok();
    rx.try_recv().map_or(0, |_| 1)
}

pub fn escape_hatch(p: *const u64) -> u64 {
    unsafe { *p } // rdx-lint-allow: unsafe-confinement — fixture
}
