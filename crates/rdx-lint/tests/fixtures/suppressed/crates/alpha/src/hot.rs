//! Hot-path module with an allowed panic site.

pub fn first(values: &[u64]) -> u64 {
    // rdx-lint-allow: no-panic — fixture: callers guarantee non-empty
    *values.first().unwrap()
}
