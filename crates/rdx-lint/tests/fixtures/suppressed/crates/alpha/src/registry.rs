//! The dirty registry pattern (uncovered workload), suppressed.

spec!(alpha_stream, "stream", "covered");
spec!(alpha_random, "random", "uncovered"); // rdx-lint-allow: registry-coverage — fixture
