//! The dirty coverage patterns (duplicate + stale entry), suppressed.

affine!(alpha_stream);
affine!(alpha_stream); // rdx-lint-allow: registry-coverage — fixture
// rdx-lint-allow: registry-coverage — fixture
non_affine!(alpha_ghost, "stale");
