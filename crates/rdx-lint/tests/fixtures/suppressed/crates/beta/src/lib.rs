//! Base-layer fixture crate: the `deny` downgrade, justified.

// rdx-lint-allow: forbid-unsafe — fixture: justified deny must be accepted
#![deny(unsafe_code)]

mod coverage;

/// Nothing to see here.
pub fn id(x: u64) -> u64 {
    x
}
