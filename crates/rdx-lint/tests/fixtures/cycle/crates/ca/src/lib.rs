//! Half of a dependency cycle.

#![forbid(unsafe_code)]

/// Nothing to see here.
pub fn a(x: u64) -> u64 {
    x
}
