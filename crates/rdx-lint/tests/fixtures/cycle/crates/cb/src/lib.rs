//! The other half of a dependency cycle.

#![forbid(unsafe_code)]

/// Nothing to see here.
pub fn b(x: u64) -> u64 {
    x
}
