//! Hot-path module: must stay panic-free.

/// Returns the first element without panicking.
pub fn first(values: &[u64]) -> Option<u64> {
    values.first().copied()
}
