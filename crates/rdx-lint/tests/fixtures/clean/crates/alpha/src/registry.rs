//! Mini workload registry, mirroring the `spec!` shape the
//! `registry-coverage` lint scans for. Every entry here has a matching
//! coverage marker in `beta/src/coverage.rs`.

spec!(alpha_stream, "stream", "sequential sweep");
spec!(alpha_random, "random", "uniform random probes");
