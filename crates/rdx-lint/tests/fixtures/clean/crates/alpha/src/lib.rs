//! Clean fixture crate: satisfies every lint.

#![forbid(unsafe_code)]

mod hot;
mod registry;

use std::collections::BTreeMap;

/// Deterministic map use: `BTreeMap` is always fine in hot crates.
pub fn histogram(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
        rdx_metrics::counter("rdx.alpha.events").incr();
    }
    out
}

#[cfg(test)]
mod tests {
    // Test code is exempt everywhere: none of these may fire.
    use std::collections::HashMap;

    #[test]
    fn exempt() {
        let mut m = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.get(&1).copied().unwrap(), 2);
        let _t = std::time::Instant::now();
    }
}
