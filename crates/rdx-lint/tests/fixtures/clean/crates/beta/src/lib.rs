//! Base-layer fixture crate.

#![forbid(unsafe_code)]

mod coverage;

/// Nothing to see here.
pub fn id(x: u64) -> u64 {
    x
}
