//! Static-coverage markers: exactly one entry per workload declared in
//! `alpha/src/registry.rs`, none stale, none duplicated.

affine!(alpha_stream);
non_affine!(alpha_random, "entropy-driven address sequence");
