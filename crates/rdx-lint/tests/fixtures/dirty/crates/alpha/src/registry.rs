//! Mini workload registry: `alpha_random` has no coverage marker in
//! `beta/src/coverage.rs`, so `registry-coverage` must flag it here.

spec!(alpha_stream, "stream", "covered: affine marker exists");
spec!(alpha_random, "random", "uncovered: no marker in beta");
