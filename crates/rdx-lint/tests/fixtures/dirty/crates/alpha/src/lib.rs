//! Dirty fixture crate: trips every source-level lint.
//! (Deliberately no `#![forbid(unsafe_code)]` — that is one of them.)

mod hot;
mod registry;

use std::collections::HashMap;
use std::time::Instant;

pub fn nondeterministic(values: &[u64]) -> usize {
    let mut m = HashMap::new();
    for &v in values {
        m.insert(v, ());
    }
    m.len()
}

pub fn wall_clock() -> Instant {
    Instant::now()
}

pub fn entropy() -> u64 {
    thread_rng().next_u64()
}

pub fn badly_named_counter() {
    rdx_metrics::counter("Bad Name").incr();
}

pub fn backpressure_free_queue() -> usize {
    let (tx, rx) = crossbeam::channel::unbounded::<u64>();
    tx.send(1).ok();
    rx.try_recv().map_or(0, |_| 1)
}

pub fn escape_hatch(p: *const u64) -> u64 {
    unsafe { *p }
}
