//! Hot-path module with a forbidden panic site.

pub fn first(values: &[u64]) -> u64 {
    *values.first().unwrap()
}
