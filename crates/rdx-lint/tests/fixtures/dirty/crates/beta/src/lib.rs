//! Base-layer fixture crate — its manifest sins (upward edge), and its
//! root downgrades `forbid(unsafe_code)` to `deny` without a justification.

#![deny(unsafe_code)]

mod coverage;

/// Nothing to see here.
pub fn id(x: u64) -> u64 {
    x
}
