//! Base-layer fixture crate — clean on its own; only its manifest sins.

#![forbid(unsafe_code)]

/// Nothing to see here.
pub fn id(x: u64) -> u64 {
    x
}
