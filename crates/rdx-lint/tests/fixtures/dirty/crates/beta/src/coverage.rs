//! Static-coverage markers tripping the other two `registry-coverage`
//! shapes: a duplicate entry and a stale one naming no workload.

affine!(alpha_stream);
affine!(alpha_stream);
non_affine!(alpha_ghost, "stale: workload was removed from alpha");
