//! Fixture suite: four mini-workspaces under `tests/fixtures/` exercise
//! every lint both ways (one violating pattern per lint, and the same
//! patterns individually suppressed), plus the layering cycle detector.
//! Each fixture is checked twice — through the library API (so
//! individual violations can be asserted) and through the built binary
//! (so the documented exit codes are pinned).

use rdx_lint::{check_workspace, Lint, LintConfig};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The configuration shared by the `clean`/`dirty`/`suppressed`
/// fixtures: `alpha` (layer 1) is hot with hot-path file `hot.rs` and
/// the workload registry, `beta` is the base layer carrying the
/// static-coverage markers, counters live in `counters.txt`.
fn alpha_config() -> LintConfig {
    LintConfig {
        hot_crates: vec!["alpha".into()],
        hot_path_files: vec![("alpha".into(), "hot.rs".into())],
        layers: vec![("alpha".into(), 1), ("beta".into(), 0)],
        counters_manifest: Some("counters.txt".into()),
        registry_coverage: Some(("alpha".into(), "beta".into())),
        ..LintConfig::default()
    }
}

#[test]
fn clean_fixture_is_clean() {
    let violations = check_workspace(&fixture("clean"), &alpha_config()).unwrap();
    assert!(
        violations.is_empty(),
        "clean fixture flagged:\n{}",
        rdx_lint::render(&violations)
    );
}

#[test]
fn dirty_fixture_trips_every_lint() {
    let violations = check_workspace(&fixture("dirty"), &alpha_config()).unwrap();
    let tripped: BTreeSet<Lint> = violations.iter().map(|v| v.lint).collect();
    let all: BTreeSet<Lint> = Lint::ALL.into_iter().collect();
    assert_eq!(
        tripped,
        all,
        "dirty fixture must trip every lint; got:\n{}",
        rdx_lint::render(&violations)
    );
    // One pattern per lint, except layering (upward edge + unknown dep),
    // metrics-manifest (undeclared counter + stale entry) and
    // forbid-unsafe (alpha's missing attr + beta's unjustified deny)
    // which carry two each, and registry-coverage (uncovered workload +
    // stale marker + duplicate marker) which carries three.
    assert_eq!(violations.len(), 16, "{}", rdx_lint::render(&violations));
}

#[test]
fn dirty_fixture_flags_the_expected_sites() {
    let violations = check_workspace(&fixture("dirty"), &alpha_config()).unwrap();
    let has = |lint: Lint, path_part: &str| {
        violations
            .iter()
            .any(|v| v.lint == lint && v.file.to_string_lossy().contains(path_part))
    };
    assert!(has(Lint::HashCollections, "alpha/src/lib.rs"));
    assert!(has(Lint::WallClock, "alpha/src/lib.rs"));
    assert!(has(Lint::EntropyRng, "alpha/src/lib.rs"));
    assert!(has(Lint::NoPanic, "alpha/src/hot.rs"));
    assert!(has(Lint::UnboundedChannel, "alpha/src/lib.rs"));
    assert!(has(Lint::ForbidUnsafe, "alpha/src/lib.rs")); // missing attr
    assert!(has(Lint::ForbidUnsafe, "beta/src/lib.rs")); // unjustified deny
    assert!(has(Lint::UnsafeConfinement, "alpha/src/lib.rs"));
    assert!(has(Lint::MetricsName, "alpha/src/lib.rs"));
    assert!(has(Lint::MetricsManifest, "alpha/src/lib.rs")); // undeclared
    assert!(has(Lint::MetricsManifest, "counters.txt")); // stale entry
    assert!(has(Lint::Layering, "alpha/Cargo.toml")); // unknown dep
    assert!(has(Lint::Layering, "beta/Cargo.toml")); // upward edge
    assert!(has(Lint::RegistryCoverage, "alpha/src/registry.rs")); // uncovered
    assert!(has(Lint::RegistryCoverage, "beta/src/coverage.rs")); // stale + duplicate
    let coverage_msgs: Vec<&str> = violations
        .iter()
        .filter(|v| v.lint == Lint::RegistryCoverage)
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(coverage_msgs.len(), 3, "{coverage_msgs:?}");
    assert!(coverage_msgs.iter().any(|m| m.contains("alpha_random")));
    assert!(coverage_msgs.iter().any(|m| m.contains("alpha_ghost")));
    assert!(coverage_msgs.iter().any(|m| m.contains("duplicate")));
}

#[test]
fn suppressed_fixture_is_clean() {
    let violations = check_workspace(&fixture("suppressed"), &alpha_config()).unwrap();
    assert!(
        violations.is_empty(),
        "every violation carries an allow directive, yet:\n{}",
        rdx_lint::render(&violations)
    );
}

#[test]
fn cycle_fixture_reports_the_cycle() {
    // No layer map: the cycle check runs regardless of layering config.
    let violations = check_workspace(&fixture("cycle"), &LintConfig::default()).unwrap();
    assert_eq!(violations.len(), 1, "{}", rdx_lint::render(&violations));
    assert_eq!(violations[0].lint, Lint::Layering);
    assert!(
        violations[0].message.contains("dependency cycle"),
        "unexpected message: {}",
        violations[0].message
    );
}

// ---- binary exit codes ----------------------------------------------

/// Runs the built `rdx-lint` binary on a fixture with the
/// `alpha_config` equivalent expressed as command-line overrides.
fn run_binary(fixture_name: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rdx-lint"))
        .args([
            "check",
            "--no-default-config",
            "--root",
            fixture(fixture_name).to_str().expect("utf-8 path"),
            "--hot-crate",
            "alpha",
            "--hot-path",
            "alpha/hot.rs",
            "--layer",
            "alpha=1",
            "--layer",
            "beta=0",
            "--counters-manifest",
            "counters.txt",
            "--registry-coverage",
            "alpha=beta",
        ])
        .output()
        .expect("spawn rdx-lint")
}

#[test]
fn binary_exits_zero_on_clean_and_suppressed() {
    for name in ["clean", "suppressed"] {
        let out = run_binary(name);
        assert_eq!(
            out.status.code(),
            Some(0),
            "fixture `{name}`:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn binary_exits_one_on_violations() {
    let out = run_binary("dirty");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for lint in Lint::ALL {
        assert!(
            stdout.contains(&format!("[{}]", lint.name())),
            "missing [{}] in:\n{stdout}",
            lint.name()
        );
    }
}

#[test]
fn binary_exits_one_on_cycle() {
    let out = Command::new(env!("CARGO_BIN_EXE_rdx-lint"))
        .args([
            "check",
            "--no-default-config",
            "--root",
            fixture("cycle").to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("spawn rdx-lint");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("dependency cycle"));
}

#[test]
fn binary_exits_two_on_missing_root() {
    let out = Command::new(env!("CARGO_BIN_EXE_rdx-lint"))
        .args(["check", "--root", "/nonexistent/rdx-lint-fixture"])
        .output()
        .expect("spawn rdx-lint");
    assert_eq!(out.status.code(), Some(2));
}
