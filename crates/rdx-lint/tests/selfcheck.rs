//! Self-check: the live RDX workspace must satisfy every invariant
//! under the default configuration — the same check CI runs via
//! `cargo run -p rdx-lint -- check`. If this fails, either fix the
//! flagged code or add a justified `rdx-lint-allow` directive.

use rdx_lint::{check_workspace, LintConfig};
use std::path::Path;

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let violations = check_workspace(&root, &LintConfig::rdx_default()).unwrap();
    assert!(
        violations.is_empty(),
        "the workspace violates its own invariants:\n{}",
        rdx_lint::render(&violations)
    );
}
