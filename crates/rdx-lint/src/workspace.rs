//! Workspace discovery: crates, manifests, and lexed sources.

use crate::lexer::{lex, strip_cfg_test, LexedFile, Tok};
use crate::manifest::{self, Manifest};
use std::io;
use std::path::{Path, PathBuf};

/// One `.rs` file, lexed and test-stripped.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (for reporting).
    pub rel_path: PathBuf,
    /// File name only (`machine.rs`), for hot-path matching.
    pub file_name: String,
    /// Lexed tokens and suppression directives for the whole file.
    pub lexed: LexedFile,
    /// Tokens with `#[cfg(test)]` items removed — what lints scan.
    pub tokens: Vec<Tok>,
}

/// One workspace member under `crates/`.
#[derive(Debug)]
pub struct CrateSrc {
    /// The crate's package name (falls back to its directory name).
    pub name: String,
    /// `Cargo.toml` path relative to the workspace root.
    pub manifest_rel_path: PathBuf,
    /// Parsed manifest subset.
    pub manifest: Manifest,
    /// All sources under `src/`, recursively, sorted by path.
    pub files: Vec<SourceFile>,
    /// Index into `files` of the crate root (`src/lib.rs`, else
    /// `src/main.rs`), if present.
    pub root_file: Option<usize>,
}

/// Loads every crate under `<root>/crates/*` that has a `Cargo.toml`.
///
/// Crates and files are sorted by name so diagnostics are independent
/// of directory-iteration order.
///
/// # Errors
///
/// Propagates I/O failures reading the tree.
pub fn load(root: &Path) -> io::Result<Vec<CrateSrc>> {
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    dirs.iter().map(|dir| load_crate(root, dir)).collect()
}

fn load_crate(root: &Path, dir: &Path) -> io::Result<CrateSrc> {
    let manifest_path = dir.join("Cargo.toml");
    let manifest = manifest::parse(&std::fs::read_to_string(&manifest_path)?);
    let name = manifest.name.clone().unwrap_or_else(|| {
        dir.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    });

    let mut rs_paths = Vec::new();
    collect_rs(&dir.join("src"), &mut rs_paths)?;
    rs_paths.sort();

    let mut files = Vec::with_capacity(rs_paths.len());
    for path in &rs_paths {
        let lexed = lex(&std::fs::read_to_string(path)?);
        let tokens = strip_cfg_test(&lexed.tokens);
        files.push(SourceFile {
            rel_path: rel(root, path),
            file_name: path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
            lexed,
            tokens,
        });
    }

    let root_file = ["lib.rs", "main.rs"].iter().find_map(|want| {
        files.iter().position(|f| {
            f.file_name == *want
                && f.rel_path.parent().and_then(Path::file_name)
                    == Some(std::ffi::OsStr::new("src"))
        })
    });

    Ok(CrateSrc {
        name,
        manifest_rel_path: rel(root, &manifest_path),
        manifest,
        files,
        root_file,
    })
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}
