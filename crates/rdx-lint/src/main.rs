//! The `rdx-lint` binary: `check` the workspace, `list` the catalog.
//!
//! ```text
//! rdx-lint check [--root PATH] [--no-default-config]
//!                [--hot-crate NAME]... [--clock-exempt NAME]...
//!                [--metrics-exempt NAME]... [--hot-path CRATE/FILE]...
//!                [--layer NAME=N]... [--external NAME]...
//!                [--counters-manifest PATH]
//!                [--registry-coverage REGISTRY=COVERAGE]
//! rdx-lint list
//! ```
//!
//! With no overrides, `check` runs the RDX workspace configuration
//! (`LintConfig::rdx_default`) against the current directory. The
//! override flags exist for the fixture tests and for linting
//! out-of-tree workspaces; `--no-default-config` starts from an empty
//! configuration instead of the RDX one.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use rdx_lint::{check_workspace, Lint, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rdx-lint check [--root PATH] [--no-default-config]\n\
         \u{20}                     [--hot-crate NAME]... [--clock-exempt NAME]...\n\
         \u{20}                     [--metrics-exempt NAME]... [--hot-path CRATE/FILE]...\n\
         \u{20}                     [--layer NAME=N]... [--external NAME]...\n\
         \u{20}                     [--counters-manifest PATH]\n\
         \u{20}                     [--registry-coverage REGISTRY=COVERAGE]\n\
         \u{20}      rdx-lint list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            for lint in Lint::ALL {
                println!("{:<18} {}", lint.name(), lint.describe());
            }
            ExitCode::SUCCESS
        }
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config = LintConfig::rdx_default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        // Flags that take no value first.
        if flag == "--no-default-config" {
            config = LintConfig::default();
            continue;
        }
        let Some(value) = iter.next() else {
            eprintln!("rdx-lint: missing value for `{flag}`");
            return usage();
        };
        match flag.as_str() {
            "--root" => root = PathBuf::from(value),
            "--hot-crate" => config.hot_crates.push(value.clone()),
            "--clock-exempt" => config.clock_exempt_crates.push(value.clone()),
            "--metrics-exempt" => config.metrics_exempt_crates.push(value.clone()),
            "--external" => config.external_deps.push(value.clone()),
            "--counters-manifest" => config.counters_manifest = Some(value.clone()),
            "--hot-path" => {
                let Some((krate, file)) = value.split_once('/') else {
                    eprintln!("rdx-lint: `--hot-path` wants CRATE/FILE, got `{value}`");
                    return usage();
                };
                config
                    .hot_path_files
                    .push((krate.to_string(), file.to_string()));
            }
            "--registry-coverage" => {
                let Some((reg, cov)) = value.split_once('=') else {
                    eprintln!(
                        "rdx-lint: `--registry-coverage` wants REGISTRY=COVERAGE, got `{value}`"
                    );
                    return usage();
                };
                config.registry_coverage = Some((reg.to_string(), cov.to_string()));
            }
            "--layer" => {
                let parsed = value
                    .split_once('=')
                    .and_then(|(name, l)| l.parse().ok().map(|l| (name.to_string(), l)));
                let Some(pair) = parsed else {
                    eprintln!("rdx-lint: `--layer` wants NAME=N, got `{value}`");
                    return usage();
                };
                config.layers.push(pair);
            }
            _ => {
                eprintln!("rdx-lint: unknown flag `{flag}`");
                return usage();
            }
        }
    }

    match check_workspace(&root, &config) {
        Ok(violations) if violations.is_empty() => {
            println!("rdx-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            print!("{}", rdx_lint::render(&violations));
            println!(
                "rdx-lint: {} violation(s) — fix, or suppress with \
                 `// rdx-lint-allow: <lint> — <why>`",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("rdx-lint: {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}
