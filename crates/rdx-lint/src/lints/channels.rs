//! Concurrency lint: `unbounded-channel`.
//!
//! An unbounded channel between pipeline stages removes backpressure:
//! a fast producer grows the queue without limit, memory use becomes
//! schedule-dependent, and the deadlock a *bounded* queue would have
//! surfaced in testing hides until production. The hot crates run
//! producer/consumer pipelines whose bounds are part of their verified
//! behavior (rdx-sim replays the exact channel capacities virtually),
//! so every channel there must be constructed with an explicit bound:
//! `std::sync::mpsc::sync_channel(n)` or `crossbeam::channel::bounded(n)`.
//!
//! Flagged in hot crates:
//!
//! * `unbounded(…)`, `unbounded::<T>(…)`, and `channel::unbounded`
//!   paths (imports included) — the vendored crossbeam's unbounded
//!   constructor;
//! * `mpsc::channel(…)` / `mpsc::channel::<T>(…)` — std's unbounded
//!   channel (`sync_channel` is the bounded form and is fine).

use super::{path2, Sink};
use crate::config::LintConfig;
use crate::workspace::CrateSrc;
use crate::Lint;

/// Runs the unbounded-channel lint over one crate's sources.
pub fn check(krate: &CrateSrc, config: &LintConfig, sink: &mut Sink) {
    if !config.hot_crates.contains(&krate.name) {
        return;
    }
    for file in &krate.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].is_ident("unbounded") {
                let called = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                let turbofish = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('<'));
                let imported = i >= 3 && path2(toks, i - 3, "channel", "unbounded");
                if called || turbofish || imported {
                    sink.emit_src(
                        file,
                        Lint::UnboundedChannel,
                        toks[i].line,
                        format!(
                            "unbounded channel in hot crate `{}`: queues without \
                             backpressure grow schedule-dependently — use \
                             `crossbeam::channel::bounded(n)`",
                            krate.name
                        ),
                    );
                }
            }
            // `mpsc::channel(` or `mpsc::channel::<T>(` — std's
            // unbounded constructor; `sync_channel` tokenizes as a
            // different ident and never matches.
            if path2(toks, i, "mpsc", "channel") {
                let next = toks.get(i + 4);
                let called = next.is_some_and(|t| t.is_punct('('));
                let turbofish = next.is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 5).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 6).is_some_and(|t| t.is_punct('<'));
                if called || turbofish {
                    sink.emit_src(
                        file,
                        Lint::UnboundedChannel,
                        toks[i + 3].line,
                        format!(
                            "`mpsc::channel` (unbounded) in hot crate `{}`: use \
                             `mpsc::sync_channel(n)` so backpressure reaches the producer",
                            krate.name
                        ),
                    );
                }
            }
        }
    }
}
