//! Hygiene lints: `forbid-unsafe`, `metrics-name`, `metrics-manifest`.
//!
//! * Every crate root must carry `#![forbid(unsafe_code)]` — the whole
//!   workspace is a simulation + analysis stack with no business
//!   touching raw memory, and `forbid` (unlike `deny`) cannot be
//!   overridden further down.
//! * Metrics counters are part of the observable API (the CLI
//!   crosschecks them against profile fields), so their names must
//!   follow the `rdx.<area>.<name>` scheme and be declared in the
//!   checked-in manifest (`crates/rdx-metrics/COUNTERS.txt`); stale
//!   manifest entries are flagged symmetrically.

use super::Sink;
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::workspace::CrateSrc;
use crate::Lint;
use std::collections::BTreeSet;
use std::path::Path;

/// Per-crate hygiene checks; collects the counter names the crate
/// creates into `used_counters` for the manifest symmetry check.
pub fn check(
    krate: &CrateSrc,
    config: &LintConfig,
    counters: Option<&BTreeSet<String>>,
    used_counters: &mut BTreeSet<String>,
    sink: &mut Sink,
) {
    check_forbid_unsafe(krate, sink);
    if config.metrics_exempt_crates.contains(&krate.name) {
        return;
    }
    for file in &krate.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !super::path2(toks, i, "rdx_metrics", "counter") {
                continue;
            }
            let Some(name_tok) = toks
                .get(i + 4)
                .filter(|t| t.is_punct('('))
                .and_then(|_| toks.get(i + 5))
                .filter(|t| t.kind == TokKind::Str)
            else {
                continue;
            };
            let name = &name_tok.text;
            if !valid_counter_name(name) {
                sink.emit_src(
                    file,
                    Lint::MetricsName,
                    name_tok.line,
                    format!(
                        "counter `{name}` does not match the `rdx.<area>.<name>` scheme \
                         (lowercase `[a-z0-9_]` segments, at least three, `rdx.` first)"
                    ),
                );
            }
            used_counters.insert(name.clone());
            if let Some(declared) = counters {
                if !declared.contains(name) {
                    sink.emit_src(
                        file,
                        Lint::MetricsManifest,
                        name_tok.line,
                        format!(
                            "counter `{name}` is not declared in the counter manifest — \
                             add it to crates/rdx-metrics/COUNTERS.txt"
                        ),
                    );
                }
            }
        }
    }
}

/// Flags manifest entries that no crate creates (stale declarations).
pub fn check_unused_counters(
    manifest_path: &Path,
    declared: &[(String, u32)],
    used: &BTreeSet<String>,
    sink: &mut Sink,
) {
    for (name, line) in declared {
        if !used.contains(name) {
            sink.emit_path(
                manifest_path,
                Lint::MetricsManifest,
                *line,
                format!("declared counter `{name}` is never created by any crate — remove it"),
            );
        }
    }
}

fn check_forbid_unsafe(krate: &CrateSrc, sink: &mut Sink) {
    let Some(root_idx) = krate.root_file else {
        return; // no src/lib.rs or src/main.rs — nothing to anchor on
    };
    let file = &krate.files[root_idx];
    let toks = &file.lexed.tokens; // inner attrs sit outside any item
    let level_attr = |level: &str| {
        toks.windows(8)
            .find(|w| {
                w[0].is_punct('#')
                    && w[1].is_punct('!')
                    && w[2].is_punct('[')
                    && w[3].is_ident(level)
                    && w[4].is_punct('(')
                    && w[5].is_ident("unsafe_code")
                    && w[6].is_punct(')')
                    && w[7].is_punct(']')
            })
            .map(|w| w[3].line)
    };
    if level_attr("forbid").is_some() {
        return;
    }
    // `deny` is the weaker posture (modules can re-allow), so it needs a
    // justification: the violation lands on the attribute line, where an
    // `// rdx-lint-allow: forbid-unsafe — <why>` directive can cover it.
    if let Some(line) = level_attr("deny") {
        sink.emit_src(
            file,
            Lint::ForbidUnsafe,
            line,
            format!(
                "crate root of `{}` downgrades to `#![deny(unsafe_code)]` — modules can \
                 re-allow it; justify with `// rdx-lint-allow: forbid-unsafe — <why>`",
                krate.name
            ),
        );
        return;
    }
    sink.emit_src(
        file,
        Lint::ForbidUnsafe,
        1,
        format!(
            "crate root of `{}` lacks `#![forbid(unsafe_code)]`",
            krate.name
        ),
    );
}

/// The `unsafe-confinement` lint: any `unsafe` token outside the
/// allowlisted kernel modules is a violation, even in a crate that
/// legitimately carries `deny(unsafe_code)` instead of `forbid` — the
/// compiler checks the lattice per crate, this check pins the workspace
/// inventory to specific files.
pub fn check_unsafe_confinement(krate: &CrateSrc, config: &LintConfig, sink: &mut Sink) {
    for file in &krate.files {
        let allowed = config
            .unsafe_allowed_files
            .iter()
            .any(|(c, f)| *c == krate.name && *f == file.file_name);
        if allowed {
            continue;
        }
        for tok in &file.tokens {
            if tok.is_ident("unsafe") {
                sink.emit_src(
                    file,
                    Lint::UnsafeConfinement,
                    tok.line,
                    format!(
                        "`unsafe` in `{}`: arch-specific code belongs in an allowlisted \
                         kernel module (see LintConfig::unsafe_allowed_files)",
                        file.file_name
                    ),
                );
            }
        }
    }
}

/// `rdx.<area>.<name>`: at least three dot-separated segments, the
/// first exactly `rdx`, the rest non-empty `[a-z0-9_]+`.
#[must_use]
pub fn valid_counter_name(name: &str) -> bool {
    let mut segments = name.split('.');
    if segments.next() != Some("rdx") {
        return false;
    }
    let rest: Vec<&str> = segments.collect();
    rest.len() >= 2
        && rest.iter().all(|s| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::valid_counter_name;

    #[test]
    fn counter_name_scheme() {
        assert!(valid_counter_name("rdx.profiler.samples"));
        assert!(valid_counter_name("rdx.machine.fastpath.chunks"));
        assert!(!valid_counter_name("rdx.profiler")); // too few segments
        assert!(!valid_counter_name("profiler.samples.x")); // no rdx.
        assert!(!valid_counter_name("rdx.Profiler.samples")); // case
        assert!(!valid_counter_name("rdx..samples")); // empty segment
        assert!(!valid_counter_name("rdx.pro filer.samples")); // space
    }
}
