//! `registry-coverage` — every workload in the registry crate must have
//! a static-coverage entry, and every entry must name a live workload.
//!
//! The workload registry declares kernels with `spec!(name, ...)`; the
//! static-estimation crate declares, per kernel, either an `affine!`
//! model or an explicit `non_affine!(name, "why")` marker. This lint
//! cross-checks the two token streams so a kernel can never be added to
//! the registry without someone deciding whether `rdx static` supports
//! it — a missing decision would surface as an `UnknownKernel` error at
//! runtime instead of review time.
//!
//! Three shapes fire: a registry workload with no coverage entry
//! (reported at the `spec!` site), a stale coverage entry naming no
//! workload (reported at the marker site), and a duplicate coverage
//! entry (reported at the second site). The pass is a pure token scan:
//! a macro *definition* (`macro_rules! spec { ... }`) never matches
//! because the name is followed by `{`, not `(`.

use super::Sink;
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::workspace::{CrateSrc, SourceFile};
use crate::Lint;
use std::path::Path;

/// One macro invocation site: `mac!(name, ...)`.
struct Site<'a> {
    name: &'a str,
    file: &'a SourceFile,
    line: u32,
}

/// Collects `mac ! ( NAME` invocation sites for any of `macros` across
/// a crate, in deterministic (file, source) order.
fn macro_sites<'a>(krate: &'a CrateSrc, macros: &[&str]) -> Vec<Site<'a>> {
    let mut sites = Vec::new();
    for file in &krate.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if macros.iter().any(|m| toks[i].is_ident(m))
                && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 3).is_some_and(|t| t.kind == TokKind::Ident)
            {
                sites.push(Site {
                    name: &toks[i + 3].text,
                    file,
                    line: toks[i].line,
                });
            }
        }
    }
    sites
}

/// Cross-checks the registry crate's `spec!` entries against the
/// coverage crate's `affine!`/`non_affine!` markers. A no-op unless
/// `config.registry_coverage` names both crates; a configured crate
/// that is missing from the workspace is itself a violation.
pub fn check(crates: &[CrateSrc], config: &LintConfig, sink: &mut Sink) {
    let Some((registry_name, coverage_name)) = &config.registry_coverage else {
        return;
    };
    let mut lookup = |name: &str| {
        let found = crates.iter().find(|k| k.name == *name);
        if found.is_none() {
            sink.emit_path(
                &Path::new("crates").join(name).join("Cargo.toml"),
                Lint::RegistryCoverage,
                1,
                format!("registry-coverage names crate `{name}`, which is not in the workspace"),
            );
        }
        found
    };
    let (Some(registry), Some(coverage)) = (lookup(registry_name), lookup(coverage_name)) else {
        return;
    };

    let specs = macro_sites(registry, &["spec"]);
    let covers = macro_sites(coverage, &["affine", "non_affine"]);

    for s in &specs {
        if !covers.iter().any(|c| c.name == s.name) {
            sink.emit_src(
                s.file,
                Lint::RegistryCoverage,
                s.line,
                format!(
                    "workload `{}` has no static-coverage entry in `{coverage_name}`: \
                     add `affine!({})` with a model, or `non_affine!({}, \"why\")`",
                    s.name, s.name, s.name
                ),
            );
        }
    }
    let mut seen: Vec<&str> = Vec::new();
    for c in &covers {
        if !specs.iter().any(|s| s.name == c.name) {
            sink.emit_src(
                c.file,
                Lint::RegistryCoverage,
                c.line,
                format!(
                    "static-coverage entry `{}` names no workload in `{registry_name}`: \
                     delete it or update the name",
                    c.name
                ),
            );
        }
        if seen.contains(&c.name) {
            sink.emit_src(
                c.file,
                Lint::RegistryCoverage,
                c.line,
                format!("duplicate static-coverage entry for `{}`", c.name),
            );
        } else {
            seen.push(c.name);
        }
    }
}
