//! The `layering` lint: the crate DAG must stay a layered DAG.
//!
//! Dependencies may only point downward (`rdx-cli`/`rdx-bench` at the
//! top, `rdx-core` above the substrate crates, `memsim`/`rdx-trace`/
//! `rdx-histogram` at the base, `rdx-metrics` below everything).
//! Dev-dependencies may be lateral (same layer) but never upward, and
//! the normal-dependency graph must be acyclic regardless of the layer
//! map. Dependencies that are neither workspace crates nor allowlisted
//! vendored externals are flagged too — the offline vendor policy is
//! itself an invariant.

use super::Sink;
use crate::config::LintConfig;
use crate::workspace::CrateSrc;
use crate::Lint;
use std::collections::BTreeMap;

/// Runs the layering lint over the whole workspace.
pub fn check(crates: &[CrateSrc], config: &LintConfig, sink: &mut Sink) {
    let by_name: BTreeMap<&str, &CrateSrc> = crates.iter().map(|k| (k.name.as_str(), k)).collect();
    let enforce_layers = !config.layers.is_empty();

    for krate in crates {
        let crate_layer = config.layer_of(&krate.name);
        if enforce_layers && crate_layer.is_none() {
            sink.emit_manifest(
                krate,
                Lint::Layering,
                1,
                format!(
                    "crate `{}` is not in the layering map — assign it a layer in \
                     `LintConfig::rdx_default`",
                    krate.name
                ),
            );
        }
        for dep in &krate.manifest.deps {
            if config.is_external(&dep.name) {
                continue;
            }
            let dep_is_member = by_name.contains_key(dep.name.as_str());
            if !dep_is_member {
                sink.emit_manifest(
                    krate,
                    Lint::Layering,
                    dep.line,
                    format!(
                        "`{}` is neither a workspace crate nor an allowlisted vendored \
                         dependency (offline vendor policy)",
                        dep.name
                    ),
                );
                continue;
            }
            if let (true, Some(cl), Some(dl)) =
                (enforce_layers, crate_layer, config.layer_of(&dep.name))
            {
                let upward = if dep.dev { dl > cl } else { dl >= cl };
                if upward {
                    sink.emit_manifest(
                        krate,
                        Lint::Layering,
                        dep.line,
                        format!(
                            "{}dependency on `{}` (layer {dl}) violates layering: \
                             `{}` sits on layer {cl} and may only depend {}",
                            if dep.dev { "dev-" } else { "" },
                            dep.name,
                            krate.name,
                            if dep.dev {
                                "on its own layer or below"
                            } else {
                                "strictly below itself"
                            },
                        ),
                    );
                }
            }
        }
    }

    // Cycle detection over normal-dependency edges (dev-dependency
    // cycles are legal in Cargo and excluded).
    let mut state: BTreeMap<&str, u8> = BTreeMap::new(); // 0 new, 1 on stack, 2 done
    for krate in crates {
        let mut stack = Vec::new();
        if let Some(cycle) = dfs(krate.name.as_str(), &by_name, &mut state, &mut stack) {
            sink.emit_manifest(
                by_name[cycle[0].as_str()],
                Lint::Layering,
                1,
                format!("dependency cycle: {}", cycle.join(" -> ")),
            );
        }
    }
}

fn dfs<'a>(
    node: &'a str,
    by_name: &BTreeMap<&'a str, &'a CrateSrc>,
    state: &mut BTreeMap<&'a str, u8>,
    stack: &mut Vec<&'a str>,
) -> Option<Vec<String>> {
    match state.get(node) {
        Some(1) => {
            // Found a back edge: report the cycle path.
            let from = stack.iter().position(|&n| n == node).unwrap_or(0);
            let mut cycle: Vec<String> = stack[from..].iter().map(ToString::to_string).collect();
            cycle.push(node.to_string());
            return Some(cycle);
        }
        Some(_) => return None,
        None => {}
    }
    state.insert(node, 1);
    stack.push(node);
    let result = by_name.get(node).and_then(|krate| {
        krate
            .manifest
            .deps
            .iter()
            .filter(|d| !d.dev && by_name.contains_key(d.name.as_str()))
            .find_map(|d| {
                by_name
                    .keys()
                    .find(|&&k| k == d.name)
                    .and_then(|&k| dfs(k, by_name, state, stack))
            })
    });
    stack.pop();
    state.insert(node, 2);
    result
}
