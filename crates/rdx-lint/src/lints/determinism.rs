//! Determinism lints: `hash-collections`, `wall-clock`, `entropy-rng`.
//!
//! RDX's accuracy and overhead claims are validated against golden
//! digests of bit-identical profiles. Three things silently break that
//! reproducibility:
//!
//! * `std::collections::HashMap`/`HashSet` — SipHash is seeded per
//!   process, so iteration order (and capacity-driven accounting)
//!   varies run to run. Hot crates must use the vendored
//!   `rdx_groundtruth::FxHashMap` or an ordered `BTreeMap`.
//! * Wall clocks — `Instant::now`/`SystemTime` fold timing into
//!   results. Only the benchmark harness and the metrics collector
//!   (whose timers are explicitly observational) may read them.
//! * Entropy-seeded RNGs — `thread_rng`/`from_entropy`/`OsRng` draw
//!   from the OS; every RNG in the measurement path must be seeded
//!   from configuration.

use super::{path2, Sink};
use crate::config::LintConfig;
use crate::lexer::TokKind;
use crate::workspace::CrateSrc;
use crate::Lint;

/// Runs the determinism lints over one crate's sources.
pub fn check(krate: &CrateSrc, config: &LintConfig, sink: &mut Sink) {
    let hot = config.hot_crates.contains(&krate.name);
    let clock_exempt = config.clock_exempt_crates.contains(&krate.name);
    for file in &krate.files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if hot && path2(toks, i, "std", "collections") {
                check_std_collections(krate, file, i + 4, sink);
            }
            if !clock_exempt {
                if path2(toks, i, "Instant", "now") {
                    sink.emit_src(
                        file,
                        Lint::WallClock,
                        toks[i].line,
                        "`Instant::now()` outside the benchmark/metrics crates: wall-clock \
                         reads make profiles irreproducible"
                            .to_string(),
                    );
                }
                if toks[i].is_ident("SystemTime") {
                    sink.emit_src(
                        file,
                        Lint::WallClock,
                        toks[i].line,
                        "`SystemTime` outside the benchmark/metrics crates".to_string(),
                    );
                }
                if toks[i].kind == TokKind::Ident
                    && ["thread_rng", "from_entropy", "OsRng"].contains(&toks[i].text.as_str())
                {
                    sink.emit_src(
                        file,
                        Lint::EntropyRng,
                        toks[i].line,
                        format!(
                            "`{}` draws OS entropy: RNGs on measurement paths must be \
                             seeded from configuration",
                            toks[i].text
                        ),
                    );
                }
                if path2(toks, i, "rand", "random") {
                    sink.emit_src(
                        file,
                        Lint::EntropyRng,
                        toks[i].line,
                        "`rand::random` draws OS entropy".to_string(),
                    );
                }
            }
        }
    }
}

/// At `toks[i]` sits whatever follows `std :: collections ::` … flag
/// `HashMap`/`HashSet` directly, inside a brace group, or via glob.
fn check_std_collections(
    krate: &CrateSrc,
    file: &crate::workspace::SourceFile,
    i: usize,
    sink: &mut Sink,
) {
    let toks = &file.tokens;
    // `std::collections` not followed by `::` is just a module mention.
    if !(toks.get(i).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':')))
    {
        return;
    }
    let flag = |sink: &mut Sink, line: u32, what: &str| {
        sink.emit_src(
            file,
            Lint::HashCollections,
            line,
            format!(
                "`std::collections::{what}` in hot crate `{}`: SipHash's random seed \
                 breaks run-to-run determinism — use `rdx_groundtruth::FxHashMap` or \
                 `BTreeMap`",
                krate.name
            ),
        );
    };
    match toks.get(i + 2) {
        Some(t) if t.is_ident("HashMap") || t.is_ident("HashSet") => {
            flag(sink, t.line, &t.text);
        }
        Some(t) if t.is_punct('*') => flag(sink, t.line, "*"),
        Some(t) if t.is_punct('{') => {
            for u in &toks[i + 3..] {
                if u.is_punct('}') {
                    break;
                }
                if u.is_ident("HashMap") || u.is_ident("HashSet") {
                    flag(sink, u.line, &u.text);
                }
            }
        }
        _ => {}
    }
}
