//! The lint passes and their shared plumbing.

pub mod channels;
pub mod determinism;
pub mod hygiene;
pub mod layering;
pub mod panics;
pub mod registry;

use crate::lexer::Tok;
use crate::workspace::{CrateSrc, SourceFile};
use crate::{Lint, Violation};
use std::path::Path;

/// Collects violations, applying suppression directives at emit time.
#[derive(Debug, Default)]
pub struct Sink {
    violations: Vec<Violation>,
}

impl Sink {
    /// Finishes the run, returning violations in a deterministic order.
    #[must_use]
    pub fn finish(mut self) -> Vec<Violation> {
        self.violations.sort_by(|a, b| {
            (&a.file, a.line, a.lint.name(), &a.message).cmp(&(
                &b.file,
                b.line,
                b.lint.name(),
                &b.message,
            ))
        });
        self.violations
    }

    /// Reports a violation in a source file unless an
    /// `// rdx-lint-allow:` directive covers it.
    pub fn emit_src(&mut self, file: &SourceFile, lint: Lint, line: u32, message: String) {
        if file.lexed.is_allowed(lint.name(), line) {
            return;
        }
        self.violations.push(Violation {
            lint,
            file: file.rel_path.clone(),
            line,
            message,
        });
    }

    /// Reports a violation in a crate manifest unless a
    /// `# rdx-lint-allow:` directive covers it.
    pub fn emit_manifest(&mut self, krate: &CrateSrc, lint: Lint, line: u32, message: String) {
        if krate.manifest.is_allowed(lint.name(), line) {
            return;
        }
        self.violations.push(Violation {
            lint,
            file: krate.manifest_rel_path.clone(),
            line,
            message,
        });
    }

    /// Reports a violation at an arbitrary path (no suppression).
    pub fn emit_path(&mut self, path: &Path, lint: Lint, line: u32, message: String) {
        self.violations.push(Violation {
            lint,
            file: path.to_path_buf(),
            line,
            message,
        });
    }
}

/// True when `tokens[i..]` starts with the path segment `a :: b`.
#[must_use]
pub fn path2(tokens: &[Tok], i: usize, a: &str, b: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(a))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(b))
}
