//! The `no-panic` lint: hot-path modules must not unwind.
//!
//! The profiler's sample/trap handlers model code that runs inside
//! signal handlers on real hardware; the machine loop and trace
//! decoders sit under every experiment. A panic there either aborts a
//! long measurement or — worse, under `profile_batch`'s
//! `catch_unwind` — turns one bad access into a poisoned batch.
//! Recoverable conditions must use typed errors (`TraceError`,
//! `ArmError`); genuinely unreachable states carry an
//! `// rdx-lint-allow: no-panic — <why>` justification.

use super::Sink;
use crate::config::LintConfig;
use crate::workspace::CrateSrc;
use crate::Lint;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Runs the `no-panic` lint over one crate's hot-path files.
pub fn check(krate: &CrateSrc, config: &LintConfig, sink: &mut Sink) {
    for file in &krate.files {
        let is_hot = config
            .hot_path_files
            .iter()
            .any(|(c, f)| *c == krate.name && *f == file.file_name);
        if !is_hot {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if toks[i].is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                let t = &toks[i + 1];
                sink.emit_src(
                    file,
                    Lint::NoPanic,
                    t.line,
                    format!(
                        "`.{}()` in hot-path module `{}`: convert to a typed error or \
                         justify with `// rdx-lint-allow: no-panic — <why>`",
                        t.text, file.file_name
                    ),
                );
            }
            if toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && PANIC_MACROS.contains(&toks[i].text.as_str())
                && toks[i].kind == crate::lexer::TokKind::Ident
            {
                sink.emit_src(
                    file,
                    Lint::NoPanic,
                    toks[i].line,
                    format!(
                        "`{}!` in hot-path module `{}`",
                        toks[i].text, file.file_name
                    ),
                );
            }
        }
    }
}
