//! Lint configuration: which crates are hot, the layering DAG, and
//! where the metrics counter manifest lives.

/// Configuration for one linter run.
///
/// All fields are public so tests (and the fixture suite) can build
/// arbitrary configurations; [`LintConfig::rdx_default`] is the checked
/// configuration for this workspace, and what the `rdx-lint` binary
/// uses unless overridden on the command line.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Crates where `std::collections::{HashMap,HashSet}` are forbidden
    /// (SipHash's per-process random seed makes iteration order, and
    /// therefore anything derived from it, nondeterministic).
    pub hot_crates: Vec<String>,
    /// Crates allowed to read wall clocks and entropy (benchmark
    /// drivers and the metrics collector itself).
    pub clock_exempt_crates: Vec<String>,
    /// `(crate, file name)` pairs whose non-test code must be
    /// panic-free: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`.
    pub hot_path_files: Vec<(String, String)>,
    /// `(crate, file name)` pairs allowed to contain `unsafe` tokens.
    /// Everywhere else the `unsafe-confinement` lint fires, so arch
    /// intrinsics stay inside the kernel modules built to host them.
    pub unsafe_allowed_files: Vec<(String, String)>,
    /// `(crate, layer)` pairs: a crate's normal dependencies must sit
    /// on a strictly lower layer, dev-dependencies on a lower-or-equal
    /// one. When non-empty, every workspace crate must be mapped.
    pub layers: Vec<(String, u32)>,
    /// External (vendored) dependencies exempt from layering.
    pub external_deps: Vec<String>,
    /// Path (relative to the workspace root) of the checked-in counter
    /// manifest; `None` disables the `metrics-manifest` lint.
    pub counters_manifest: Option<String>,
    /// Crates whose `rdx_metrics::counter` calls are not name-checked
    /// (the metrics crate's own demos and tests).
    pub metrics_exempt_crates: Vec<String>,
    /// `(registry crate, coverage crate)` pair for the
    /// `registry-coverage` lint: every `spec!` workload in the first
    /// crate must have exactly one `affine!`/`non_affine!` entry in the
    /// second, and vice versa. `None` disables the lint.
    pub registry_coverage: Option<(String, String)>,
}

fn strings(items: &[&str]) -> Vec<String> {
    items.iter().map(ToString::to_string).collect()
}

impl LintConfig {
    /// The RDX workspace's checked configuration.
    ///
    /// Layering (lower layers must not import higher ones):
    ///
    /// ```text
    /// 7  rdx-cli
    /// 6  rdx-sim   rdx-bench
    /// 5  rdx-server  rdx-static  rdx-lint
    /// 4  rdx-core  rdx-baselines
    /// 3  rdx-groundtruth  rdx-cache
    /// 2  memsim    rdx-workloads
    /// 1  rdx-trace rdx-histogram
    /// 0  rdx-metrics
    /// ```
    #[must_use]
    pub fn rdx_default() -> LintConfig {
        LintConfig {
            hot_crates: strings(&[
                "memsim",
                "rdx-core",
                "rdx-groundtruth",
                "rdx-baselines",
                "rdx-trace",
                "rdx-server",
                "rdx-sim",
                "rdx-static",
            ]),
            clock_exempt_crates: strings(&["rdx-bench", "rdx-metrics"]),
            hot_path_files: [
                ("memsim", "machine.rs"),
                ("memsim", "pmu.rs"),
                ("memsim", "scan.rs"),
                ("memsim", "kernels.rs"),
                ("memsim", "debug.rs"),
                ("rdx-core", "profiler.rs"),
                ("rdx-core", "runner.rs"),
                ("rdx-core", "kernels.rs"),
                ("rdx-core", "merge.rs"),
                ("rdx-core", "wire.rs"),
                ("rdx-trace", "io.rs"),
                ("rdx-trace", "kernels.rs"),
                ("rdx-trace", "stream.rs"),
                ("rdx-trace", "chunk.rs"),
                ("rdx-trace", "pipeline.rs"),
                ("rdx-trace", "frame.rs"),
                ("rdx-server", "protocol.rs"),
                ("rdx-server", "session.rs"),
                ("rdx-server", "server.rs"),
                ("rdx-static", "analysis.rs"),
                ("rdx-static", "ir.rs"),
            ]
            .iter()
            .map(|&(c, f)| (c.to_string(), f.to_string()))
            .collect(),
            unsafe_allowed_files: [("memsim", "kernels.rs"), ("rdx-core", "kernels.rs")]
                .iter()
                .map(|&(c, f)| (c.to_string(), f.to_string()))
                .collect(),
            layers: [
                ("rdx-metrics", 0),
                ("rdx-histogram", 1),
                ("rdx-trace", 1),
                ("memsim", 2),
                ("rdx-workloads", 2),
                ("rdx-groundtruth", 3),
                ("rdx-cache", 3),
                ("rdx-core", 4),
                ("rdx-baselines", 4),
                ("rdx-server", 5),
                ("rdx-sim", 6),
                ("rdx-cli", 7),
                ("rdx-static", 5),
                ("rdx-bench", 6),
                ("rdx-lint", 5),
            ]
            .iter()
            .map(|&(c, l)| (c.to_string(), l))
            .collect(),
            external_deps: strings(&[
                "rand",
                "serde",
                "serde_derive",
                "bytes",
                "crossbeam",
                "parking_lot",
                "proptest",
                "criterion",
            ]),
            counters_manifest: Some("crates/rdx-metrics/COUNTERS.txt".to_string()),
            metrics_exempt_crates: strings(&["rdx-metrics"]),
            registry_coverage: Some(("rdx-workloads".to_string(), "rdx-static".to_string())),
        }
    }

    /// Layer of `krate`, if mapped.
    #[must_use]
    pub fn layer_of(&self, krate: &str) -> Option<u32> {
        self.layers
            .iter()
            .find(|(name, _)| name == krate)
            .map(|&(_, l)| l)
    }

    /// True when `name` is an allowlisted external dependency.
    #[must_use]
    pub fn is_external(&self, name: &str) -> bool {
        self.external_deps.iter().any(|e| e == name)
    }
}
