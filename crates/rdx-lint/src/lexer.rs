//! A token-level Rust lexer, sufficient for invariant linting.
//!
//! This is deliberately *not* a parser: the lints only need to see
//! identifier/punctuation sequences (`std :: collections :: HashMap`,
//! `. unwrap (`) with comments and string/char literals correctly
//! skipped, plus two structural services a raw text grep cannot provide:
//!
//! 1. **`#[cfg(test)]` stripping** — test modules and test-gated items
//!    are exempt from every file-level lint (tests may `unwrap`, build
//!    `HashMap`s, and read clocks freely), so [`strip_cfg_test`] removes
//!    them from the token stream before the lints run.
//! 2. **Suppression directives** — a `// rdx-lint-allow: <lint>` line
//!    comment suppresses matching violations on its own line or the
//!    line directly below it; the lexer collects these while tokenizing.
//!
//! The lexer handles nested block comments, raw strings (`r#"…"#`),
//! byte strings, char literals vs. lifetimes, and raw identifiers —
//! everything needed to never misread a literal as code.

use std::collections::HashMap;

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// A string or byte-string literal; `text` is the *inner* content.
    Str,
    /// A character or byte literal (delimiters stripped).
    Char,
    /// A numeric literal.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for the single punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A lexed source file: token stream plus suppression directives.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All tokens outside comments, in source order.
    pub tokens: Vec<Tok>,
    /// Line → lint names allowed on that line (from `rdx-lint-allow:`).
    pub allows: HashMap<u32, Vec<String>>,
}

impl LexedFile {
    /// True when `lint` is suppressed at `line` (directive on the same
    /// line — a trailing comment — or on the line directly above).
    #[must_use]
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|names| names.iter().any(|n| n == lint))
        })
    }
}

/// Parses the lint-name list out of a comment containing an
/// `rdx-lint-allow:` directive. Names are kebab-case, separated by
/// commas or spaces; the first non-name word starts the justification.
#[must_use]
pub fn parse_allow_directive(comment: &str) -> Option<Vec<String>> {
    const KEY: &str = "rdx-lint-allow:";
    let rest = &comment[comment.find(KEY)? + KEY.len()..];
    let mut names = Vec::new();
    for word in rest.split([',', ' ', '\t']).filter(|w| !w.is_empty()) {
        let looks_like_lint = word.chars().all(|c| c.is_ascii_lowercase() || c == '-')
            && word.chars().any(|c| c.is_ascii_lowercase());
        if looks_like_lint {
            names.push(word.to_string());
        } else {
            break; // the justification text begins here
        }
    }
    (!names.is_empty()).then_some(names)
}

/// Tokenizes Rust source. Never fails: unterminated constructs consume
/// to end-of-file, which is the right degradation for a linter.
#[must_use]
pub fn lex(src: &str) -> LexedFile {
    Lexer {
        bytes: src.as_bytes(),
        src,
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer<'_> {
    fn run(mut self) -> LexedFile {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos + 1),
                b'b' | b'r' if self.raw_or_byte_prefix() => {}
                b'\'' => self.char_or_lifetime(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    // One punctuation character (multi-byte UTF-8 chars
                    // only occur inside comments/strings in practice,
                    // but consume them whole to stay in char sync).
                    let ch_len = self.src[self.pos..]
                        .chars()
                        .next()
                        .map_or(1, char::len_utf8);
                    self.push(TokKind::Punct, self.pos, self.pos + ch_len);
                    self.pos += ch_len;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) {
        self.out.tokens.push(Tok {
            kind,
            text: self.src[start..end].to_string(),
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        if let Some(names) = parse_allow_directive(&self.src[start..self.pos]) {
            self.out.allows.entry(self.line).or_default().extend(names);
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            match self.bytes[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Cooked string starting after its opening quote at `content_start`.
    fn string(&mut self, content_start: usize) {
        let line = self.line;
        self.pos = content_start;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => break,
                _ => self.pos += 1,
            }
        }
        let end = self.pos.min(self.bytes.len());
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            text: self.src[content_start..end].to_string(),
            line,
        });
        self.pos += 1; // closing quote
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'`, and raw
    /// identifiers `r#ident`. Returns true when it consumed something.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let mut i = self.pos;
        if self.bytes[i] == b'b' {
            i += 1;
        }
        let after_b = i;
        if self.bytes.get(i) == Some(&b'r') {
            i += 1;
            let mut hashes = 0usize;
            while self.bytes.get(i) == Some(&b'#') {
                hashes += 1;
                i += 1;
            }
            if self.bytes.get(i) == Some(&b'"') {
                self.raw_string(i + 1, hashes);
                return true;
            }
            if hashes == 1 && after_b == self.pos {
                // `r#ident` — a raw identifier.
                if self
                    .bytes
                    .get(i)
                    .is_some_and(|&c| c == b'_' || c.is_ascii_alphabetic())
                {
                    self.pos = i;
                    self.ident();
                    return true;
                }
            }
            return false; // plain ident starting with r/br
        }
        if after_b > self.pos {
            match self.bytes.get(after_b) {
                Some(b'"') => {
                    self.string(after_b + 1);
                    return true;
                }
                Some(b'\'') => {
                    self.pos = after_b;
                    self.char_or_lifetime();
                    return true;
                }
                _ => return false, // ident starting with b
            }
        }
        false
    }

    fn raw_string(&mut self, content_start: usize, hashes: usize) {
        let line = self.line;
        self.pos = content_start;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            if self.bytes[self.pos..].starts_with(&closer) {
                break;
            }
            self.pos += 1;
        }
        let end = self.pos.min(self.bytes.len());
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            text: self.src[content_start..end].to_string(),
            line,
        });
        self.pos = (self.pos + closer.len()).min(self.bytes.len());
    }

    fn char_or_lifetime(&mut self) {
        // `'` then ident-run with no closing quote → lifetime; otherwise
        // a char literal (possibly escaped).
        let start = self.pos;
        let mut i = self.pos + 1;
        if self
            .bytes
            .get(i)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphabetic())
        {
            let mut j = i + 1;
            while self
                .bytes
                .get(j)
                .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
            {
                j += 1;
            }
            if self.bytes.get(j) != Some(&b'\'') {
                self.push(TokKind::Lifetime, start, j);
                self.pos = j;
                return;
            }
        }
        // Char literal: consume to closing quote, honoring escapes.
        while i < self.bytes.len() {
            match self.bytes[i] {
                b'\\' => i += 2,
                b'\'' => break,
                _ => {
                    i += self.src[i..].chars().next().map_or(1, char::len_utf8);
                }
            }
        }
        let end = i.min(self.bytes.len());
        self.push(TokKind::Char, start + 1, end);
        self.pos = end + 1;
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start, self.pos);
    }

    fn number(&mut self) {
        let start = self.pos;
        let mut seen_dot = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c == b'_' || c.is_ascii_alphanumeric() {
                // `1e-9` / `1E+9`: the sign belongs to the exponent only
                // for decimal (non-0x) literals.
                if (c == b'e' || c == b'E')
                    && !self.src[start..self.pos].starts_with("0x")
                    && matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.pos += 2;
                }
                self.pos += 1;
            } else if c == b'.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // A fractional part — but not `0..n` range syntax.
                seen_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, self.pos);
    }
}

/// Removes `#[cfg(test)]`-gated items (and their attributes) from a
/// token stream: the attribute itself, any further attributes on the
/// same item, and the item body through its closing `}` or `;`.
///
/// An attribute counts as test-gating when its path is exactly `cfg`
/// and any identifier inside it is `test` (`#[cfg(test)]`,
/// `#[cfg(all(test, …))]`). `#[cfg_attr(test, …)]` does *not* remove
/// the item it decorates and is left alone.
#[must_use]
pub fn strip_cfg_test(tokens: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching_bracket(tokens, i + 1);
            if attr_is_cfg_test(&tokens[i + 2..close]) {
                i = skip_item(tokens, close + 1);
                continue;
            }
            out.extend(tokens[i..=close.min(tokens.len() - 1)].iter().cloned());
            i = close + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open` (or the last token).
fn matching_bracket(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len() - 1
}

fn attr_is_cfg_test(inner: &[Tok]) -> bool {
    inner.first().is_some_and(|t| t.is_ident("cfg")) && inner.iter().any(|t| t.is_ident("test"))
}

/// Skips further attributes, then one item: through the first `;` at
/// zero delimiter depth, or the `}` matching the first `{` entered.
fn skip_item(tokens: &[Tok], mut i: usize) -> usize {
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        i = matching_bracket(tokens, i + 1) + 1;
    }
    let mut depth = 0i32;
    let mut entered_brace = false;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            entered_brace |= t.is_punct('{');
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 && entered_brace && t.is_punct('}') {
                return i + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = r##"
            // HashMap in a comment
            /* std::collections::HashMap, /* nested */ still comment */
            let s = "std::collections::HashMap";
            let r = r#"Instant::now()"#;
            let c = '"';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids,
            ["let", "s", "let", "r", "let", "c", "let", "real", "HashMap", "new"]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_identifiers_and_byte_strings() {
        let ids = idents("let r#type = b\"bytes\"; let br2 = br#\"raw\"#;");
        assert_eq!(ids, ["let", "type", "let", "br2"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = lex("for i in 0..10 { x = 1e-9 + 2.5; }").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1e-9", "2.5"]);
    }

    #[test]
    fn allow_directive_parsing() {
        assert_eq!(
            parse_allow_directive("// rdx-lint-allow: no-panic — invariant holds"),
            Some(vec!["no-panic".to_string()])
        );
        assert_eq!(
            parse_allow_directive("// rdx-lint-allow: wall-clock, entropy-rng — bench only"),
            Some(vec!["wall-clock".to_string(), "entropy-rng".to_string()])
        );
        assert_eq!(parse_allow_directive("// ordinary comment"), None);
    }

    #[test]
    fn allows_are_recorded_per_line() {
        let f = lex("let a = 1;\nlet b = 2; // rdx-lint-allow: hash-collections — why\n");
        assert!(f.is_allowed("hash-collections", 2));
        assert!(f.is_allowed("hash-collections", 3)); // line below
        assert!(!f.is_allowed("hash-collections", 1));
        assert!(!f.is_allowed("no-panic", 2));
    }

    #[test]
    fn cfg_test_mod_is_stripped() {
        let src = "
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { other.unwrap(); panic!(); }
            }
            fn also_live() {}
        ";
        let toks = strip_cfg_test(&lex(src).tokens);
        let ids: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(ids.contains(&"live"));
        assert!(ids.contains(&"also_live"));
        assert!(!ids.contains(&"tests"));
        assert!(!ids.contains(&"panic"));
    }

    #[test]
    fn cfg_test_use_item_is_stripped() {
        let src = "#[cfg(test)]\nuse crate::debug::Watchpoint;\nfn live() {}";
        let toks = strip_cfg_test(&lex(src).tokens);
        assert!(!toks.iter().any(|t| t.is_ident("Watchpoint")));
        assert!(toks.iter().any(|t| t.is_ident("live")));
    }

    #[test]
    fn cfg_attr_is_not_stripped() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn kept() {}";
        let toks = strip_cfg_test(&lex(src).tokens);
        assert!(toks.iter().any(|t| t.is_ident("kept")));
    }

    #[test]
    fn cfg_all_test_is_stripped() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn gone() {}\nfn kept() {}";
        let toks = strip_cfg_test(&lex(src).tokens);
        assert!(!toks.iter().any(|t| t.is_ident("gone")));
        assert!(toks.iter().any(|t| t.is_ident("kept")));
    }
}
