//! A minimal `Cargo.toml` reader for layering checks.
//!
//! This is not a TOML implementation — it reads exactly the manifest
//! subset the workspace uses (and that the layering lint needs): the
//! `[package]` name, and the dependency *names* declared under
//! `[dependencies]` / `[dev-dependencies]`, in any of the three forms
//! Cargo accepts (`foo = "1"` / `foo = { path = ".." }` /
//! `foo.workspace = true`, plus `[dependencies.foo]` tables).
//!
//! `# rdx-lint-allow: <lint>` comments work in manifests the same way
//! `//` directives work in Rust sources: on the flagged line or the
//! line above.

use crate::lexer::parse_allow_directive;
use std::collections::HashMap;

/// One declared dependency and where it was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// The dependency's crate name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
    /// True when declared under `[dev-dependencies]`.
    pub dev: bool,
}

/// The parsed subset of one crate manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// `package.name`, if present.
    pub name: Option<String>,
    /// All dependencies (normal and dev), in declaration order.
    pub deps: Vec<Dep>,
    /// Line → lint names allowed (from `# rdx-lint-allow:` comments).
    pub allows: HashMap<u32, Vec<String>>,
}

impl Manifest {
    /// True when `lint` is suppressed at `line` (same line or above).
    #[must_use]
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|names| names.iter().any(|n| n == lint))
        })
    }
}

/// Parses manifest source. Unknown sections are skipped wholesale.
#[must_use]
pub fn parse(src: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps { dev: bool },
        Other,
    }
    let mut m = Manifest::default();
    let mut section = Section::Other;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let (code, comment) = split_comment(raw);
        if let Some(names) = comment.and_then(parse_allow_directive) {
            m.allows.entry(line_no).or_default().extend(names);
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        if code.starts_with('[') {
            let inner = code.trim_matches(|c| c == '[' || c == ']');
            section = match inner {
                "package" => Section::Package,
                "dependencies" => Section::Deps { dev: false },
                "dev-dependencies" => Section::Deps { dev: true },
                _ => {
                    // `[dependencies.foo]` / `[dev-dependencies.foo]`
                    // table form declares dependency `foo`.
                    for (prefix, dev) in [("dependencies.", false), ("dev-dependencies.", true)] {
                        if let Some(name) = inner.strip_prefix(prefix) {
                            m.deps.push(Dep {
                                name: name.trim_matches('"').to_string(),
                                line: line_no,
                                dev,
                            });
                        }
                    }
                    Section::Other
                }
            };
            continue;
        }
        match section {
            Section::Package => {
                if let Some(rest) = code.strip_prefix("name") {
                    let rest = rest.trim_start();
                    if let Some(value) = rest.strip_prefix('=') {
                        m.name = Some(value.trim().trim_matches('"').to_string());
                    }
                }
            }
            Section::Deps { dev } => {
                if let Some((key, _)) = code.split_once('=') {
                    // `foo.workspace = true` declares `foo`.
                    let name = key.trim().split('.').next().unwrap_or("").trim_matches('"');
                    if !name.is_empty() {
                        m.deps.push(Dep {
                            name: name.to_string(),
                            line: line_no,
                            dev,
                        });
                    }
                }
            }
            Section::Other => {}
        }
    }
    m
}

/// Splits a manifest line at its `#` comment (none of the workspace
/// manifests put `#` inside a string value; a linter-grade reader may
/// assume that).
fn split_comment(line: &str) -> (&str, Option<&str>) {
    match line.find('#') {
        Some(i) => (&line[..i], Some(&line[i..])),
        None => (line, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_dep_forms() {
        let m = parse(
            "[package]\nname = \"demo\"\nversion = \"0.1\"\n\n\
             [dependencies]\nplain = \"1\"\ninline = { path = \"../x\" }\n\
             ws.workspace = true\n\n[dependencies.table]\npath = \"../t\"\n\n\
             [dev-dependencies]\ntesty = \"2\"\n",
        );
        assert_eq!(m.name.as_deref(), Some("demo"));
        let names: Vec<(&str, bool)> = m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            [
                ("plain", false),
                ("inline", false),
                ("ws", false),
                ("table", false),
                ("testy", true)
            ]
        );
    }

    #[test]
    fn features_are_not_dependencies() {
        let m = parse(
            "[features]\nmetrics = [\"rdx-metrics/enabled\"]\n[dependencies]\nreal = \"1\"\n",
        );
        assert_eq!(m.deps.len(), 1);
        assert_eq!(m.deps[0].name, "real");
    }

    #[test]
    fn allow_comments_in_manifests() {
        let m = parse(
            "[dependencies]\nup = { path = \"../up\" } # rdx-lint-allow: layering — transitional\n",
        );
        assert_eq!(m.deps[0].line, 2);
        assert!(m.is_allowed("layering", 2));
        assert!(!m.is_allowed("layering", 1));
    }
}
