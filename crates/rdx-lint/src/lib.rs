//! `rdx-lint` — workspace invariant linter for the RDX reproduction.
//!
//! RDX's headline numbers (≈5 % overhead, >90 % accuracy) are only
//! reproducible because profiles are **bit-identical across runs**:
//! golden digests, RNG-draw-order parity, and the vendored FxHash maps
//! all depend on invariants that `cargo test` cannot see. This crate is
//! the static half of that enforcement — a rustc-`tidy`-style tool
//! (token-level lexer + manifest reader, no `syn`, no dependencies,
//! consistent with the offline vendor policy) that walks every crate
//! under `crates/` and checks:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `hash-collections` | no `std::collections::HashMap`/`HashSet` in hot crates |
//! | `wall-clock` | no `Instant::now`/`SystemTime` outside bench/metrics |
//! | `entropy-rng` | no `thread_rng`/`from_entropy`/`OsRng`/`rand::random` outside bench/metrics |
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in hot-path modules |
//! | `unbounded-channel` | no unbounded channels (`crossbeam::channel::unbounded`, `mpsc::channel`) in hot crates |
//! | `layering` | crate DAG layered, acyclic, vendored-deps-only |
//! | `forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` (or a justified `deny`) |
//! | `unsafe-confinement` | `unsafe` tokens only in allowlisted kernel modules |
//! | `metrics-name` | counter names follow `rdx.<area>.<name>` |
//! | `metrics-manifest` | counters declared in `COUNTERS.txt`, both directions |
//! | `registry-coverage` | every registry workload has a static model or an explicit non-affine marker |
//!
//! `#[cfg(test)]` items are exempt everywhere. Individual findings are
//! suppressed with a justified directive on the flagged line or the
//! line above:
//!
//! ```text
//! use std::collections::HashMap; // rdx-lint-allow: hash-collections — std map + Fx hasher
//! ```
//!
//! Run it with `cargo run -p rdx-lint -- check` (CI does, as a required
//! leg). Library entry point: [`check_workspace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod lints;
pub mod manifest;
pub mod workspace;

pub use config::LintConfig;

use lints::Sink;
use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// The lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `std::collections::HashMap`/`HashSet` in a hot crate.
    HashCollections,
    /// `Instant::now()`/`SystemTime` outside bench/metrics crates.
    WallClock,
    /// Entropy-seeded RNG outside bench/metrics crates.
    EntropyRng,
    /// `unwrap`/`expect`/panicking macro in a hot-path module.
    NoPanic,
    /// Unbounded channel construction in a hot crate.
    UnboundedChannel,
    /// Crate-DAG violation: upward edge, cycle, or unvendored dep.
    Layering,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// `unsafe` token outside the allowlisted kernel modules.
    UnsafeConfinement,
    /// Metrics counter name not matching `rdx.<area>.<name>`.
    MetricsName,
    /// Counter not declared in the manifest (or declared but unused).
    MetricsManifest,
    /// Registry workload without a static-coverage entry (or a stale /
    /// duplicate coverage entry naming no live workload).
    RegistryCoverage,
}

impl Lint {
    /// Every lint, in catalog order.
    pub const ALL: [Lint; 11] = [
        Lint::HashCollections,
        Lint::WallClock,
        Lint::EntropyRng,
        Lint::NoPanic,
        Lint::UnboundedChannel,
        Lint::Layering,
        Lint::ForbidUnsafe,
        Lint::UnsafeConfinement,
        Lint::MetricsName,
        Lint::MetricsManifest,
        Lint::RegistryCoverage,
    ];

    /// The kebab-case name used in diagnostics and `rdx-lint-allow:`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::HashCollections => "hash-collections",
            Lint::WallClock => "wall-clock",
            Lint::EntropyRng => "entropy-rng",
            Lint::NoPanic => "no-panic",
            Lint::UnboundedChannel => "unbounded-channel",
            Lint::Layering => "layering",
            Lint::ForbidUnsafe => "forbid-unsafe",
            Lint::UnsafeConfinement => "unsafe-confinement",
            Lint::MetricsName => "metrics-name",
            Lint::MetricsManifest => "metrics-manifest",
            Lint::RegistryCoverage => "registry-coverage",
        }
    }

    /// One-line description for `rdx-lint list`.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Lint::HashCollections => {
                "forbid std HashMap/HashSet (SipHash nondeterminism) in hot crates"
            }
            Lint::WallClock => "forbid Instant::now/SystemTime outside rdx-bench/rdx-metrics",
            Lint::EntropyRng => "forbid entropy-seeded RNGs outside rdx-bench/rdx-metrics",
            Lint::NoPanic => "forbid unwrap/expect/panic!/unreachable!/todo! in hot-path modules",
            Lint::UnboundedChannel => {
                "forbid unbounded channels (crossbeam unbounded, mpsc::channel) in hot crates"
            }
            Lint::Layering => "enforce the layered crate DAG (no cycles, no upward edges)",
            Lint::ForbidUnsafe => {
                "require #![forbid(unsafe_code)] in every crate root (justified deny allowed)"
            }
            Lint::UnsafeConfinement => "confine `unsafe` tokens to the allowlisted kernel modules",
            Lint::MetricsName => "counter names must match the rdx.<area>.<name> scheme",
            Lint::MetricsManifest => "counters must be declared in COUNTERS.txt (both ways)",
            Lint::RegistryCoverage => {
                "every registry workload needs a static model or a non-affine marker"
            }
        }
    }
}

/// One finding: a named lint, a location, and what to do about it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which lint fired.
    pub lint: Lint,
    /// File path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint.name(),
            self.message
        )
    }
}

/// Renders violations one per line (empty string when clean).
#[must_use]
pub fn render(violations: &[Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("{v}\n"))
        .collect::<String>()
}

/// Lints the workspace rooted at `root` under `config`.
///
/// Returns violations sorted by (file, line, lint); an empty vector
/// means the workspace satisfies every invariant.
///
/// # Errors
///
/// Propagates I/O failures walking the tree (a *missing* counter
/// manifest is a violation, not an error).
pub fn check_workspace(root: &Path, config: &LintConfig) -> io::Result<Vec<Violation>> {
    let crates = workspace::load(root)?;
    let mut sink = Sink::default();

    // The counter manifest, when configured: name set + entry lines.
    let mut declared_entries: Vec<(String, u32)> = Vec::new();
    let mut declared: Option<BTreeSet<String>> = None;
    if let Some(rel) = &config.counters_manifest {
        match std::fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                for (idx, line) in src.lines().enumerate() {
                    let entry = line.split('#').next().unwrap_or("").trim();
                    if !entry.is_empty() {
                        declared_entries.push((
                            entry.to_string(),
                            u32::try_from(idx + 1).unwrap_or(u32::MAX),
                        ));
                    }
                }
                declared = Some(declared_entries.iter().map(|(n, _)| n.clone()).collect());
            }
            Err(_) => sink.emit_path(
                Path::new(rel),
                Lint::MetricsManifest,
                1,
                "counter manifest is configured but missing".to_string(),
            ),
        }
    }

    let mut used_counters = BTreeSet::new();
    for krate in &crates {
        lints::determinism::check(krate, config, &mut sink);
        lints::channels::check(krate, config, &mut sink);
        lints::panics::check(krate, config, &mut sink);
        lints::hygiene::check_unsafe_confinement(krate, config, &mut sink);
        lints::hygiene::check(
            krate,
            config,
            declared.as_ref(),
            &mut used_counters,
            &mut sink,
        );
    }
    lints::layering::check(&crates, config, &mut sink);
    lints::registry::check(&crates, config, &mut sink);
    if declared.is_some() {
        if let Some(rel) = &config.counters_manifest {
            lints::hygiene::check_unused_counters(
                Path::new(rel),
                &declared_entries,
                &used_counters,
                &mut sink,
            );
        }
    }
    Ok(sink.finish())
}
