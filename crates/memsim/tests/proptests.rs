//! Property tests for the machine model: sampling statistics and
//! watchpoint semantics under arbitrary traces.

use memsim::{
    Hardware, Machine, MachineConfig, Profiler, Sample, SamplingConfig, Trap, Watchpoint,
};
use proptest::prelude::*;
use rdx_trace::Trace;

#[derive(Default)]
struct Recorder {
    samples: Vec<u64>,
    traps: Vec<(u64, u64)>, // (armed_at, trap_index)
}

impl Profiler for Recorder {
    fn on_sample(&mut self, sample: &Sample, hw: &mut Hardware) {
        self.samples.push(sample.index);
        if hw.armed_count() < hw.register_count() {
            let _ = hw.arm(Watchpoint::read_write(sample.access.addr, 8), 0);
        }
    }
    fn on_trap(&mut self, trap: &Trap, _hw: &mut Hardware) {
        self.traps.push((trap.info.armed_at, trap.index));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sample count matches n/period within jitter tolerance, samples are
    /// strictly increasing, and every trap fires strictly after its arm.
    #[test]
    fn machine_invariants(
        addrs in prop::collection::vec(0u64..512, 100..2000),
        period in 10u64..200,
        seed in any::<u64>(),
    ) {
        let trace = Trace::from_addresses("p", addrs.iter().map(|a| a * 8));
        let config = MachineConfig {
            sampling: SamplingConfig {
                period,
                jitter: period / 10,
                ..SamplingConfig::default()
            },
            seed,
            ..MachineConfig::default()
        };
        let mut rec = Recorder::default();
        let report = Machine::new(config).run(trace.stream(), &mut rec);
        prop_assert_eq!(report.accesses, addrs.len() as u64);
        prop_assert_eq!(
            report.counters.loads + report.counters.stores,
            addrs.len() as u64
        );
        // strictly increasing sample indices
        for w in rec.samples.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // sampling rate within loose bounds
        let expected = addrs.len() as u64 / period;
        if expected >= 5 {
            let got = rec.samples.len() as u64;
            prop_assert!(got >= expected / 2 && got <= expected * 2,
                "expected ≈{} samples, got {}", expected, got);
        }
        // traps strictly after arming, and counted in the ledger
        for &(armed_at, trap_index) in &rec.traps {
            prop_assert!(trap_index > armed_at);
        }
        prop_assert_eq!(report.ledger.traps as usize, rec.traps.len());
    }

    /// The machine is a pure function of (trace, config).
    #[test]
    fn determinism(
        addrs in prop::collection::vec(0u64..128, 100..800),
        seed in any::<u64>(),
    ) {
        let trace = Trace::from_addresses("d", addrs.iter().map(|a| a * 8));
        let config = MachineConfig::default().with_sampling_period(50).with_seed(seed);
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        Machine::new(config).run(trace.stream(), &mut a);
        Machine::new(config).run(trace.stream(), &mut b);
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.traps, b.traps);
    }
}
