//! Property tests for the machine model: sampling statistics and
//! watchpoint semantics under arbitrary traces.

use memsim::{
    Hardware, Machine, MachineConfig, Profiler, Sample, SamplingConfig, Trap, Watchpoint,
};
use proptest::prelude::*;
use rdx_trace::{Chunked, Opaque, Trace};

#[derive(Default)]
struct Recorder {
    samples: Vec<u64>,
    traps: Vec<(u64, u64)>, // (armed_at, trap_index)
}

impl Profiler for Recorder {
    fn on_sample(&mut self, sample: &Sample, hw: &mut Hardware) {
        self.samples.push(sample.index);
        if hw.armed_count() < hw.register_count() {
            let _ = hw.arm(Watchpoint::read_write(sample.access.addr, 8), 0);
        }
    }
    fn on_trap(&mut self, trap: &Trap, _hw: &mut Hardware) {
        self.traps.push((trap.info.armed_at, trap.index));
    }
}

/// Records complete event payloads (counters included) and keeps the
/// registers churning with FIFO eviction, so any divergence between the
/// machine's two execution paths — event position, slot choice, counter
/// snapshot, arm metadata — shows up as an inequality.
#[derive(Default)]
struct EventLog {
    samples: Vec<Sample>,
    traps: Vec<Trap>,
    finish_armed: Vec<(u64, u64)>, // (armed_at, tag) of still-armed regs
}

impl Profiler for EventLog {
    fn on_sample(&mut self, sample: &Sample, hw: &mut Hardware) {
        self.samples.push(*sample);
        if hw.armed_count() == hw.register_count() {
            let oldest = hw
                .armed_iter()
                .min_by_key(|(_, info)| info.armed_at)
                .map(|(slot, _)| slot)
                .expect("registers are full");
            hw.disarm(oldest);
        }
        hw.arm(Watchpoint::read_write(sample.access.addr, 8), sample.index)
            .expect("a slot is free");
    }

    fn on_trap(&mut self, trap: &Trap, _hw: &mut Hardware) {
        self.traps.push(*trap);
    }

    fn on_finish(&mut self, hw: &mut Hardware) {
        self.finish_armed = hw
            .armed_iter()
            .map(|(_, info)| (info.armed_at, info.tag))
            .collect();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sample count matches n/period within jitter tolerance, samples are
    /// strictly increasing, and every trap fires strictly after its arm.
    #[test]
    fn machine_invariants(
        addrs in prop::collection::vec(0u64..512, 100..2000),
        period in 10u64..200,
        seed in any::<u64>(),
    ) {
        let trace = Trace::from_addresses("p", addrs.iter().map(|a| a * 8));
        let config = MachineConfig {
            sampling: SamplingConfig {
                period,
                jitter: period / 10,
                ..SamplingConfig::default()
            },
            seed,
            ..MachineConfig::default()
        };
        let mut rec = Recorder::default();
        let report = Machine::new(config).run(trace.stream(), &mut rec);
        prop_assert_eq!(report.accesses, addrs.len() as u64);
        prop_assert_eq!(
            report.counters.loads + report.counters.stores,
            addrs.len() as u64
        );
        // strictly increasing sample indices
        for w in rec.samples.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // sampling rate within loose bounds
        let expected = addrs.len() as u64 / period;
        if expected >= 5 {
            let got = rec.samples.len() as u64;
            prop_assert!(got >= expected / 2 && got <= expected * 2,
                "expected ≈{} samples, got {}", expected, got);
        }
        // traps strictly after arming, and counted in the ledger
        for &(armed_at, trap_index) in &rec.traps {
            prop_assert!(trap_index > armed_at);
        }
        prop_assert_eq!(report.ledger.traps as usize, rec.traps.len());
    }

    /// The chunk-scanning fast path delivers the exact event stream of
    /// the per-access slow loop: same samples (with counters), same traps
    /// (slot, arm metadata, counters), same ledger — across arbitrary
    /// load/store mixes, periods, jitter, register counts, and chunk
    /// capacities small enough that reuse pairs straddle chunk borders.
    #[test]
    fn fast_path_equivalent_to_slow_loop(
        accesses in prop::collection::vec((0u64..256, any::<bool>()), 200..2500),
        period in 5u64..200,
        jittered in any::<bool>(),
        registers in 1usize..6,
        chunk_capacity in 3usize..160,
        seed in any::<u64>(),
    ) {
        let trace: Trace = accesses.iter().map(|&(a, s)| (a * 8, s)).collect();
        let config = MachineConfig {
            registers,
            sampling: SamplingConfig {
                period,
                jitter: if jittered { period / 10 } else { 0 },
                ..SamplingConfig::default()
            },
            seed,
            ..MachineConfig::default()
        };
        let machine = Machine::new(config);

        // Slow loop: capability hidden, every access single-steps.
        let mut slow = EventLog::default();
        let slow_report = machine.run(Opaque::new(trace.stream()), &mut slow);
        // Fast path over the whole trace as one zero-copy chunk.
        let mut fast = EventLog::default();
        let fast_report = machine.run(trace.stream(), &mut fast);
        // Fast path over small buffered chunks: overflow gaps and armed
        // watchpoint lifetimes straddle chunk boundaries.
        let mut chunked = EventLog::default();
        let chunked_report = machine.run(
            Chunked::with_capacity(Opaque::new(trace.stream()), chunk_capacity),
            &mut chunked,
        );

        prop_assert_eq!(&slow.samples, &fast.samples);
        prop_assert_eq!(&slow.traps, &fast.traps);
        prop_assert_eq!(&slow.finish_armed, &fast.finish_armed);
        prop_assert_eq!(&slow_report, &fast_report);
        prop_assert_eq!(&slow.samples, &chunked.samples);
        prop_assert_eq!(&slow.traps, &chunked.traps);
        prop_assert_eq!(&slow.finish_armed, &chunked.finish_armed);
        prop_assert_eq!(&slow_report, &chunked_report);
    }

    /// The machine is a pure function of (trace, config).
    #[test]
    fn determinism(
        addrs in prop::collection::vec(0u64..128, 100..800),
        seed in any::<u64>(),
    ) {
        let trace = Trace::from_addresses("d", addrs.iter().map(|a| a * 8));
        let config = MachineConfig::default().with_sampling_period(50).with_seed(seed);
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        Machine::new(config).run(trace.stream(), &mut a);
        Machine::new(config).run(trace.stream(), &mut b);
        prop_assert_eq!(a.samples, b.samples);
        prop_assert_eq!(a.traps, b.traps);
    }
}
