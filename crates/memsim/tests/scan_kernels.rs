//! Scalar-vs-SWAR/SIMD equivalence for the needle scanner.
//!
//! [`NeedleSet::scan`] is the oracle; every kernel in `memsim::kernels`
//! must produce the identical [`ScanOutcome`] — same first-match
//! offset, same store prefix — for arbitrary needle counts, store-only
//! mixes, run lengths and match offsets. Runs are generated with a
//! deliberate bias toward the needle ranges so hits land at arbitrary
//! block offsets (including block-straddling tails), not just never.

use memsim::kernels::{run_scan, scan_kernels};
use memsim::{KernelChoice, KernelKind, NeedleSet};
use proptest::prelude::*;
use rdx_trace::Access;

/// Every kernel kind that must agree with the oracle. `Simd` is always
/// exercised: on hosts without AVX2 it degrades to the portable kernel
/// inside `run_scan`, which must *still* match the oracle.
const KINDS: [KernelKind; 3] = [KernelKind::Scalar, KernelKind::Swar, KernelKind::Simd];

fn needle_strategy() -> impl Strategy<Value = (u64, u64, bool)> {
    // Aligned 8-byte spans near the generated address range, plus
    // arbitrary (unaligned, wide, even wrapping) ranges: the kernels
    // must agree on the raw predicate, not just on armable ranges.
    prop_oneof![
        (0u64..64, Just(8u64), any::<bool>()).prop_map(|(s, w, o)| (s * 8, w, o)),
        (any::<u64>(), 0u64..1 << 48, any::<bool>()),
    ]
}

fn run_strategy() -> impl Strategy<Value = Vec<Access>> {
    // Addresses biased into the needles' aligned window so matches are
    // common at arbitrary offsets; stores mixed throughout.
    prop::collection::vec(
        (
            prop_oneof![3 => 0u64..512, 1 => any::<u64>()],
            any::<bool>(),
        ),
        0..220,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(a, s)| if s { Access::store(a) } else { Access::load(a) })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// All kernels reproduce the oracle's outcome exactly.
    #[test]
    fn kernels_match_scalar_oracle(
        needles in prop::collection::vec(needle_strategy(), 0..7),
        run in run_strategy(),
    ) {
        let set = NeedleSet::from_ranges(&needles);
        let want = set.scan(&run);
        for kind in KINDS {
            let got = run_scan(kind, &set, &run);
            prop_assert_eq!(got, want, "kernel {} deviates", kind.name());
        }
    }

    /// Block boundaries hold no surprises: a single guaranteed hit
    /// planted at every offset of a run is found at that offset by
    /// every kernel, with the same store prefix.
    #[test]
    fn planted_hit_found_at_every_offset(
        len in 1usize..40,
        hit_at_frac in 0.0f64..1.0,
        store_mix in any::<u64>(),
    ) {
        let hit_at = ((len - 1) as f64 * hit_at_frac) as usize;
        let set = NeedleSet::from_ranges(&[(0x10_0000, 8, false)]);
        let run: Vec<Access> = (0..len)
            .map(|i| {
                let addr = if i == hit_at { 0x10_0004 } else { (i as u64) * 8 };
                if store_mix >> (i % 64) & 1 == 1 {
                    Access::store(addr)
                } else {
                    Access::load(addr)
                }
            })
            .collect();
        let want = set.scan(&run);
        prop_assert_eq!(want.first_match, Some(hit_at));
        for kind in KINDS {
            prop_assert_eq!(run_scan(kind, &set, &run), want, "kernel {}", kind.name());
        }
    }
}

/// The capability table always offers scalar and SWAR, and `auto`
/// resolution never lands on an unavailable row.
#[test]
fn capability_table_is_sound() {
    let table = scan_kernels();
    assert!(table
        .iter()
        .any(|e| e.kind == KernelKind::Scalar && e.available));
    assert!(table
        .iter()
        .any(|e| e.kind == KernelKind::Swar && e.available));
    for choice in [
        KernelChoice::Auto,
        KernelChoice::Scalar,
        KernelChoice::Swar,
        KernelChoice::Simd,
    ] {
        let kind = memsim::kernels::resolve_scan(choice);
        assert!(
            table.iter().any(|e| e.kind == kind && e.available),
            "{} resolved to unavailable {}",
            choice.name(),
            kind.name()
        );
    }
}
