//! Scan kernels: interchangeable inner loops for the needle scanner,
//! behind one trait and a capability/cost table.
//!
//! [`Machine::run`](crate::Machine::run)'s fast path owns the event
//! choreography (overflow gaps, trap replay, counter bulk-advance); the
//! per-access needle testing is delegated to a [`ScanKernel`] resolved
//! once per run from [`MachineConfig::scan_kernel`]
//! (crate::MachineConfig::scan_kernel). Three kinds exist workspace-wide
//! (the same [`KernelKind`] taxonomy as the decode side in
//! `rdx_trace::kernels`):
//!
//! * **scalar** — [`NeedleSet::scan`], the original unrolled per-access
//!   loop, kept verbatim. It is the oracle: every other kernel must
//!   produce the identical [`ScanOutcome`] on every input, which the
//!   equivalence proptests in `tests/scan_kernels.rs` enforce.
//! * **swar** — blockwise scanning: accesses are tested eight at a time
//!   with the early-exit branch hoisted out of the per-access loop to a
//!   per-block hit mask, so the needle compares become straight-line
//!   branch-free code LLVM can keep in registers and autovectorize. A
//!   hit block is re-walked scalar-wise for the exact offset and store
//!   prefix (rare: at most one hit per quiet segment).
//! * **simd** — AVX2 on x86_64 (runtime-detected): four 64-bit address
//!   lanes per compare, the unsigned range test done with the
//!   sign-flip + signed-greater-than trick. This is the only `unsafe`
//!   code in the workspace, confined to this module and guarded by
//!   `is_x86_feature_detected!`. Other architectures mark the row
//!   unavailable and resolve to SWAR.
//!
//! The capability/cost table idiom ([`scan_kernels`], `auto` picking
//! the cheapest available row) mirrors `rdx_trace::kernels`: adding an
//! arch kernel (e.g. aarch64 NEON) is one new row plus one impl.

#![allow(unsafe_code)]

#[cfg(target_arch = "x86_64")]
use crate::scan::MAX_NEEDLES;
use crate::scan::{count_stores, NeedleSet, ScanOutcome};
use rdx_trace::Access;
pub use rdx_trace::{KernelChoice, KernelEntry, KernelKind};

/// Accesses tested per block in the SWAR kernel: one hit-mask byte.
const LANES: usize = 8;

/// One interchangeable inner loop of the needle scanner.
///
/// Implementations must be exactly equivalent to the scalar oracle
/// [`NeedleSet::scan`]: same first-match offset, same store prefix
/// count, for every needle set and run.
pub trait ScanKernel {
    /// Which kernel family this is.
    fn kind(&self) -> KernelKind;

    /// Finds the first access in `run` hitting any needle of `set`,
    /// counting the stores that precede it.
    fn scan(&self, set: &NeedleSet, run: &[Access]) -> ScanOutcome;
}

/// The original unrolled per-access loop, retained as the oracle.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarScan;

impl ScanKernel for ScalarScan {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }

    fn scan(&self, set: &NeedleSet, run: &[Access]) -> ScanOutcome {
        set.scan(run)
    }
}

/// The portable blockwise kernel (safe Rust, SIMD-within-a-register in
/// spirit: branch-free per-block hit masks instead of per-access early
/// exits).
#[derive(Debug, Default, Clone, Copy)]
pub struct SwarScan;

impl ScanKernel for SwarScan {
    fn kind(&self) -> KernelKind {
        KernelKind::Swar
    }

    fn scan(&self, set: &NeedleSet, run: &[Access]) -> ScanOutcome {
        let n = set.len();
        if n == 0 {
            return ScanOutcome {
                first_match: None,
                stores_before: count_stores(run),
            };
        }
        // Every armable watchpoint is a power-of-two span on a
        // naturally aligned base (x86 debug-register rules), which
        // turns the range test into a masked XOR equality — a shape
        // baseline SSE autovectorizes, unlike u64 unsigned compares.
        // Arbitrary sets (reachable via `NeedleSet::from_ranges`) take
        // the generic compare path.
        let aligned = (0..n)
            .all(|j| set.span[j].is_power_of_two() && set.base[j].is_multiple_of(set.span[j]));
        // Same monomorphization ladder as the scalar oracle: the needle
        // loop fully unrolls for the common register counts.
        match (aligned, n) {
            (true, 1) => swar_aligned::<1>(set, run),
            (true, 2) => swar_aligned::<2>(set, run),
            (true, 3) => swar_aligned::<3>(set, run),
            (true, 4) => swar_aligned::<4>(set, run),
            (false, 1) => swar_scan::<1>(set, run),
            (false, 2) => swar_scan::<2>(set, run),
            (false, 3) => swar_scan::<3>(set, run),
            (false, 4) => swar_scan::<4>(set, run),
            _ => swar_any(set, run, n),
        }
    }
}

/// Blockwise scan for aligned power-of-two needles: the in-range test
/// is `(addr ^ base) & !(span − 1) == 0` (same address prefix), which
/// is exactly `addr ∈ [base, base + span)` for a span-aligned base.
fn swar_aligned<const N: usize>(set: &NeedleSet, run: &[Access]) -> ScanOutcome {
    let mut base = [0u64; N];
    let mut mask = [0u64; N];
    let mut pass = [0u64; N];
    for j in 0..N {
        base[j] = set.base[j];
        mask[j] = !(set.span[j] - 1);
        pass[j] = u64::from(!set.store_only[j]);
    }
    let mut stores: u64 = 0;
    let mut pos: usize = 0;
    while let Some(block) = run.get(pos..pos + LANES) {
        let mut addrs = [0u64; LANES];
        let mut st = [0u64; LANES];
        for k in 0..LANES {
            addrs[k] = block[k].addr.raw();
            st[k] = u64::from(block[k].kind.is_store());
        }
        let mut hit = [0u64; LANES];
        for j in 0..N {
            for k in 0..LANES {
                hit[k] |= u64::from((addrs[k] ^ base[j]) & mask[j] == 0) & (st[k] | pass[j]);
            }
        }
        let mut any = 0u64;
        let mut block_stores = 0u64;
        for k in 0..LANES {
            any |= hit[k];
            block_stores += st[k];
        }
        if any != 0 {
            // The oracle pins the exact offset and prefix; should a
            // lane ever over-match, falling through only costs time
            // (the scan contract tolerates spurious block hits).
            let sub = set.scan_any(block, N);
            if let Some(off) = sub.first_match {
                return ScanOutcome {
                    first_match: Some(pos + off),
                    stores_before: stores + sub.stores_before,
                };
            }
        }
        stores += block_stores;
        pos += LANES;
    }
    let tail = set.scan_any(&run[pos..], N);
    ScanOutcome {
        first_match: tail.first_match.map(|i| pos + i),
        stores_before: stores + tail.stores_before,
    }
}

/// Monomorphized blockwise scan for small fixed needle counts.
fn swar_scan<const N: usize>(set: &NeedleSet, run: &[Access]) -> ScanOutcome {
    swar_any(set, run, N)
}

/// Blockwise scan body: eight accesses per iteration in
/// structure-of-arrays form, hit decisions accumulated into per-lane
/// masks so the block body is branch-free straight-line u64 arithmetic
/// (the needle loop is outermost over the lane arrays — the shape LLVM
/// autovectorizes).
#[inline(always)]
fn swar_any(set: &NeedleSet, run: &[Access], n: usize) -> ScanOutcome {
    let mut stores: u64 = 0;
    let mut pos: usize = 0;
    while let Some(block) = run.get(pos..pos + LANES) {
        let mut addrs = [0u64; LANES];
        let mut st = [0u64; LANES];
        for k in 0..LANES {
            addrs[k] = block[k].addr.raw();
            st[k] = u64::from(block[k].kind.is_store());
        }
        let mut hit = [0u64; LANES];
        for j in 0..n {
            // Identical predicate to the oracle: in-range iff
            // addr ∈ [base, base + span), store gating per needle.
            let (base, span) = (set.base[j], set.span[j]);
            let pass = u64::from(!set.store_only[j]);
            for k in 0..LANES {
                hit[k] |= u64::from(addrs[k].wrapping_sub(base) < span) & (st[k] | pass);
            }
        }
        let mut any = 0u64;
        let mut block_stores = 0u64;
        for k in 0..LANES {
            any |= hit[k];
            block_stores += st[k];
        }
        if any != 0 {
            // Rare (at most once per quiet segment): re-walk the hit
            // block with the oracle for the exact offset and prefix. An
            // over-matching lane falls through at the cost of a block
            // re-walk — never a wrong outcome.
            let sub = set.scan_any(block, n);
            if let Some(off) = sub.first_match {
                return ScanOutcome {
                    first_match: Some(pos + off),
                    stores_before: stores + sub.stores_before,
                };
            }
        }
        stores += block_stores;
        pos += LANES;
    }
    // Tail (< 8 accesses): the scalar walk, offsets rebased.
    let tail = set.scan_any(&run[pos..], n);
    ScanOutcome {
        first_match: tail.first_match.map(|i| pos + i),
        stores_before: stores + tail.stores_before,
    }
}

/// The x86_64 AVX2 kernel: four address lanes per compare.
///
/// Only constructed when `is_x86_feature_detected!("avx2")` holds (and
/// [`ScanKernel::scan`] re-checks, so a mis-forced kind degrades to the
/// portable kernel instead of executing illegal instructions).
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdScan;

impl ScanKernel for SimdScan {
    fn kind(&self) -> KernelKind {
        KernelKind::Simd
    }

    fn scan(&self, set: &NeedleSet, run: &[Access]) -> ScanOutcome {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified on this CPU.
            return unsafe { avx2::scan(set, run) };
        }
        SwarScan.scan(set, run)
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 lane kernel. All `unsafe` in the workspace lives here;
    //! every intrinsic call is guarded by the caller's feature check.
    //!
    //! Layout-aware lane loading: `Access` is `{ addr: Address(u64),
    //! kind: AccessKind }` with no guaranteed repr, so the kernel reads
    //! the field offsets with `offset_of!` at compile time. On the
    //! expected 16-byte layout (address on an 8-byte boundary) two
    //! accesses are fetched per unaligned 32-byte load and the address
    //! and kind lanes separated with one unpack each — no per-element
    //! scalar extraction. Any other layout falls back to scalar lane
    //! inserts (still AVX2 compares). The loads cover the struct's
    //! padding bytes; every lane derived from padding is masked off
    //! before use (only the address word and the kind byte feed any
    //! predicate).

    use super::LANES;
    use crate::scan::{count_stores, NeedleSet, ScanOutcome};
    use rdx_trace::Access;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_cmpeq_epi64, _mm256_cmpgt_epi64,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_set1_epi64x, _mm256_set_epi64x,
        _mm256_setzero_si256, _mm256_storeu_si256, _mm256_sub_epi64, _mm256_testz_si256,
        _mm256_unpackhi_epi64, _mm256_unpacklo_epi64, _mm256_xor_si256,
    };

    /// Sign-flip constant: turns an unsigned 64-bit compare into the
    /// signed compare AVX2 provides (`a <u b  ⇔  a^MSB <s b^MSB`).
    const MSB: i64 = i64::MIN;

    /// Field geometry of [`Access`], checked at compile time.
    const ACCESS_SIZE: usize = std::mem::size_of::<Access>();
    const ADDR_OFF: usize = std::mem::offset_of!(Access, addr);
    const KIND_OFF: usize = std::mem::offset_of!(Access, kind);

    /// Whether the vectorized loader understands this layout: 16-byte
    /// stride, address word naturally aligned, kind inside the other
    /// word. Holds for every layout rustc actually picks; anything else
    /// (e.g. under randomized layouts) takes the insert-based path.
    const RAW_LANES: bool = ACCESS_SIZE == 16
        && ADDR_OFF.is_multiple_of(8)
        && KIND_OFF < 16
        && (KIND_OFF / 8) != (ADDR_OFF / 8)
        && std::mem::size_of::<rdx_trace::AccessKind>() == 1;

    /// Bit position of the kind byte within its 64-bit lane.
    const KIND_SHIFT: u32 = 8 * ((KIND_OFF % 8) as u32);

    /// The discriminant byte a store's `kind` field carries in memory.
    fn store_kind_byte() -> u8 {
        let probe = Access::store(0u64);
        // SAFETY: `kind` is an initialized one-byte enum field at
        // KIND_OFF inside `probe`.
        unsafe { *std::ptr::from_ref(&probe).cast::<u8>().add(KIND_OFF) }
    }

    /// Sums the four u64 lanes of an accumulator (cold path: once per
    /// scan, at the hit block or the end of the run).
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes.iter().sum()
    }

    /// Blockwise AVX2 scan: two 4-lane compares per 8-access block.
    /// Quiet blocks cost one `testz`; store counts accumulate in vector
    /// lanes and are summed once; the rare hit block is re-walked with
    /// the scalar oracle for the exact offset and store prefix.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support on this CPU.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan(set: &NeedleSet, run: &[Access]) -> ScanOutcome {
        if set.is_empty() {
            return ScanOutcome {
                first_match: None,
                stores_before: count_stores(run),
            };
        }
        // Monomorphize the kind gate away when every needle is
        // read-write (the paper's configuration): the gate ops vanish
        // from the hot loop instead of being re-tested per needle.
        if set.store_only[..set.len()].iter().any(|&s| s) {
            scan_impl::<true>(set, run)
        } else {
            scan_impl::<false>(set, run)
        }
    }

    /// The scan body; `GATED` compiles in the per-needle store gate.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support on this CPU.
    #[target_feature(enable = "avx2")]
    unsafe fn scan_impl<const GATED: bool>(set: &NeedleSet, run: &[Access]) -> ScanOutcome {
        let n = set.len();
        // Hoist the per-needle broadcast constants out of the block
        // loop (n is not a compile-time constant, so LLVM cannot).
        let mut base_v = [_mm256_setzero_si256(); super::MAX_NEEDLES];
        let mut span_flip_v = [_mm256_setzero_si256(); super::MAX_NEEDLES];
        // All-ones for needles that accept loads too: the per-lane gate
        // becomes `st | kind_pass` with no branch in the needle loop.
        let mut kind_pass_v = [_mm256_setzero_si256(); super::MAX_NEEDLES];
        for j in 0..n {
            base_v[j] = _mm256_set1_epi64x(set.base[j] as i64);
            span_flip_v[j] = _mm256_set1_epi64x((set.span[j] as i64) ^ MSB);
            kind_pass_v[j] = _mm256_set1_epi64x(-i64::from(!set.store_only[j]));
        }
        let msb = _mm256_set1_epi64x(MSB);
        let kind_mask = _mm256_set1_epi64x((0xffu64 << KIND_SHIFT) as i64);
        let store_byte = _mm256_set1_epi64x((u64::from(store_kind_byte()) << KIND_SHIFT) as i64);

        let mut store_cnt = _mm256_setzero_si256();
        let mut pos: usize = 0;
        while let Some(block) = run.get(pos..pos + LANES) {
            let (lo, hi, st_lo, st_hi) = if RAW_LANES {
                // Four 32-byte loads fetch the whole block; unpacks
                // split address words from kind words (lane order is
                // permuted, which no consumer below depends on).
                let p: *const __m256i = block.as_ptr().cast();
                let v0 = _mm256_loadu_si256(p);
                let v1 = _mm256_loadu_si256(p.add(1));
                let v2 = _mm256_loadu_si256(p.add(2));
                let v3 = _mm256_loadu_si256(p.add(3));
                let (lo, hi, meta_lo, meta_hi) = if ADDR_OFF == 0 {
                    (
                        _mm256_unpacklo_epi64(v0, v1),
                        _mm256_unpacklo_epi64(v2, v3),
                        _mm256_unpackhi_epi64(v0, v1),
                        _mm256_unpackhi_epi64(v2, v3),
                    )
                } else {
                    (
                        _mm256_unpackhi_epi64(v0, v1),
                        _mm256_unpackhi_epi64(v2, v3),
                        _mm256_unpacklo_epi64(v0, v1),
                        _mm256_unpacklo_epi64(v2, v3),
                    )
                };
                // All-ones lanes where the kind byte says store; the
                // padding bytes in the meta words are masked off here.
                let st_lo = _mm256_cmpeq_epi64(_mm256_and_si256(meta_lo, kind_mask), store_byte);
                let st_hi = _mm256_cmpeq_epi64(_mm256_and_si256(meta_hi, kind_mask), store_byte);
                (lo, hi, st_lo, st_hi)
            } else {
                let mut addr = [0i64; LANES];
                let mut store_lane = [0i64; LANES];
                for (k, access) in block.iter().enumerate() {
                    addr[k] = access.addr.raw() as i64;
                    store_lane[k] = -i64::from(access.kind.is_store());
                }
                (
                    _mm256_set_epi64x(addr[3], addr[2], addr[1], addr[0]),
                    _mm256_set_epi64x(addr[7], addr[6], addr[5], addr[4]),
                    _mm256_set_epi64x(store_lane[3], store_lane[2], store_lane[1], store_lane[0]),
                    _mm256_set_epi64x(store_lane[7], store_lane[6], store_lane[5], store_lane[4]),
                )
            };
            let mut hit_lo = _mm256_setzero_si256();
            let mut hit_hi = _mm256_setzero_si256();
            for j in 0..n {
                // d = addr - base (wrapping);  hit iff d <u span, gated
                // on kind: stores always pass, loads only for
                // read-write needles.
                let d_lo = _mm256_xor_si256(_mm256_sub_epi64(lo, base_v[j]), msb);
                let d_hi = _mm256_xor_si256(_mm256_sub_epi64(hi, base_v[j]), msb);
                let mut in_lo = _mm256_cmpgt_epi64(span_flip_v[j], d_lo);
                let mut in_hi = _mm256_cmpgt_epi64(span_flip_v[j], d_hi);
                if GATED {
                    in_lo = _mm256_and_si256(in_lo, _mm256_or_si256(st_lo, kind_pass_v[j]));
                    in_hi = _mm256_and_si256(in_hi, _mm256_or_si256(st_hi, kind_pass_v[j]));
                }
                hit_lo = _mm256_or_si256(hit_lo, in_lo);
                hit_hi = _mm256_or_si256(hit_hi, in_hi);
            }
            let any = _mm256_or_si256(hit_lo, hit_hi);
            if _mm256_testz_si256(any, any) == 0 {
                // Rare (at most once per quiet segment): the scalar
                // oracle pins the exact offset and in-block prefix. An
                // over-matching lane falls through at the cost of a
                // block re-walk — never a wrong outcome.
                let sub = set.scan_any(block, n);
                if let Some(off) = sub.first_match {
                    return ScanOutcome {
                        first_match: Some(pos + off),
                        stores_before: hsum(store_cnt) + sub.stores_before,
                    };
                }
            }
            // Store-mask lanes are 0 or −1: subtracting adds one per
            // store to the per-lane counters.
            store_cnt = _mm256_sub_epi64(store_cnt, _mm256_add_epi64(st_lo, st_hi));
            pos += LANES;
        }
        let tail = set.scan_any(&run[pos..], n);
        ScanOutcome {
            first_match: tail.first_match.map(|i| pos + i),
            stores_before: hsum(store_cnt) + tail.stores_before,
        }
    }
}

/// The scan-side capability/cost table for this host.
///
/// The `simd` row is available only on x86_64 CPUs with AVX2; elsewhere
/// `resolve` degrades it to the portable SWAR kernel.
#[must_use]
pub fn scan_kernels() -> [KernelEntry; 3] {
    #[cfg(target_arch = "x86_64")]
    let simd_available = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let simd_available = false;
    [
        KernelEntry {
            kind: KernelKind::Scalar,
            available: true,
            cost: 100,
        },
        KernelEntry {
            kind: KernelKind::Swar,
            available: true,
            cost: 45,
        },
        KernelEntry {
            kind: KernelKind::Simd,
            available: simd_available,
            cost: 30,
        },
    ]
}

/// Resolves a scan kernel choice against [`scan_kernels`].
#[must_use]
pub fn resolve_scan(choice: KernelChoice) -> KernelKind {
    rdx_trace::kernels::resolve(&scan_kernels(), choice)
}

/// Runs the scan kernel of `kind` (static dispatch — the machine
/// resolved the kind once per run).
#[inline]
pub fn run_scan(kind: KernelKind, set: &NeedleSet, run: &[Access]) -> ScanOutcome {
    match kind {
        KernelKind::Scalar => ScalarScan.scan(set, run),
        KernelKind::Swar => SwarScan.scan(set, run),
        KernelKind::Simd => SimdScan.scan(set, run),
    }
}

/// The scan kernel instance for `kind`, for benches and tests that
/// drive kernels directly.
#[must_use]
pub fn scan_kernel(kind: KernelKind) -> &'static dyn ScanKernel {
    match kind {
        KernelKind::Scalar => &ScalarScan,
        KernelKind::Swar => &SwarScan,
        KernelKind::Simd => &SimdScan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_of(addrs: &[(u64, bool)]) -> Vec<Access> {
        addrs
            .iter()
            .map(|&(a, s)| if s { Access::store(a) } else { Access::load(a) })
            .collect()
    }

    #[test]
    fn resolve_auto_prefers_fastest_available() {
        let auto = resolve_scan(KernelChoice::Auto);
        // Whatever the host: auto never picks scalar (SWAR is always
        // available and cheaper) and forced choices stick when present.
        assert_ne!(auto, KernelKind::Scalar);
        assert_eq!(resolve_scan(KernelChoice::Scalar), KernelKind::Scalar);
        assert_eq!(resolve_scan(KernelChoice::Swar), KernelKind::Swar);
    }

    #[test]
    fn kernels_agree_on_block_straddling_hits() {
        let set = NeedleSet::from_ranges(&[(0x100, 8, false), (0x200, 8, true)]);
        // 19 accesses: the hit sits at offset 10 — inside the second
        // 8-access block — with 3 stores in the quiet prefix.
        let mut accesses = vec![(0u64, false); 19];
        accesses[2] = (8, true);
        accesses[5] = (16, true);
        accesses[7] = (24, true);
        accesses[10] = (0x204, true); // store-only needle, store access
        let run = run_of(&accesses);
        let want = set.scan(&run);
        assert_eq!(want.first_match, Some(10));
        assert_eq!(want.stores_before, 3);
        for kind in [KernelKind::Scalar, KernelKind::Swar, KernelKind::Simd] {
            let got = run_scan(kind, &set, &run);
            assert_eq!(got, want, "kind={kind:?}");
        }
    }

    #[test]
    fn kernels_agree_on_store_only_suppression() {
        let set = NeedleSet::from_ranges(&[(0x40, 8, true)]);
        let run = run_of(&[(0x40, false), (0x44, false), (0x40, true)]);
        let want = set.scan(&run);
        assert_eq!(want.first_match, Some(2));
        for kind in [KernelKind::Scalar, KernelKind::Swar, KernelKind::Simd] {
            assert_eq!(run_scan(kind, &set, &run), want, "kind={kind:?}");
        }
    }

    #[test]
    fn kernels_agree_on_quiet_runs_and_tails() {
        let set = NeedleSet::from_ranges(&[(0x1000, 8, false)]);
        for len in 0..21u64 {
            let accesses: Vec<(u64, bool)> = (0..len).map(|i| (i * 8, i % 3 == 0)).collect();
            let run = run_of(&accesses);
            let want = set.scan(&run);
            assert_eq!(want.first_match, None);
            for kind in [KernelKind::Scalar, KernelKind::Swar, KernelKind::Simd] {
                assert_eq!(run_scan(kind, &set, &run), want, "len={len} kind={kind:?}");
            }
        }
    }
}
