//! The hardware debug-register (watchpoint) model.
//!
//! x86 exposes four debug-address registers, DR0–DR3. Each can watch a
//! naturally aligned 1-, 2-, 4- or 8-byte range and trap on data reads
//! and/or writes. These are the only per-address trap resources available
//! without instrumentation, and their scarcity (4!) is the central resource
//! constraint that RDX's design works around.

use rdx_trace::{Access, Address};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one debug register (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Slot(pub u8);

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DR{}", self.0)
    }
}

/// Which access kinds a watchpoint traps on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WatchKind {
    /// Trap on writes only (x86 `RW=01`).
    Write,
    /// Trap on reads and writes (x86 `RW=11`).
    ReadWrite,
}

/// An armed watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watchpoint {
    /// Watched base address (aligned to `len`).
    pub addr: Address,
    /// Watched length in bytes: 1, 2, 4 or 8.
    pub len: u8,
    /// Access kinds that trap.
    pub kind: WatchKind,
}

impl Watchpoint {
    /// Creates a read-write watchpoint of `len` bytes at `addr`, aligning
    /// the address *down* to the watch length (hardware requires natural
    /// alignment; aligning down keeps the sampled byte inside the range).
    ///
    /// # Panics
    ///
    /// Panics if `len` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn read_write(addr: Address, len: u8) -> Self {
        assert!(
            matches!(len, 1 | 2 | 4 | 8),
            "watchpoint length must be 1, 2, 4 or 8 bytes, got {len}"
        );
        let aligned = addr.raw() & !(u64::from(len) - 1);
        Watchpoint {
            addr: Address::new(aligned),
            len,
            kind: WatchKind::ReadWrite,
        }
    }

    /// Returns true if `access` falls within the watched range and matches
    /// the watch kind.
    #[must_use]
    pub fn matches(&self, access: &Access) -> bool {
        let kind_ok = match self.kind {
            WatchKind::ReadWrite => true,
            WatchKind::Write => access.kind.is_store(),
        };
        if !kind_ok {
            return false;
        }
        let base = self.addr.raw();
        let a = access.addr.raw();
        a >= base && a < base + u64::from(self.len)
    }
}

/// Metadata recorded when a watchpoint is armed; handed back on trap or
/// disarm so the profiler can attribute the event to its sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArmInfo {
    /// The watchpoint as armed (post-alignment).
    pub watchpoint: Watchpoint,
    /// Access index at which the register was armed.
    pub armed_at: u64,
    /// Total counted accesses at arm time (profiler's counter snapshot).
    pub accesses_at_arm: u64,
    /// Free-form tag supplied by the profiler (e.g. sampled block id).
    pub tag: u64,
}

/// Error arming a watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArmError {
    /// All debug registers are occupied; the profiler must evict first.
    NoFreeRegister,
    /// Slot index out of range for this register file.
    BadSlot(Slot),
    /// Slot already armed (explicit `arm_at` on an occupied slot).
    Occupied(Slot),
}

impl fmt::Display for ArmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArmError::NoFreeRegister => write!(f, "all debug registers are armed"),
            ArmError::BadSlot(s) => write!(f, "no such debug register: {s}"),
            ArmError::Occupied(s) => write!(f, "debug register {s} is already armed"),
        }
    }
}

impl std::error::Error for ArmError {}

/// A file of hardware debug registers.
///
/// The default size is 4, matching x86 DR0–DR3; ablation experiments vary
/// the size to show how RDX's accuracy scales with watchpoint scarcity.
#[derive(Debug, Clone)]
pub struct DebugRegisterFile {
    regs: Vec<Option<ArmInfo>>,
}

impl DebugRegisterFile {
    /// Creates a register file with `n` registers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than 64.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=64).contains(&n),
            "debug register count must be in 1..=64, got {n}"
        );
        DebugRegisterFile {
            regs: vec![None; n],
        }
    }

    /// Number of registers in the file.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns true if the file has no registers (never: construction
    /// requires ≥ 1), present for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Number of currently armed registers.
    #[must_use]
    pub fn armed_count(&self) -> usize {
        self.regs.iter().filter(|r| r.is_some()).count()
    }

    /// Arms a watchpoint in the first free register.
    ///
    /// # Errors
    ///
    /// Returns [`ArmError::NoFreeRegister`] if all registers are armed.
    pub fn arm(&mut self, info: ArmInfo) -> Result<Slot, ArmError> {
        let free = self
            .regs
            .iter()
            .position(|r| r.is_none())
            .ok_or(ArmError::NoFreeRegister)?;
        self.regs[free] = Some(info);
        Ok(Slot(free as u8))
    }

    /// Arms a watchpoint in a specific register.
    ///
    /// # Errors
    ///
    /// Returns an error if the slot does not exist or is occupied.
    pub fn arm_at(&mut self, slot: Slot, info: ArmInfo) -> Result<(), ArmError> {
        let r = self
            .regs
            .get_mut(slot.0 as usize)
            .ok_or(ArmError::BadSlot(slot))?;
        if r.is_some() {
            return Err(ArmError::Occupied(slot));
        }
        *r = Some(info);
        Ok(())
    }

    /// Disarms a register, returning its arm metadata if it was armed.
    pub fn disarm(&mut self, slot: Slot) -> Option<ArmInfo> {
        self.regs.get_mut(slot.0 as usize)?.take()
    }

    /// Returns the arm metadata of a register, if armed.
    #[must_use]
    pub fn armed(&self, slot: Slot) -> Option<&ArmInfo> {
        self.regs.get(slot.0 as usize)?.as_ref()
    }

    /// Iterates over `(slot, info)` for all armed registers.
    pub fn armed_iter(&self) -> impl Iterator<Item = (Slot, &ArmInfo)> {
        self.regs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|info| (Slot(i as u8), info)))
    }

    /// Returns the first armed slot whose watchpoint matches `access`.
    ///
    /// Real hardware reports all matching registers via DR6; profilers in
    /// practice (and RDX in particular) never arm overlapping watchpoints,
    /// so a single match suffices and the machine model asserts this.
    #[must_use]
    pub fn matching(&self, access: &Access) -> Option<Slot> {
        self.armed_iter()
            .find(|(_, info)| info.watchpoint.matches(access))
            .map(|(slot, _)| slot)
    }
}

impl Default for DebugRegisterFile {
    /// The x86 configuration: four registers.
    fn default() -> Self {
        DebugRegisterFile::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Access;

    fn info(addr: u64, len: u8, tag: u64) -> ArmInfo {
        ArmInfo {
            watchpoint: Watchpoint::read_write(Address::new(addr), len),
            armed_at: 0,
            accesses_at_arm: 0,
            tag,
        }
    }

    #[test]
    fn watchpoint_aligns_down() {
        let w = Watchpoint::read_write(Address::new(0x1007), 8);
        assert_eq!(w.addr.raw(), 0x1000);
        assert!(w.matches(&Access::load(0x1007u64)));
        assert!(w.matches(&Access::load(0x1000u64)));
        assert!(!w.matches(&Access::load(0x1008u64)));
    }

    #[test]
    fn watchpoint_widths() {
        for len in [1u8, 2, 4, 8] {
            let w = Watchpoint::read_write(Address::new(64), len);
            assert!(w.matches(&Access::load(64u64)));
            assert!(w.matches(&Access::store(64 + u64::from(len) - 1)));
            assert!(!w.matches(&Access::load(64 + u64::from(len))));
        }
    }

    #[test]
    #[should_panic(expected = "1, 2, 4 or 8")]
    fn bad_width_rejected() {
        let _ = Watchpoint::read_write(Address::new(0), 3);
    }

    #[test]
    fn write_only_watchpoint() {
        let w = Watchpoint {
            kind: WatchKind::Write,
            ..Watchpoint::read_write(Address::new(0x40), 8)
        };
        assert!(!w.matches(&Access::load(0x40u64)));
        assert!(w.matches(&Access::store(0x40u64)));
    }

    #[test]
    fn arm_fills_slots_in_order() {
        let mut drf = DebugRegisterFile::default();
        assert_eq!(drf.len(), 4);
        assert_eq!(drf.arm(info(0x00, 8, 1)).unwrap(), Slot(0));
        assert_eq!(drf.arm(info(0x40, 8, 2)).unwrap(), Slot(1));
        assert_eq!(drf.armed_count(), 2);
        assert_eq!(drf.armed(Slot(0)).unwrap().tag, 1);
        assert!(drf.armed(Slot(2)).is_none());
    }

    #[test]
    fn arm_exhaustion() {
        let mut drf = DebugRegisterFile::new(2);
        drf.arm(info(0, 8, 0)).unwrap();
        drf.arm(info(64, 8, 1)).unwrap();
        assert_eq!(
            drf.arm(info(128, 8, 2)).unwrap_err(),
            ArmError::NoFreeRegister
        );
        // disarm frees a slot
        let freed = drf.disarm(Slot(0)).unwrap();
        assert_eq!(freed.tag, 0);
        assert_eq!(drf.arm(info(128, 8, 2)).unwrap(), Slot(0));
    }

    #[test]
    fn arm_at_specific_slot() {
        let mut drf = DebugRegisterFile::default();
        drf.arm_at(Slot(3), info(0, 8, 9)).unwrap();
        assert_eq!(drf.armed(Slot(3)).unwrap().tag, 9);
        assert_eq!(
            drf.arm_at(Slot(3), info(64, 8, 1)).unwrap_err(),
            ArmError::Occupied(Slot(3))
        );
        assert_eq!(
            drf.arm_at(Slot(7), info(64, 8, 1)).unwrap_err(),
            ArmError::BadSlot(Slot(7))
        );
    }

    #[test]
    fn matching_finds_armed_register() {
        let mut drf = DebugRegisterFile::default();
        drf.arm(info(0x100, 8, 1)).unwrap();
        drf.arm(info(0x200, 8, 2)).unwrap();
        assert_eq!(drf.matching(&Access::load(0x204u64)), Some(Slot(1)));
        assert_eq!(drf.matching(&Access::load(0x300u64)), None);
    }

    #[test]
    fn disarm_twice_is_none() {
        let mut drf = DebugRegisterFile::default();
        drf.arm(info(0, 8, 0)).unwrap();
        assert!(drf.disarm(Slot(0)).is_some());
        assert!(drf.disarm(Slot(0)).is_none());
        assert!(drf.disarm(Slot(9)).is_none());
    }

    #[test]
    fn armed_iter_reports_all() {
        let mut drf = DebugRegisterFile::default();
        drf.arm(info(0, 8, 10)).unwrap();
        drf.arm(info(64, 8, 11)).unwrap();
        drf.disarm(Slot(0));
        let armed: Vec<u64> = drf.armed_iter().map(|(_, i)| i.tag).collect();
        assert_eq!(armed, vec![11]);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn zero_registers_rejected() {
        let _ = DebugRegisterFile::new(0);
    }

    #[test]
    fn error_display() {
        assert!(ArmError::NoFreeRegister.to_string().contains("armed"));
        assert!(ArmError::BadSlot(Slot(5)).to_string().contains("DR5"));
    }
}
