//! The machine event loop tying the PMU and debug registers to a profiler.

use crate::cost::{CostLedger, CostModel};
use crate::debug::{ArmError, ArmInfo, DebugRegisterFile, Slot, Watchpoint};
use crate::kernels::{self, KernelChoice, KernelKind};
use crate::pmu::{CounterSnapshot, Pmu, PmuEvent, PmuOutcome, SamplingConfig};
use crate::scan::NeedleSet;
use rdx_trace::{Access, AccessStream};

/// Machine configuration: register count, sampling mode, cost model, seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineConfig {
    /// Number of hardware debug registers (x86: 4).
    pub registers: usize,
    /// PMU sampling configuration.
    pub sampling: SamplingConfig,
    /// Cycle/byte cost model for overhead accounting.
    pub cost: CostModel,
    /// Seed for the PMU's period randomization.
    pub seed: u64,
    /// Which scan kernel the fast path uses (resolved once per run).
    pub scan_kernel: KernelChoice,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            registers: 4,
            sampling: SamplingConfig::default(),
            cost: CostModel::default(),
            seed: 0x005D_1CE5,
            scan_kernel: KernelChoice::Auto,
        }
    }
}

impl MachineConfig {
    /// Sets the mean sampling period, keeping 10 % jitter.
    #[must_use]
    pub fn with_sampling_period(mut self, period: u64) -> Self {
        self.sampling = SamplingConfig {
            period,
            jitter: period / 10,
            ..self.sampling
        };
        self
    }

    /// Sets the number of debug registers.
    #[must_use]
    pub fn with_registers(mut self, registers: usize) -> Self {
        self.registers = registers;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the full sampling configuration.
    #[must_use]
    pub fn with_sampling(mut self, sampling: SamplingConfig) -> Self {
        self.sampling = sampling;
        self
    }

    /// Selects the fast path's scan kernel (default: auto).
    #[must_use]
    pub fn with_scan_kernel(mut self, kernel: KernelChoice) -> Self {
        self.scan_kernel = kernel;
        self
    }
}

/// A delivered PMU sample: the profiler's overflow handler input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// The sampled access (PEBS gives its precise effective address).
    pub access: Access,
    /// Zero-based index of the access in the run.
    pub index: u64,
    /// Counter values *after* this access retired.
    pub counters: CounterSnapshot,
}

/// A delivered debug trap: the profiler's watchpoint handler input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// The trapping access.
    pub access: Access,
    /// Zero-based index of the access in the run.
    pub index: u64,
    /// The register that fired. The machine has already disarmed it (x86
    /// debug exceptions are delivered with the breakpoint condition
    /// recorded in DR6; profilers clear it before resuming).
    pub slot: Slot,
    /// Arm metadata recorded when the watchpoint was set.
    pub info: ArmInfo,
    /// Counter values *after* the trapping access retired.
    pub counters: CounterSnapshot,
}

/// A client of the simulated machine — the profiler under test.
///
/// Handlers receive a [`Hardware`] view giving controlled access to the
/// debug registers and counters, mirroring what a perf/signal handler can do
/// on a real kernel.
pub trait Profiler {
    /// Called when the sampling counter overflows on an access.
    fn on_sample(&mut self, sample: &Sample, hw: &mut Hardware);

    /// Called when an access hits an armed watchpoint. The watchpoint has
    /// been disarmed before delivery.
    fn on_trap(&mut self, trap: &Trap, hw: &mut Hardware);

    /// Called once after the stream ends, with watchpoints still armed.
    /// Profilers typically drain armed registers here to account for
    /// never-reused (censored) samples.
    fn on_finish(&mut self, hw: &mut Hardware) {
        let _ = hw;
    }
}

/// The hardware interface exposed to profiler handlers.
#[derive(Debug)]
pub struct Hardware<'a> {
    drf: &'a mut DebugRegisterFile,
    ledger: &'a mut CostLedger,
    counters: CounterSnapshot,
    index: u64,
}

impl Hardware<'_> {
    /// Arms a watchpoint in the first free debug register, tagging it with
    /// profiler-chosen metadata. The arm is stamped with the current access
    /// index and counter value.
    ///
    /// # Errors
    ///
    /// Returns [`ArmError::NoFreeRegister`] when all registers are armed;
    /// the profiler must [`disarm`](Hardware::disarm) one first (its
    /// replacement policy).
    pub fn arm(&mut self, watchpoint: Watchpoint, tag: u64) -> Result<Slot, ArmError> {
        let info = ArmInfo {
            watchpoint,
            armed_at: self.index,
            accesses_at_arm: self.counters.loads + self.counters.stores,
            tag,
        };
        let slot = self.drf.arm(info)?;
        self.ledger.arms += 1;
        Ok(slot)
    }

    /// Disarms a register, returning its arm metadata if it was armed.
    pub fn disarm(&mut self, slot: Slot) -> Option<ArmInfo> {
        self.drf.disarm(slot)
    }

    /// Iterates over currently armed registers.
    pub fn armed_iter(&self) -> impl Iterator<Item = (Slot, &ArmInfo)> {
        self.drf.armed_iter()
    }

    /// Number of armed registers.
    #[must_use]
    pub fn armed_count(&self) -> usize {
        self.drf.armed_count()
    }

    /// Total number of debug registers.
    #[must_use]
    pub fn register_count(&self) -> usize {
        self.drf.len()
    }

    /// Current PMU counter values.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        self.counters
    }

    /// Total counted accesses (loads + stores) so far.
    #[must_use]
    pub fn access_count(&self) -> u64 {
        self.counters.loads + self.counters.stores
    }

    /// Zero-based index of the current access (or of the last access, in
    /// [`Profiler::on_finish`]).
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }
}

/// Summary of one machine run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Number of accesses executed.
    pub accesses: u64,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Event counts for overhead accounting.
    pub ledger: CostLedger,
    /// The cost model the machine was configured with.
    pub cost: CostModel,
}

impl RunReport {
    /// Fractional time overhead of the profiler on this run.
    #[must_use]
    pub fn time_overhead(&self) -> f64 {
        self.ledger.time_overhead(&self.cost)
    }
}

/// The simulated machine.
///
/// Drives an [`AccessStream`] through the PMU and debug-register models,
/// delivering samples and traps to a [`Profiler`]. Deterministic for a
/// given configuration (including seed).
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
}

impl Machine {
    /// Creates a machine with the given configuration.
    #[must_use]
    pub fn new(config: MachineConfig) -> Self {
        Machine { config }
    }

    /// The machine's configuration.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs the stream to completion, delivering events to `profiler`.
    ///
    /// Event order on each access: counters advance first; then an armed
    /// watchpoint covering the access fires a [`Trap`] (the register is
    /// disarmed before delivery); then, if the sampling counter overflowed
    /// on this access, a [`Sample`] is delivered. A watchpoint armed inside
    /// a handler is first eligible to fire on the *next* access — hardware
    /// cannot retroactively trap the access that is already retiring.
    ///
    /// # Fast path
    ///
    /// When the stream exposes contiguous chunks
    /// ([`AccessStream::next_chunk`]) and the sampling mode is the precise
    /// all-accesses default (`event == Accesses`, `max_skid == 0`), the
    /// machine skips the per-access state machines for the quiet gaps
    /// between overflows: the PMU countdown bounds how many accesses can
    /// pass without an event, a [`NeedleSet`] scan locates the first
    /// watchpoint hit inside that gap, and counters/ledger advance in
    /// bulk. Only accesses that deliver an event (and the overflow access
    /// itself) take the ordinary step, so samples, traps, evictions, RNG
    /// consumption and cost accounting are bit-identical to the slow
    /// loop. Everything else — non-chunked streams, skidding or
    /// event-filtered sampling, stream tails — falls back per access.
    pub fn run(&self, mut stream: impl AccessStream, profiler: &mut impl Profiler) -> RunReport {
        let mut pmu = Pmu::new(self.config.sampling, self.config.seed);
        let mut drf = DebugRegisterFile::new(self.config.registers);
        let mut ledger = CostLedger::default();
        let mut index: u64 = 0;

        let eligible =
            self.config.sampling.max_skid == 0 && self.config.sampling.event == PmuEvent::Accesses;
        let mut try_chunks = eligible && stream.chunk_capable();
        // One kernel per run: resolved against the host capability
        // table here, never re-dispatched inside the loop.
        let kernel = kernels::resolve_scan(self.config.scan_kernel);
        if try_chunks {
            rdx_metrics::counter("rdx.machine.scan.kernel").incr();
        }
        // Engagement counters, accumulated locally and flushed once so
        // the (feature-gated) metrics atomics stay off the hot path.
        let mut fp_chunks: u64 = 0;
        let mut fp_scanned: u64 = 0;
        let mut fp_fallbacks: u64 = 0;

        loop {
            if try_chunks {
                let consumed = match stream.next_chunk() {
                    Some(chunk) => {
                        fp_chunks += 1;
                        fp_scanned += chunk.len() as u64;
                        run_chunk(
                            chunk,
                            kernel,
                            &mut pmu,
                            &mut drf,
                            &mut ledger,
                            profiler,
                            &mut index,
                        );
                        chunk.len()
                    }
                    None => 0,
                };
                if consumed > 0 {
                    stream.consume_chunk(consumed);
                    continue;
                }
                // No chunk: the stream is exhausted (or lied about its
                // capability); drain whatever is left per access.
                try_chunks = false;
            }
            let Some(access) = stream.next_access() else {
                break;
            };
            fp_fallbacks += 1;
            step_access(access, &mut pmu, &mut drf, &mut ledger, profiler, index);
            index += 1;
        }

        if fp_chunks > 0 || fp_scanned > 0 {
            rdx_metrics::counter("rdx.machine.fastpath.chunks").add(fp_chunks);
            rdx_metrics::counter("rdx.machine.fastpath.scanned_accesses").add(fp_scanned);
            // Per-kernel totals, named literally per match arm so the
            // counter-manifest lint sees every name.
            match kernel {
                KernelKind::Scalar => {
                    rdx_metrics::counter("rdx.machine.scan.scalar_accesses").add(fp_scanned);
                }
                KernelKind::Swar => {
                    rdx_metrics::counter("rdx.machine.scan.swar_accesses").add(fp_scanned);
                }
                KernelKind::Simd => {
                    rdx_metrics::counter("rdx.machine.scan.simd_accesses").add(fp_scanned);
                }
            }
        }
        if fp_fallbacks > 0 {
            rdx_metrics::counter("rdx.machine.fastpath.fallbacks").add(fp_fallbacks);
        }

        let counters = pmu.counters();
        let mut hw = Hardware {
            drf: &mut drf,
            ledger: &mut ledger,
            counters,
            index: index.saturating_sub(1),
        };
        profiler.on_finish(&mut hw);

        RunReport {
            accesses: index,
            counters,
            ledger,
            cost: self.config.cost,
        }
    }
}

/// One access through the full PMU + debug-register state machines: the
/// single stepping implementation both the slow loop and the fast path's
/// event deliveries go through.
fn step_access(
    access: Access,
    pmu: &mut Pmu,
    drf: &mut DebugRegisterFile,
    ledger: &mut CostLedger,
    profiler: &mut impl Profiler,
    index: u64,
) {
    let outcome = pmu.on_event(access.kind.is_store());
    ledger.accesses += 1;
    let counters = pmu.counters();

    if let Some(slot) = drf.matching(&access) {
        // Disarm before delivery, like a real handler clearing DR7;
        // matching() only returns armed slots, so disarm cannot miss.
        if let Some(info) = drf.disarm(slot) {
            ledger.traps += 1;
            let trap = Trap {
                access,
                index,
                slot,
                info,
                counters,
            };
            let mut hw = Hardware {
                drf,
                ledger,
                counters,
                index,
            };
            profiler.on_trap(&trap, &mut hw);
        }
    }

    if outcome == PmuOutcome::SampleHere {
        ledger.samples += 1;
        let sample = Sample {
            access,
            index,
            counters,
        };
        let mut hw = Hardware {
            drf,
            ledger,
            counters,
            index,
        };
        profiler.on_sample(&sample, &mut hw);
    }
}

/// Replays one contiguous chunk through the event-driven fast path.
///
/// Invariant on entry and exit: `pmu.countdown() ≥ 1`, no skid pending,
/// and the needle set is rebuilt after every delivered event (the only
/// points where a handler can rearrange the registers). Each iteration
/// handles one *segment*: the quiet prefix bounded by the next overflow
/// (`countdown − 1` accesses) and the chunk end, scanned in bulk, then
/// at most one single-stepped event access.
fn run_chunk(
    chunk: &[Access],
    kernel: KernelKind,
    pmu: &mut Pmu,
    drf: &mut DebugRegisterFile,
    ledger: &mut CostLedger,
    profiler: &mut impl Profiler,
    index: &mut u64,
) {
    let mut needles = NeedleSet::from_registers(drf);
    let mut pos: usize = 0;
    while pos < chunk.len() {
        let remaining = chunk.len() - pos;
        // The overflow access itself must single-step (it consumes RNG
        // and delivers the sample), so the scannable quiet run is at
        // most countdown − 1 accesses long.
        let gap = pmu.countdown() - 1;
        let quiet = remaining.min(usize::try_from(gap).unwrap_or(usize::MAX));
        let scan = kernels::run_scan(kernel, &needles, &chunk[pos..pos + quiet]);
        match scan.first_match {
            Some(off) => {
                // Trap inside the quiet run: bulk-advance the prefix,
                // then step the trapping access for real.
                let prefix = off as u64;
                pmu.advance_quiet(prefix - scan.stores_before, scan.stores_before);
                ledger.accesses += prefix;
                *index += prefix;
                step_access(chunk[pos + off], pmu, drf, ledger, profiler, *index);
                *index += 1;
                pos += off + 1;
                needles = NeedleSet::from_registers(drf);
            }
            None => {
                // Whole quiet run passes without an event.
                let run = quiet as u64;
                pmu.advance_quiet(run - scan.stores_before, scan.stores_before);
                ledger.accesses += run;
                *index += run;
                pos += quiet;
                if quiet < remaining {
                    // Next access overflows the sampling counter.
                    step_access(chunk[pos], pmu, drf, ledger, profiler, *index);
                    *index += 1;
                    pos += 1;
                    needles = NeedleSet::from_registers(drf);
                }
                // else: chunk exhausted mid-gap; the countdown carries
                // the remainder into the next chunk (or the run's end).
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::{Address, Trace};

    /// Records every event it sees; arms a watchpoint on each sample.
    #[derive(Default)]
    struct Recorder {
        samples: Vec<Sample>,
        traps: Vec<Trap>,
        finish_armed: usize,
    }

    impl Profiler for Recorder {
        fn on_sample(&mut self, sample: &Sample, hw: &mut Hardware) {
            self.samples.push(*sample);
            let wp = Watchpoint::read_write(sample.access.addr, 8);
            // Evict the oldest armed register if full (FIFO), like RDX.
            if hw.armed_count() == hw.register_count() {
                let oldest = hw
                    .armed_iter()
                    .min_by_key(|(_, info)| info.armed_at)
                    .map(|(slot, _)| slot)
                    .expect("registers are full");
                hw.disarm(oldest);
            }
            hw.arm(wp, sample.access.addr.raw()).expect("slot freed");
        }

        fn on_trap(&mut self, trap: &Trap, _hw: &mut Hardware) {
            self.traps.push(*trap);
        }

        fn on_finish(&mut self, hw: &mut Hardware) {
            self.finish_armed = hw.armed_count();
        }
    }

    fn config(period: u64) -> MachineConfig {
        let mut c = MachineConfig::default().with_sampling_period(period);
        c.sampling.jitter = 0;
        c
    }

    #[test]
    fn trap_fires_on_reuse() {
        // Period 4: sample lands on the 4th access (index 3, addr 0), which
        // repeats every 4 accesses; the next access to 0 is index 4.
        let addrs = [0u64, 8, 16, 0, 0, 8, 16, 0];
        let trace = Trace::from_addresses("t", addrs);
        let mut rec = Recorder::default();
        let report = Machine::new(config(4)).run(trace.stream(), &mut rec);
        assert_eq!(report.accesses, 8);
        assert_eq!(rec.samples.len(), 2);
        assert_eq!(rec.samples[0].index, 3);
        assert_eq!(rec.samples[0].access.addr, Address::new(0));
        // watchpoint on 0 armed at index 3 → traps at index 4
        assert_eq!(rec.traps.len(), 1);
        assert_eq!(rec.traps[0].index, 4);
        assert_eq!(rec.traps[0].info.armed_at, 3);
        // reuse time from counter snapshots: accesses strictly between = 0
        let rt = rec.traps[0].counters.value(crate::PmuEvent::Accesses)
            - rec.traps[0].info.accesses_at_arm
            - 1;
        assert_eq!(rt, 0);
    }

    #[test]
    fn armed_watchpoint_does_not_trap_its_own_access() {
        // Single address: each sample arms on the same access's address, and
        // the trap must come on a LATER access.
        let trace = Trace::from_addresses("same", std::iter::repeat_n(0x40u64, 20));
        let mut rec = Recorder::default();
        Machine::new(config(5)).run(trace.stream(), &mut rec);
        for t in &rec.traps {
            assert!(t.index > t.info.armed_at);
        }
        assert!(!rec.traps.is_empty());
    }

    #[test]
    fn no_reuse_no_traps() {
        let trace = Trace::from_addresses("stream", (0..1000u64).map(|i| i * 64));
        let mut rec = Recorder::default();
        let report = Machine::new(config(100)).run(trace.stream(), &mut rec);
        assert_eq!(rec.traps.len(), 0);
        assert_eq!(rec.samples.len(), 10);
        // on_finish saw the still-armed registers (4 at most, ≥1 armed)
        assert!(rec.finish_armed >= 1);
        assert_eq!(report.ledger.samples, 10);
        assert_eq!(report.ledger.traps, 0);
    }

    #[test]
    fn ledger_counts_arms() {
        let trace = Trace::from_addresses("a", (0..1000u64).map(|i| (i % 10) * 64));
        let mut rec = Recorder::default();
        let report = Machine::new(config(50)).run(trace.stream(), &mut rec);
        assert_eq!(report.ledger.arms as usize, rec.samples.len());
        assert_eq!(report.ledger.accesses, 1000);
    }

    #[test]
    fn overhead_reflects_event_counts() {
        let trace = Trace::from_addresses("o", (0..100_000u64).map(|i| (i % 100) * 64));
        let mut rec = Recorder::default();
        let report = Machine::new(config(10_000)).run(trace.stream(), &mut rec);
        // 10 samples + ≤10 traps at 10k cycles each vs 300k base cycles.
        let ovh = report.time_overhead();
        assert!(ovh > 0.0 && ovh < 0.5, "overhead {ovh} out of range");
    }

    #[test]
    fn deterministic_runs() {
        let trace = Trace::from_addresses("d", (0..10_000u64).map(|i| (i * 37) % 4096 * 64));
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        let cfg = MachineConfig::default()
            .with_sampling_period(500)
            .with_seed(11);
        Machine::new(cfg).run(trace.stream(), &mut a);
        Machine::new(cfg).run(trace.stream(), &mut b);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.traps, b.traps);
    }

    #[test]
    fn different_seed_different_samples() {
        let trace = Trace::from_addresses("s", (0..100_000u64).map(|i| (i % 333) * 64));
        let mut a = Recorder::default();
        let mut b = Recorder::default();
        Machine::new(
            MachineConfig::default()
                .with_sampling_period(1000)
                .with_seed(1),
        )
        .run(trace.stream(), &mut a);
        Machine::new(
            MachineConfig::default()
                .with_sampling_period(1000)
                .with_seed(2),
        )
        .run(trace.stream(), &mut b);
        assert_ne!(
            a.samples.iter().map(|s| s.index).collect::<Vec<_>>(),
            b.samples.iter().map(|s| s.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_stream_still_calls_finish() {
        struct FinishFlag(bool);
        impl Profiler for FinishFlag {
            fn on_sample(&mut self, _: &Sample, _: &mut Hardware) {}
            fn on_trap(&mut self, _: &Trap, _: &mut Hardware) {}
            fn on_finish(&mut self, _: &mut Hardware) {
                self.0 = true;
            }
        }
        let trace = Trace::new("e");
        let mut p = FinishFlag(false);
        let report = Machine::new(MachineConfig::default()).run(trace.stream(), &mut p);
        assert!(p.0);
        assert_eq!(report.accesses, 0);
    }

    #[test]
    fn config_builders() {
        let c = MachineConfig::default()
            .with_registers(2)
            .with_sampling_period(100)
            .with_seed(5);
        assert_eq!(c.registers, 2);
        assert_eq!(c.sampling.period, 100);
        assert_eq!(c.sampling.jitter, 10);
        assert_eq!(c.seed, 5);
    }
}
