//! A simulated commodity-CPU substrate for sampling-based profilers.
//!
//! The RDX paper runs on real x86 hardware and uses two facilities that are
//! present in every commodity processor:
//!
//! 1. **Performance-counter sampling** — a PMU counter counts retired memory
//!    accesses and raises an interrupt every `period` events, delivering the
//!    precise effective address of the sampled access (PEBS-style).
//! 2. **Hardware debug registers** — x86 exposes four (DR0–DR3) address
//!    watchpoints that trap on the next load/store to a small aligned range.
//!
//! This crate models both faithfully enough that a profiler written against
//! it exhibits the same statistical behaviour as one written against
//! `perf_event_open` + `ptrace`/`perf` breakpoints:
//!
//! * [`Pmu`] — event counters and a sampling engine with **period
//!   randomization** (to break lock-step with loops) and an optional **skid**
//!   model (non-PEBS sampling delivers a nearby, later access).
//! * [`DebugRegisterFile`] — a small, fixed set of watchpoints with x86
//!   width/alignment rules (1/2/4/8 bytes, naturally aligned).
//! * [`Machine`] — the event loop: drives an access stream through the PMU
//!   and debug registers and calls back into a [`Profiler`] exactly like the
//!   kernel delivers PMU interrupts and debug traps to a signal handler.
//! * [`CostModel`] / [`CostLedger`] — a cycle/byte cost model so that the
//!   time and memory overheads the paper reports (≈5 % / ≈7 %) can be
//!   reproduced from event counts.
//!
//! The machine is deterministic given a seed, which makes every experiment
//! in this workspace reproducible.
//!
//! # Example
//!
//! ```
//! use memsim::{Machine, MachineConfig, Profiler, Hardware, Sample, Trap};
//! use rdx_trace::Trace;
//!
//! /// Counts samples and arms nothing.
//! #[derive(Default)]
//! struct SampleCounter {
//!     samples: u64,
//! }
//!
//! impl Profiler for SampleCounter {
//!     fn on_sample(&mut self, _sample: &Sample, _hw: &mut Hardware) {
//!         self.samples += 1;
//!     }
//!     fn on_trap(&mut self, _trap: &Trap, _hw: &mut Hardware) {}
//! }
//!
//! let trace = Trace::from_addresses("demo", (0..10_000u64).map(|i| i * 64));
//! let mut profiler = SampleCounter::default();
//! let config = MachineConfig::default().with_sampling_period(1000);
//! let report = Machine::new(config).run(trace.stream(), &mut profiler);
//! assert_eq!(report.accesses, 10_000);
//! assert!(profiler.samples >= 9);
//! ```

// The AVX2 scan kernel needs core::arch intrinsics, so this crate can
// only *deny* unsafe code, not forbid it: `kernels.rs` re-allows it for
// exactly that module, and the unsafe-confinement lint pins every
// `unsafe` token in the workspace to that one file.
// rdx-lint-allow: forbid-unsafe — arch intrinsics confined to kernels.rs
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod debug;
pub mod kernels;
mod machine;
mod pmu;
mod scan;

pub use cost::{CostLedger, CostModel};
pub use debug::{ArmError, ArmInfo, DebugRegisterFile, Slot, WatchKind, Watchpoint};
pub use kernels::{KernelChoice, KernelEntry, KernelKind, ScanKernel};
pub use machine::{Hardware, Machine, MachineConfig, Profiler, RunReport, Sample, Trap};
pub use pmu::{CounterSnapshot, Pmu, PmuEvent, SamplingConfig};
pub use scan::{NeedleSet, ScanOutcome};
