//! The cycle/byte cost model used to reproduce the paper's overhead results.
//!
//! Real overhead measurements are wall-clock and RSS; in a simulated
//! substrate both are first-order linear in event counts, so we account
//! events and convert with calibrated per-event cycle costs. The defaults
//! are calibrated to published magnitudes for a ~2.5 GHz x86 server:
//!
//! * an application memory access plus its surrounding non-memory work:
//!   ~3 cycles,
//! * a PMU overflow interrupt + PEBS readout + debug-register arming
//!   syscall: ~6 000 cycles (≈2.4 µs),
//! * a debug trap (signal delivery + handler + disarm): ~4 000 cycles,
//! * an exhaustive-instrumentation per-access callback (Pin-style analysis
//!   routine plus Olken-tree update): ~250 cycles.
//!
//! With the paper's default sampling period of 64 Ki accesses this yields
//! RDX time overhead ≈ (6000+4000)/(65536·3) ≈ 5 % — the abstract's number —
//! while the instrumentation baseline lands at (3+250)/3 ≈ 84×, i.e. the
//! "orders of magnitude" the abstract contrasts against.

use serde::{Deserialize, Serialize};

/// Per-event cycle costs and fixed memory footprints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Application cycles attributed to one memory access (base work).
    pub cycles_per_access: f64,
    /// Cycles for one PMU sample: overflow interrupt, PEBS record readout,
    /// handler logic and arming a debug register.
    pub cycles_per_sample: f64,
    /// Cycles for one debug-register trap: exception, signal delivery,
    /// handler logic and disarming.
    pub cycles_per_trap: f64,
    /// Cycles for one exhaustive-instrumentation callback (baseline tools).
    pub cycles_per_instrumented_access: f64,
    /// Fixed profiler memory: runtime library, perf ring buffers, signal
    /// stacks (bytes).
    pub profiler_fixed_bytes: u64,
    /// Per-distinct-block bookkeeping bytes of an exhaustive tool
    /// (hash-map entry + Olken tree node).
    pub instrumentation_bytes_per_block: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cycles_per_access: 3.0,
            cycles_per_sample: 6_000.0,
            cycles_per_trap: 4_000.0,
            cycles_per_instrumented_access: 250.0,
            profiler_fixed_bytes: 512 * 1024,
            instrumentation_bytes_per_block: 88,
        }
    }
}

/// Event counts accumulated during a run, convertible to overheads via a
/// [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CostLedger {
    /// Memory accesses executed by the application.
    pub accesses: u64,
    /// PMU samples delivered.
    pub samples: u64,
    /// Debug traps delivered.
    pub traps: u64,
    /// Watchpoint arm operations.
    pub arms: u64,
}

impl CostLedger {
    /// Application base cycles without any profiling.
    #[must_use]
    pub fn base_cycles(&self, model: &CostModel) -> f64 {
        self.accesses as f64 * model.cycles_per_access
    }

    /// Extra cycles spent in the sampling profiler.
    #[must_use]
    pub fn profiling_cycles(&self, model: &CostModel) -> f64 {
        self.samples as f64 * model.cycles_per_sample + self.traps as f64 * model.cycles_per_trap
    }

    /// Fractional time overhead of the sampling profiler
    /// (`profiling / base`); 0 when no accesses ran.
    #[must_use]
    pub fn time_overhead(&self, model: &CostModel) -> f64 {
        let base = self.base_cycles(model);
        if base == 0.0 {
            0.0
        } else {
            self.profiling_cycles(model) / base
        }
    }

    /// Slowdown factor of an exhaustive-instrumentation tool on the same
    /// run (`(base + callbacks) / base`).
    #[must_use]
    pub fn instrumentation_slowdown(&self, model: &CostModel) -> f64 {
        if self.accesses == 0 {
            return 1.0;
        }
        (model.cycles_per_access + model.cycles_per_instrumented_access) / model.cycles_per_access
    }

    /// Bytes of bookkeeping an exhaustive tool needs for `distinct_blocks`
    /// monitored blocks.
    #[must_use]
    pub fn instrumentation_bytes(&self, model: &CostModel, distinct_blocks: u64) -> u64 {
        distinct_blocks.saturating_mul(model.instrumentation_bytes_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_gives_paper_overhead() {
        // One sample + one trap per 64Ki accesses ≈ 5% overhead.
        let model = CostModel::default();
        let ledger = CostLedger {
            accesses: 64 * 1024 * 100,
            samples: 100,
            traps: 100,
            arms: 100,
        };
        let ovh = ledger.time_overhead(&model);
        assert!(
            (0.03..0.08).contains(&ovh),
            "expected ≈5% overhead, got {ovh}"
        );
    }

    #[test]
    fn instrumentation_is_orders_of_magnitude() {
        let model = CostModel::default();
        let ledger = CostLedger {
            accesses: 1000,
            ..CostLedger::default()
        };
        let slow = ledger.instrumentation_slowdown(&model);
        assert!(
            slow > 50.0,
            "instrumentation slowdown {slow} should be ≫10×"
        );
    }

    #[test]
    fn zero_access_run() {
        let model = CostModel::default();
        let ledger = CostLedger::default();
        assert_eq!(ledger.time_overhead(&model), 0.0);
        assert_eq!(ledger.instrumentation_slowdown(&model), 1.0);
        assert_eq!(ledger.base_cycles(&model), 0.0);
    }

    #[test]
    fn overhead_scales_with_sampling_rate() {
        let model = CostModel::default();
        let sparse = CostLedger {
            accesses: 1_000_000,
            samples: 15,
            traps: 15,
            arms: 15,
        };
        let dense = CostLedger {
            accesses: 1_000_000,
            samples: 1500,
            traps: 1500,
            arms: 1500,
        };
        assert!(dense.time_overhead(&model) > 50.0 * sparse.time_overhead(&model));
    }

    #[test]
    fn instrumentation_memory_scales_with_footprint() {
        let model = CostModel::default();
        let ledger = CostLedger::default();
        assert_eq!(ledger.instrumentation_bytes(&model, 0), 0);
        assert_eq!(
            ledger.instrumentation_bytes(&model, 1 << 20),
            (1u64 << 20) * 88
        );
    }
}
