//! The performance-monitoring-unit model: counters and sampling.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Countable PMU events.
///
/// Real hardware exposes these as `MEM_UOPS_RETIRED.ALL_LOADS`,
/// `MEM_UOPS_RETIRED.ALL_STORES` and their sum; RDX programs one counter in
/// sampling mode and reads the aggregate counters from its handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PmuEvent {
    /// Retired memory loads.
    Loads,
    /// Retired memory stores.
    Stores,
    /// All retired memory accesses (loads + stores).
    Accesses,
}

/// A snapshot of all PMU counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Retired loads so far.
    pub loads: u64,
    /// Retired stores so far.
    pub stores: u64,
}

impl CounterSnapshot {
    /// Value of the given event in this snapshot.
    #[must_use]
    pub fn value(&self, event: PmuEvent) -> u64 {
        match event {
            PmuEvent::Loads => self.loads,
            PmuEvent::Stores => self.stores,
            PmuEvent::Accesses => self.loads + self.stores,
        }
    }
}

/// Configuration of the sampling engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Event driving the sampling counter.
    pub event: PmuEvent,
    /// Mean sampling period (events between samples). Must be non-zero.
    pub period: u64,
    /// If non-zero, each inter-sample gap is drawn uniformly from
    /// `[period − jitter, period + jitter]`. Randomization breaks lock-step
    /// resonance between the sampling period and loop trip counts — the
    /// standard technique RDX inherits from PMU-profiling practice.
    pub jitter: u64,
    /// Maximum sampling skid in events. 0 models PEBS-precise sampling
    /// (the sampled address is exact); `k > 0` delivers the address of an
    /// access up to `k` events *after* the counter overflow, drawn
    /// uniformly — the behaviour of non-precise interrupts.
    pub max_skid: u64,
}

impl SamplingConfig {
    /// Precise (PEBS-like) sampling of all memory accesses with 10 %
    /// period randomization, the profiler's default mode.
    #[must_use]
    pub fn precise(period: u64) -> Self {
        SamplingConfig {
            event: PmuEvent::Accesses,
            period,
            jitter: period / 10,
            max_skid: 0,
        }
    }

    /// Disables jitter (fixed period). Used by the randomization ablation.
    #[must_use]
    pub fn without_jitter(mut self) -> Self {
        self.jitter = 0;
        self
    }

    /// Sets the maximum skid. Used by the skid ablation.
    #[must_use]
    pub fn with_skid(mut self, max_skid: u64) -> Self {
        self.max_skid = max_skid;
        self
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig::precise(64 * 1024)
    }
}

/// The PMU: free-running counters plus a sampling countdown.
#[derive(Debug, Clone)]
pub struct Pmu {
    counters: CounterSnapshot,
    config: SamplingConfig,
    /// Events until the next counter overflow.
    countdown: u64,
    /// Pending skid: number of further events to let pass before the
    /// overflowed sample is materialized. `None` when no overflow pending.
    pending_skid: Option<u64>,
    rng: SmallRng,
}

/// What the PMU reports for one event, returned by [`Pmu::on_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmuOutcome {
    /// Nothing sampled at this event.
    Quiet,
    /// This event is a sample: the profiler's overflow handler runs on it.
    SampleHere,
}

impl Pmu {
    /// Creates a PMU with the given sampling configuration and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `config.period` is zero or `config.jitter >= config.period`.
    #[must_use]
    pub fn new(config: SamplingConfig, seed: u64) -> Self {
        assert!(config.period > 0, "sampling period must be non-zero");
        assert!(
            config.jitter < config.period,
            "jitter must be smaller than the period"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let countdown = Self::draw_gap(&config, &mut rng);
        Pmu {
            counters: CounterSnapshot::default(),
            config,
            countdown,
            pending_skid: None,
            rng,
        }
    }

    fn draw_gap(config: &SamplingConfig, rng: &mut SmallRng) -> u64 {
        if config.jitter == 0 {
            config.period
        } else {
            rng.random_range(config.period - config.jitter..=config.period + config.jitter)
        }
    }

    /// Current counter values.
    #[must_use]
    pub fn counters(&self) -> CounterSnapshot {
        self.counters
    }

    /// The sampling configuration.
    #[must_use]
    pub fn config(&self) -> SamplingConfig {
        self.config
    }

    /// Counted events until the next overflow fires (always ≥ 1: the
    /// countdown is re-armed the instant it reaches zero).
    #[must_use]
    pub fn countdown(&self) -> u64 {
        self.countdown
    }

    /// True while an overflowed (skidding) sample has yet to materialize.
    ///
    /// The bulk fast path must not engage while this is set: the skid
    /// pipeline advances per counted event.
    #[must_use]
    pub fn skid_pending(&self) -> bool {
        self.pending_skid.is_some()
    }

    /// Bulk-advances the PMU over a run of events known to be quiet.
    ///
    /// Equivalent to `loads + stores` calls to [`Pmu::on_event`] that all
    /// return [`PmuOutcome::Quiet`] — same counter values, same countdown,
    /// and (crucially) no RNG consumption, so a subsequent single-stepped
    /// overflow draws the identical next gap. The caller must guarantee
    /// quietness: the run must be shorter than the countdown when the
    /// sampled event is `Accesses`, and no skid may be in flight.
    ///
    /// Event-kind filtering (`Loads`/`Stores` sampling) would make "events
    /// until overflow" depend on the mix, so bulk advance is restricted to
    /// the `Accesses` event RDX actually samples; debug builds assert all
    /// of this.
    pub fn advance_quiet(&mut self, loads: u64, stores: u64) {
        debug_assert_eq!(
            self.config.event,
            PmuEvent::Accesses,
            "bulk advance only models the all-accesses sampling event"
        );
        debug_assert!(self.pending_skid.is_none(), "skid in flight");
        let counted = loads + stores;
        debug_assert!(counted < self.countdown, "bulk run covers an overflow");
        self.counters.loads += loads;
        self.counters.stores += stores;
        self.countdown -= counted;
    }

    /// Advances the PMU by one memory access event.
    ///
    /// `is_store` selects which counter increments. Returns whether the
    /// profiler's sample handler should run *on this event*.
    pub fn on_event(&mut self, is_store: bool) -> PmuOutcome {
        if is_store {
            self.counters.stores += 1;
        } else {
            self.counters.loads += 1;
        }
        let counted = match self.config.event {
            PmuEvent::Loads => !is_store,
            PmuEvent::Stores => is_store,
            PmuEvent::Accesses => true,
        };

        if !counted {
            return PmuOutcome::Quiet;
        }

        // A skidding sample in flight materializes on a later counted event.
        // The hardware counter keeps counting meanwhile, so the countdown to
        // the next overflow advances independently of the skid pipeline.
        let mut fire = false;
        if let Some(left) = self.pending_skid {
            if left == 0 {
                self.pending_skid = None;
                fire = true;
            } else {
                self.pending_skid = Some(left - 1);
            }
        }

        self.countdown -= 1;
        if self.countdown == 0 {
            // Overflow. Rearm, then either sample right here (precise) or
            // start the skid countdown.
            self.countdown = Self::draw_gap(&self.config, &mut self.rng);
            if self.config.max_skid == 0 {
                fire = true;
            } else {
                let skid = self.rng.random_range(0..=self.config.max_skid);
                if skid == 0 {
                    fire = true;
                } else {
                    // An unmaterialized older skid is overwritten: the
                    // sample is lost, as on real hardware when interrupts
                    // pile up faster than they are serviced.
                    self.pending_skid = Some(skid - 1);
                }
            }
        }
        if fire {
            PmuOutcome::SampleHere
        } else {
            PmuOutcome::Quiet
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_kinds() {
        let mut pmu = Pmu::new(SamplingConfig::precise(1000).without_jitter(), 1);
        for i in 0..10 {
            pmu.on_event(i % 3 == 0);
        }
        let c = pmu.counters();
        assert_eq!(c.stores, 4);
        assert_eq!(c.loads, 6);
        assert_eq!(c.value(PmuEvent::Accesses), 10);
        assert_eq!(c.value(PmuEvent::Loads), 6);
        assert_eq!(c.value(PmuEvent::Stores), 4);
    }

    #[test]
    fn fixed_period_samples_exactly() {
        let mut pmu = Pmu::new(
            SamplingConfig {
                event: PmuEvent::Accesses,
                period: 100,
                jitter: 0,
                max_skid: 0,
            },
            7,
        );
        let mut sample_indices = Vec::new();
        for i in 1..=1000u64 {
            if pmu.on_event(false) == PmuOutcome::SampleHere {
                sample_indices.push(i);
            }
        }
        assert_eq!(
            sample_indices,
            (1..=10).map(|k| k * 100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn jittered_period_mean_close() {
        let mut pmu = Pmu::new(
            SamplingConfig {
                event: PmuEvent::Accesses,
                period: 100,
                jitter: 30,
                max_skid: 0,
            },
            42,
        );
        let mut samples = 0u64;
        let n = 1_000_000u64;
        for _ in 0..n {
            if pmu.on_event(false) == PmuOutcome::SampleHere {
                samples += 1;
            }
        }
        let mean_gap = n as f64 / samples as f64;
        assert!(
            (mean_gap - 100.0).abs() < 2.0,
            "mean gap {mean_gap} should be ≈100"
        );
    }

    #[test]
    fn load_only_event_ignores_stores() {
        let mut pmu = Pmu::new(
            SamplingConfig {
                event: PmuEvent::Loads,
                period: 10,
                jitter: 0,
                max_skid: 0,
            },
            1,
        );
        let mut samples = 0;
        // alternate: 20 loads interleaved with 20 stores
        for i in 0..40 {
            if pmu.on_event(i % 2 == 0) == PmuOutcome::SampleHere {
                samples += 1;
            }
        }
        assert_eq!(samples, 2, "20 loads at period 10 → 2 samples");
    }

    #[test]
    fn skid_delays_but_preserves_rate() {
        let mut pmu = Pmu::new(
            SamplingConfig {
                event: PmuEvent::Accesses,
                period: 100,
                jitter: 0,
                max_skid: 5,
            },
            3,
        );
        let mut indices = Vec::new();
        for i in 1..=10_000u64 {
            if pmu.on_event(false) == PmuOutcome::SampleHere {
                indices.push(i);
            }
        }
        assert!(!indices.is_empty());
        for (k, &i) in indices.iter().enumerate() {
            let overflow_at = (k as u64 + 1) * 100;
            assert!(
                i >= overflow_at && i <= overflow_at + 5,
                "sample {k} at {i}, overflow at {overflow_at}"
            );
        }
    }

    #[test]
    fn bulk_advance_matches_stepped_quiet_run() {
        let cfg = SamplingConfig::precise(500);
        let mut stepped = Pmu::new(cfg, 9);
        let mut bulk = Pmu::new(cfg, 9);
        assert!(stepped.countdown() > 100);
        let (mut loads, mut stores) = (0u64, 0u64);
        for i in 0..100u64 {
            let is_store = i % 3 == 0;
            assert_eq!(stepped.on_event(is_store), PmuOutcome::Quiet);
            if is_store {
                stores += 1;
            } else {
                loads += 1;
            }
        }
        bulk.advance_quiet(loads, stores);
        assert_eq!(bulk.counters(), stepped.counters());
        assert_eq!(bulk.countdown(), stepped.countdown());
        assert!(!bulk.skid_pending());
        // Walk both to the overflow: they fire on the same event and
        // re-arm with the same (RNG-drawn) next gap.
        let left = bulk.countdown();
        for k in 1..=left {
            let a = stepped.on_event(false);
            let b = bulk.on_event(false);
            assert_eq!(a, b);
            if k == left {
                assert_eq!(a, PmuOutcome::SampleHere);
            }
        }
        assert_eq!(bulk.countdown(), stepped.countdown());
    }

    #[test]
    fn determinism_by_seed() {
        let run = |seed| {
            let mut pmu = Pmu::new(SamplingConfig::precise(50), seed);
            (0..5000)
                .filter(|_| pmu.on_event(false) == PmuOutcome::SampleHere)
                .count()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_rejected() {
        let _ = Pmu::new(
            SamplingConfig {
                event: PmuEvent::Accesses,
                period: 0,
                jitter: 0,
                max_skid: 0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "smaller than the period")]
    fn oversized_jitter_rejected() {
        let _ = Pmu::new(
            SamplingConfig {
                event: PmuEvent::Accesses,
                period: 10,
                jitter: 10,
                max_skid: 0,
            },
            0,
        );
    }

    #[test]
    fn default_is_precise_64k() {
        let c = SamplingConfig::default();
        assert_eq!(c.period, 64 * 1024);
        assert_eq!(c.max_skid, 0);
        assert!(c.jitter > 0);
    }
}
