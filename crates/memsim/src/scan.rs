//! Multi-needle watchpoint scanning over contiguous access runs.
//!
//! The machine's fast path (see [`crate::Machine::run`]) knows that
//! between two PMU overflows nothing can happen except a debug-register
//! trap. That reduces simulation of the whole inter-overflow gap to one
//! question — *where, if anywhere, does the first armed watchpoint hit?*
//! — which this module answers with a branch-light linear scan: the ≤ 4
//! (at most 64) armed watchpoint ranges become a small "needle set" of
//! `base/span` pairs, and each access is tested against all needles with
//! an unrolled, monomorphized comparison chain instead of walking the
//! register file's `Option` slots per access.
//!
//! The scan only locates the first *matching access*; the machine then
//! re-runs the ordinary per-access step on it, so slot-priority rules,
//! disarm-before-delivery and handler interleavings are inherited from
//! the one existing implementation rather than duplicated here. A needle
//! that over-matches could therefore only cost time, never correctness —
//! but the predicate below is exactly [`Watchpoint::matches`] for every
//! armable range (`base` is `len`-aligned, so `base + len` cannot wrap).

use crate::debug::DebugRegisterFile;
#[cfg(test)]
use crate::debug::Watchpoint;
use crate::WatchKind;
use rdx_trace::Access;

/// Upper bound on needles: [`DebugRegisterFile`] holds at most 64 slots.
pub(crate) const MAX_NEEDLES: usize = 64;

/// The armed watchpoints of a register file, flattened for scanning.
///
/// Snapshot semantics: the set reflects the register file at
/// construction time and must be rebuilt after any arm/disarm (the
/// machine rebuilds it after every delivered trap or sample, the only
/// places profilers can touch the registers).
#[derive(Debug)]
pub struct NeedleSet {
    pub(crate) len: usize,
    pub(crate) base: [u64; MAX_NEEDLES],
    pub(crate) span: [u64; MAX_NEEDLES],
    /// True when the needle only traps stores (`WatchKind::Write`).
    pub(crate) store_only: [bool; MAX_NEEDLES],
}

/// Result of scanning one run of accesses, from [`NeedleSet::scan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Offset of the first access matching any needle, if one matched.
    pub first_match: Option<usize>,
    /// Stores among the accesses *before* that offset (or in the whole
    /// run when nothing matched) — what the PMU store counter must
    /// bulk-advance by for the quiet prefix.
    pub stores_before: u64,
}

impl NeedleSet {
    /// Builds a needle set from raw `(base, span, store_only)` ranges —
    /// the constructor benches and kernel equivalence tests use to make
    /// sets without a register file. At most 64 ranges are kept (the
    /// debug-register ceiling); extras are ignored.
    #[must_use]
    pub fn from_ranges(ranges: &[(u64, u64, bool)]) -> Self {
        let mut set = NeedleSet {
            len: 0,
            base: [0; MAX_NEEDLES],
            span: [0; MAX_NEEDLES],
            store_only: [false; MAX_NEEDLES],
        };
        for &(base, span, store_only) in ranges.iter().take(MAX_NEEDLES) {
            set.base[set.len] = base;
            set.span[set.len] = span;
            set.store_only[set.len] = store_only;
            set.len += 1;
        }
        set
    }

    /// Number of needles in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no needles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Snapshots the armed watchpoints of `drf` in slot order.
    pub(crate) fn from_registers(drf: &DebugRegisterFile) -> Self {
        let mut set = NeedleSet {
            len: 0,
            base: [0; MAX_NEEDLES],
            span: [0; MAX_NEEDLES],
            store_only: [false; MAX_NEEDLES],
        };
        for (_, info) in drf.armed_iter() {
            let wp = info.watchpoint;
            set.base[set.len] = wp.addr.raw();
            set.span[set.len] = u64::from(wp.len);
            set.store_only[set.len] = wp.kind == WatchKind::Write;
            set.len += 1;
        }
        set
    }

    /// Finds the first access in `run` hitting any needle, counting the
    /// stores that precede it.
    ///
    /// This is the scalar reference scanner — the oracle every kernel
    /// in [`crate::kernels`] must agree with on all inputs.
    pub fn scan(&self, run: &[Access]) -> ScanOutcome {
        // Dispatch to a monomorphized scanner so the per-access needle
        // loop unrolls completely for the common register counts (x86
        // has 4); larger ablation configurations take the generic loop.
        match self.len {
            0 => ScanOutcome {
                first_match: None,
                stores_before: count_stores(run),
            },
            1 => self.scan_unrolled::<1>(run),
            2 => self.scan_unrolled::<2>(run),
            3 => self.scan_unrolled::<3>(run),
            4 => self.scan_unrolled::<4>(run),
            _ => self.scan_any(run, self.len),
        }
    }

    fn scan_unrolled<const N: usize>(&self, run: &[Access]) -> ScanOutcome {
        self.scan_any(run, N)
    }

    #[inline(always)]
    pub(crate) fn scan_any(&self, run: &[Access], n: usize) -> ScanOutcome {
        let mut stores: u64 = 0;
        for (i, access) in run.iter().enumerate() {
            let addr = access.addr.raw();
            let is_store = access.kind.is_store();
            let mut hit = false;
            for j in 0..n {
                // In-range iff addr ∈ [base, base + span): one wrapping
                // subtract replaces the two compares of
                // `Watchpoint::matches`, with identical outcomes for
                // every armable (aligned, non-wrapping) range.
                hit |= addr.wrapping_sub(self.base[j]) < self.span[j]
                    && (is_store || !self.store_only[j]);
            }
            if hit {
                return ScanOutcome {
                    first_match: Some(i),
                    stores_before: stores,
                };
            }
            stores += u64::from(is_store);
        }
        ScanOutcome {
            first_match: None,
            stores_before: stores,
        }
    }
}

/// Stores in a run with no armed watchpoints (vectorizes freely).
pub(crate) fn count_stores(run: &[Access]) -> u64 {
    run.iter().map(|a| u64::from(a.kind.is_store())).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debug::ArmInfo;
    use rdx_trace::Address;

    fn armed_file(bases: &[u64]) -> DebugRegisterFile {
        let mut drf = DebugRegisterFile::new(bases.len().max(1));
        for &b in bases {
            drf.arm(ArmInfo {
                watchpoint: Watchpoint::read_write(Address::new(b), 8),
                armed_at: 0,
                accesses_at_arm: 0,
                tag: b,
            })
            .unwrap();
        }
        drf
    }

    fn run_of(addrs: &[(u64, bool)]) -> Vec<Access> {
        addrs
            .iter()
            .map(|&(a, s)| if s { Access::store(a) } else { Access::load(a) })
            .collect()
    }

    #[test]
    fn empty_set_counts_stores_only() {
        let set = NeedleSet::from_registers(&DebugRegisterFile::default());
        let run = run_of(&[(0, false), (8, true), (16, true), (24, false)]);
        let out = set.scan(&run);
        assert_eq!(out.first_match, None);
        assert_eq!(out.stores_before, 2);
    }

    #[test]
    fn finds_first_match_and_prefix_stores() {
        let set = NeedleSet::from_registers(&armed_file(&[0x100, 0x200]));
        let run = run_of(&[
            (0x50, true),
            (0x60, false),
            (0x204, true), // within [0x200, 0x208)
            (0x100, false),
        ]);
        let out = set.scan(&run);
        assert_eq!(out.first_match, Some(2));
        assert_eq!(out.stores_before, 1, "only the store before the hit");
    }

    #[test]
    fn range_edges_match_like_watchpoint() {
        // Every needle-count dispatch (1..=5 covers unrolled and generic)
        // must agree with Watchpoint::matches on range boundaries.
        for n in 1..=5usize {
            let bases: Vec<u64> = (0..n as u64).map(|k| 0x1000 + 0x40 * k).collect();
            let set = NeedleSet::from_registers(&armed_file(&bases));
            let wp: Vec<Watchpoint> = bases
                .iter()
                .map(|&b| Watchpoint::read_write(Address::new(b), 8))
                .collect();
            for probe in [0x0FFFu64, 0x1000, 0x1007, 0x1008, 0x1040, 0x1147, 0x1148] {
                let a = Access::load(probe);
                let expect = wp.iter().any(|w| w.matches(&a));
                let got = set.scan(std::slice::from_ref(&a)).first_match.is_some();
                assert_eq!(got, expect, "n={n} probe={probe:#x}");
            }
        }
    }

    #[test]
    fn write_only_needles_ignore_loads() {
        let mut drf = DebugRegisterFile::new(1);
        drf.arm(ArmInfo {
            watchpoint: Watchpoint {
                kind: WatchKind::Write,
                ..Watchpoint::read_write(Address::new(0x40), 8)
            },
            armed_at: 0,
            accesses_at_arm: 0,
            tag: 0,
        })
        .unwrap();
        let set = NeedleSet::from_registers(&drf);
        let run = run_of(&[(0x40, false), (0x40, false), (0x44, true)]);
        let out = set.scan(&run);
        assert_eq!(out.first_match, Some(2));
        assert_eq!(out.stores_before, 0);
    }

    #[test]
    fn no_match_reports_all_stores() {
        let set = NeedleSet::from_registers(&armed_file(&[0x1000]));
        let run = run_of(&[(0, true), (8, true), (16, false)]);
        let out = set.scan(&run);
        assert_eq!(out.first_match, None);
        assert_eq!(out.stores_before, 2);
    }

    #[test]
    fn empty_run_is_quiet() {
        let set = NeedleSet::from_registers(&armed_file(&[0x40]));
        let out = set.scan(&[]);
        assert_eq!(out.first_match, None);
        assert_eq!(out.stores_before, 0);
    }
}
