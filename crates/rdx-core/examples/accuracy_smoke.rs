// Quick accuracy smoke test: RDX vs ground truth per workload.
use rdx_core::{RdxConfig, RdxRunner};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::Binning;
use rdx_trace::Granularity;
use rdx_workloads::{suite, Params};

fn main() {
    let params = Params::default()
        .with_accesses(4_000_000)
        .with_elements(60_000);
    let config = RdxConfig::default().with_period(2048);
    let runner = RdxRunner::new(config);
    for w in suite() {
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2());
        let est = runner.profile(w.stream(&params));
        let acc = histogram_intersection(est.rd.as_histogram(), exact.rd.as_histogram()).unwrap();
        let rt_acc =
            histogram_intersection(est.rt.as_histogram(), exact.rt.as_histogram()).unwrap();
        println!(
            "{:16} acc={:.3} rt_acc={:.3} traps={:6} evic={:5} m̂={:9.0} m={:8} ovh={:.3}",
            w.name,
            acc,
            rt_acc,
            est.traps,
            est.evictions,
            est.m_estimate,
            exact.distinct_blocks,
            est.time_overhead
        );
    }
}
