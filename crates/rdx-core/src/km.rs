//! Kaplan–Meier survival estimation for watchpoint censoring.
//!
//! A sampled use–reuse interval is *observed* when the watchpoint traps, and
//! *censored* when the watchpoint is evicted first (register pressure) or
//! when the run ends. Evictions preferentially cut off long intervals, so
//! discarding censored samples biases the reuse-time distribution short.
//!
//! The standard fix is inverse-probability-of-censoring weighting (IPCW):
//! estimate the survival function `C(t)` of the *eviction* process with the
//! Kaplan–Meier estimator (roles swapped: evictions are events, traps are
//! censorings of the eviction process), then weight each observed interval
//! of length `t` by `1 / C(t)` — the inverse of the probability that a
//! sample survived eviction long enough to be observed at all.

/// One observation of the eviction process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Interval duration in accesses (time from arm to trap/evict/end).
    pub duration: u64,
    /// True if the watchpoint was *evicted* at `duration` (an event of the
    /// eviction process); false if it trapped or the run ended (censored).
    pub evicted: bool,
}

/// A Kaplan–Meier estimate of the eviction-survival function `C(t)`:
/// the probability that a watchpoint stays armed (not evicted) beyond `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    /// Event times in increasing order.
    times: Vec<u64>,
    /// Survival value *at and after* the corresponding time (until the next).
    surv: Vec<f64>,
    /// Lower clamp applied by [`KaplanMeier::inverse_weight`].
    floor: f64,
}

impl KaplanMeier {
    /// Smallest survival value used when inverting; caps the weight any
    /// single observation can receive at 1/floor = 100×.
    pub const DEFAULT_FLOOR: f64 = 0.01;

    /// Fits the estimator from observations.
    ///
    /// With no eviction events the survival function is identically 1 and
    /// IPCW weights are all 1 (no correction necessary).
    #[must_use]
    pub fn fit(observations: &[Observation]) -> KaplanMeier {
        Self::fit_guarded(observations, 1)
    }

    /// Fits the estimator, freezing the curve once fewer than
    /// `min_at_risk` observations remain at risk.
    ///
    /// The unguarded Kaplan–Meier tail is dominated by its last handful of
    /// observations — in particular, if the single longest observation is
    /// an event, the survival estimate collapses to exactly 0. When the
    /// residual mass `S(t_max)` is itself the quantity of interest (the
    /// profiler's cold-fraction estimate), that collapse turns one sample's
    /// luck into a 0%-vs-several-percent swing; the guard trades a little
    /// bias for bounded variance.
    #[must_use]
    pub fn fit_guarded(observations: &[Observation], min_at_risk: usize) -> KaplanMeier {
        let mut obs: Vec<Observation> = observations.to_vec();
        // At equal durations, censorings are conventionally processed after
        // events; sorting events first achieves that.
        obs.sort_by_key(|o| (o.duration, !o.evicted));
        let mut times = Vec::new();
        let mut surv = Vec::new();
        let mut at_risk = obs.len() as f64;
        let mut s = 1.0;
        let mut i = 0;
        while i < obs.len() {
            let t = obs[i].duration;
            let mut events = 0usize;
            let mut total = 0usize;
            while i < obs.len() && obs[i].duration == t {
                if obs[i].evicted {
                    events += 1;
                }
                total += 1;
                i += 1;
            }
            if events > 0 && at_risk >= min_at_risk as f64 {
                s *= 1.0 - events as f64 / at_risk;
                times.push(t);
                surv.push(s.max(0.0));
            }
            at_risk -= total as f64;
        }
        KaplanMeier {
            times,
            surv,
            floor: Self::DEFAULT_FLOOR,
        }
    }

    /// `C(t)`: probability of remaining unevicted *beyond* duration `t`.
    #[must_use]
    pub fn survival(&self, t: u64) -> f64 {
        match self.times.partition_point(|&x| x <= t) {
            0 => 1.0,
            i => self.surv[i - 1],
        }
    }

    /// The IPCW weight for an interval observed (trapped) at duration `t`:
    /// `1 / max(C(t⁻), floor)`. `C` is evaluated just *before* `t` because
    /// the sample only needed to avoid eviction strictly before its trap.
    #[must_use]
    pub fn inverse_weight(&self, t: u64) -> f64 {
        let c = self.survival(t.saturating_sub(1));
        1.0 / c.max(self.floor)
    }

    /// Returns true if no eviction events were observed (identity weights).
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.times.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pairs: &[(u64, bool)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|&(duration, evicted)| Observation { duration, evicted })
            .collect()
    }

    #[test]
    fn no_evictions_is_trivial() {
        let km = KaplanMeier::fit(&obs(&[(5, false), (10, false)]));
        assert!(km.is_trivial());
        assert_eq!(km.survival(0), 1.0);
        assert_eq!(km.survival(100), 1.0);
        assert_eq!(km.inverse_weight(7), 1.0);
    }

    #[test]
    fn single_eviction_halves_survival() {
        // two samples, one evicted at 10, one trapped at 20:
        // at t=10 both at risk, 1 event → S = 0.5 afterwards
        let km = KaplanMeier::fit(&obs(&[(10, true), (20, false)]));
        assert_eq!(km.survival(9), 1.0);
        assert!((km.survival(10) - 0.5).abs() < 1e-12);
        assert!((km.survival(100) - 0.5).abs() < 1e-12);
        // a trap at 20 was at risk of the eviction at 10 → weight 2
        assert!((km.inverse_weight(20) - 2.0).abs() < 1e-12);
        // a trap at 5 preceded all evictions → weight 1
        assert!((km.inverse_weight(5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_evicted_survival_zero_but_weights_capped() {
        let km = KaplanMeier::fit(&obs(&[(1, true), (2, true), (3, true)]));
        assert!(km.survival(3) < 1e-12);
        let w = km.inverse_weight(10);
        assert!((w - 1.0 / KaplanMeier::DEFAULT_FLOOR).abs() < 1e-9);
    }

    #[test]
    fn survival_monotone_nonincreasing() {
        let km = KaplanMeier::fit(&obs(&[
            (3, true),
            (5, false),
            (7, true),
            (7, false),
            (9, true),
            (12, false),
        ]));
        let mut last = 1.0;
        for t in 0..20u64 {
            let s = km.survival(t);
            assert!(s <= last + 1e-12, "S must be non-increasing at {t}");
            assert!((0.0..=1.0).contains(&s));
            last = s;
        }
    }

    #[test]
    fn classic_km_worked_example() {
        // Durations: events at 6 (3 of them), 10; censored at 6, 9, 11.
        // At-risk starts at 6.
        // t=6: events=3 of 6 at risk (censored-at-6 counted at risk) → S=0.5
        // t=10: at risk = 6−4(at 6)−1(at 9) = ... censored at 9 leaves 1 fewer
        let km = KaplanMeier::fit(&obs(&[
            (6, true),
            (6, true),
            (6, true),
            (6, false),
            (9, false),
            (10, true),
            (11, false),
        ]));
        assert!((km.survival(6) - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        let s6 = 1.0 - 3.0 / 7.0;
        // after t=6 removals (4), and censor at 9 (1): at risk at 10 is 2
        let s10 = s6 * (1.0 - 1.0 / 2.0);
        assert!((km.survival(10) - s10).abs() < 1e-12, "{}", km.survival(10));
    }

    #[test]
    fn ties_events_before_censorings() {
        // event and censoring both at t=5: censoring is still at risk for
        // the event → survival = 1 − 1/2
        let km = KaplanMeier::fit(&obs(&[(5, true), (5, false)]));
        assert!((km.survival(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_fit() {
        let km = KaplanMeier::fit(&[]);
        assert!(km.is_trivial());
        assert_eq!(km.survival(42), 1.0);
    }
}
