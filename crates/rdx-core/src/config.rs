//! Profiler configuration.

use memsim::MachineConfig;
use rdx_histogram::Binning;
use rdx_trace::Granularity;

/// What to do when a sample arrives and every debug register is armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Drop the incoming sample, keeping old watchpoints armed — the
    /// default. A watchpoint stays armed until it traps, so arbitrarily
    /// long reuse intervals are observed *exactly*; which intervals get
    /// measured is thinned by register availability, which is (to first
    /// order) independent of the interval about to be measured. Combined
    /// with [`RdxConfig::max_armed_periods`] aging so that never-reused
    /// (cold) watchpoints cannot clog all registers forever.
    DropNew,
    /// Evict the longest-armed watchpoint (FIFO). Simple, but imposes a
    /// hard observability horizon of `registers × period` accesses: any
    /// reuse interval longer than that is *never* observed, no matter how
    /// much weight correction is applied afterwards. Ablation A2 quantifies
    /// the damage.
    EvictOldest,
    /// Evict a uniformly random armed watchpoint. Survival
    /// of an armed watchpoint is geometric (`(1−1/K)^j` after `j` samples),
    /// so arbitrarily long reuse intervals remain observable with known,
    /// correctable probability; the Kaplan–Meier IPCW correction
    /// ([`crate::km`]) then reweights the observed tail.
    EvictRandom,
}

/// How sampled reuse times become reuse distances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConversionMethod {
    /// Footprint-theory conversion: `d = fp(t+1) − 1` (the paper's method).
    Footprint,
    /// Naive baseline for ablation A4: report the reuse time as if it were
    /// the distance (`d = t`). Overestimates whenever blocks repeat within
    /// the interval.
    TimeAsDistance,
}

/// Whether and how to correct for watchpoint-eviction censoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CensoringCorrection {
    /// No correction: evicted samples are discarded, end-of-run armed
    /// watchpoints count as cold. Biases against long reuse intervals.
    None,
    /// Inverse-probability-of-censoring weighting driven by a Kaplan–Meier
    /// estimate of the eviction process (see [`crate::km`]).
    Ipcw,
}

/// Full configuration of an RDX profiling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RdxConfig {
    /// The simulated machine: sampling period/jitter/skid, debug-register
    /// count, cost model, seed.
    pub machine: MachineConfig,
    /// Watchpoint width in bytes (1, 2, 4 or 8). The paper uses the maximal
    /// 8-byte width to widen each trap's coverage.
    pub watch_width: u8,
    /// Replacement policy under register pressure.
    pub replacement: ReplacementPolicy,
    /// Time→distance conversion method.
    pub conversion: ConversionMethod,
    /// Censoring correction.
    pub censoring: CensoringCorrection,
    /// Age limit for armed watchpoints, in sampling periods: a watchpoint
    /// armed longer than `max_armed_periods × period` accesses is evicted
    /// (recorded as a censored interval) so that cold samples release
    /// their registers. 0 disables aging. This bounds the observable reuse
    /// time at `max_armed_periods × period`; intervals beyond it surface
    /// through the Kaplan–Meier residual instead.
    pub max_armed_periods: u64,
    /// Histogram binning for the produced histograms.
    pub binning: Binning,
    /// Granularity at which distances are reported. Watchpoints are at most
    /// 8 bytes wide, so at granularities coarser than [`Granularity::WORD`]
    /// a trap fires on same-*word* reuse rather than same-block reuse — the
    /// approximation the paper accepts (evaluated by ablation A5).
    pub granularity: Granularity,
}

impl Default for RdxConfig {
    fn default() -> Self {
        RdxConfig {
            machine: MachineConfig::default(),
            watch_width: 8,
            replacement: ReplacementPolicy::DropNew,
            conversion: ConversionMethod::Footprint,
            censoring: CensoringCorrection::Ipcw,
            max_armed_periods: 256,
            binning: Binning::log2(),
            granularity: Granularity::WORD,
        }
    }
}

impl RdxConfig {
    /// Sets the mean sampling period (with 10 % jitter).
    #[must_use]
    pub fn with_period(mut self, period: u64) -> Self {
        self.machine = self.machine.with_sampling_period(period);
        self
    }

    /// Sets the number of debug registers.
    #[must_use]
    pub fn with_registers(mut self, registers: usize) -> Self {
        self.machine = self.machine.with_registers(registers);
        self
    }

    /// Sets the machine RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.machine = self.machine.with_seed(seed);
        self
    }

    /// Selects the machine fast path's scan kernel (default: auto).
    #[must_use]
    pub fn with_scan_kernel(mut self, kernel: memsim::KernelChoice) -> Self {
        self.machine = self.machine.with_scan_kernel(kernel);
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Sets the armed-watchpoint age limit (in sampling periods; 0 = off).
    #[must_use]
    pub fn with_max_armed_periods(mut self, periods: u64) -> Self {
        self.max_armed_periods = periods;
        self
    }

    /// Sets the conversion method.
    #[must_use]
    pub fn with_conversion(mut self, conversion: ConversionMethod) -> Self {
        self.conversion = conversion;
        self
    }

    /// Sets the censoring correction.
    #[must_use]
    pub fn with_censoring(mut self, censoring: CensoringCorrection) -> Self {
        self.censoring = censoring;
        self
    }

    /// Sets the watchpoint width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    #[must_use]
    pub fn with_watch_width(mut self, width: u8) -> Self {
        assert!(
            matches!(width, 1 | 2 | 4 | 8),
            "watchpoint width must be 1, 2, 4 or 8 bytes"
        );
        self.watch_width = width;
        self
    }

    /// Sets the reporting granularity.
    #[must_use]
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the histogram binning.
    #[must_use]
    pub fn with_binning(mut self, binning: Binning) -> Self {
        self.binning = binning;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_operating_point() {
        let c = RdxConfig::default();
        assert_eq!(c.machine.sampling.period, 64 * 1024);
        assert_eq!(c.machine.registers, 4);
        assert_eq!(c.watch_width, 8);
        assert_eq!(c.replacement, ReplacementPolicy::DropNew);
        assert_eq!(c.max_armed_periods, 256);
        assert_eq!(c.conversion, ConversionMethod::Footprint);
        assert_eq!(c.censoring, CensoringCorrection::Ipcw);
    }

    #[test]
    fn builders_chain() {
        let c = RdxConfig::default()
            .with_period(100)
            .with_registers(2)
            .with_seed(3)
            .with_replacement(ReplacementPolicy::DropNew)
            .with_conversion(ConversionMethod::TimeAsDistance)
            .with_censoring(CensoringCorrection::None)
            .with_watch_width(4)
            .with_granularity(Granularity::CACHE_LINE)
            .with_binning(Binning::log2_sub(2));
        assert_eq!(c.machine.sampling.period, 100);
        assert_eq!(c.machine.registers, 2);
        assert_eq!(c.watch_width, 4);
        assert_eq!(c.replacement, ReplacementPolicy::DropNew);
        assert_eq!(c.conversion, ConversionMethod::TimeAsDistance);
        assert_eq!(c.censoring, CensoringCorrection::None);
        assert_eq!(c.granularity, Granularity::CACHE_LINE);
    }

    #[test]
    #[should_panic(expected = "1, 2, 4 or 8")]
    fn invalid_watch_width() {
        let _ = RdxConfig::default().with_watch_width(3);
    }
}
