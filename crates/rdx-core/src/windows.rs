//! Windowed (phase-aware) profiling — an extension beyond the paper.
//!
//! The footprint conversion assumes the reuse-time distribution is
//! homogeneous over the run; phase-changing programs (the `phased` kernel,
//! compilers, servers with shifting working sets) violate that and are the
//! profiler's weakest case. The standard remedy is to profile in windows:
//! each window gets its own samples, censoring correction and footprint
//! curve, so conversion happens against phase-local statistics, and the
//! sequence of per-window histograms doubles as a phase-change detector
//! (see the `production_monitor` example).

use crate::report::RdxProfile;
use crate::runner::RdxRunner;
use rdx_histogram::accuracy::total_variation;
use rdx_histogram::RdHistogram;
use rdx_trace::{AccessStream, Take};

/// A sequence of per-window profiles plus merged totals.
#[derive(Debug, Clone)]
pub struct WindowedProfile {
    /// Per-window profiles, in stream order. The final window may cover
    /// fewer accesses than the window length.
    pub windows: Vec<RdxProfile>,
    /// The union histogram: per-window reuse-distance histograms merged
    /// (weights add; totals equal the whole run's access count).
    pub merged_rd: RdHistogram,
}

impl WindowedProfile {
    /// Total accesses across all windows.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.windows.iter().map(|w| w.accesses).sum()
    }

    /// Total-variation divergence between consecutive windows' normalized
    /// reuse-distance histograms — the phase-change signal. Entry `i`
    /// compares windows `i` and `i+1`.
    #[must_use]
    pub fn phase_divergences(&self) -> Vec<f64> {
        self.windows
            .windows(2)
            .map(|pair| {
                total_variation(pair[0].rd.as_histogram(), pair[1].rd.as_histogram())
                    .expect("windows share the configured binning")
            })
            .collect()
    }

    /// Indices `i` where the divergence between windows `i` and `i+1`
    /// exceeds `threshold` — detected phase boundaries.
    #[must_use]
    pub fn phase_changes(&self, threshold: f64) -> Vec<usize> {
        self.phase_divergences()
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d > threshold)
            .map(|(i, _)| i)
            .collect()
    }
}

impl RdxRunner {
    /// Profiles a stream in consecutive windows of `window_accesses`
    /// accesses each, producing phase-local histograms.
    ///
    /// Each window restarts the profiler (watchpoints armed across a
    /// boundary are accounted to the earlier window as end-censored), so
    /// windows are independent and individually correct; the merged
    /// histogram is their weight sum.
    ///
    /// # Panics
    ///
    /// Panics if `window_accesses` is zero.
    pub fn profile_windows(
        &self,
        mut stream: impl AccessStream,
        window_accesses: u64,
    ) -> WindowedProfile {
        assert!(window_accesses > 0, "window length must be non-zero");
        let mut windows = Vec::new();
        let mut merged_rd = RdHistogram::new(self.config().binning);
        loop {
            let segment: Take<&mut dyn AccessStream> =
                (&mut stream as &mut dyn AccessStream).take(window_accesses);
            let profile = self.profile(segment);
            if profile.accesses == 0 {
                break;
            }
            let full = profile.accesses == window_accesses;
            merged_rd
                .merge(&profile.rd)
                .expect("windows share the configured binning");
            windows.push(profile);
            if !full {
                break;
            }
        }
        WindowedProfile { windows, merged_rd }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RdxConfig;
    use rdx_trace::Trace;

    fn two_phase_trace() -> Trace {
        // phase 1: tight 8-block loop; phase 2: wide 4000-block loop
        let mut addrs = Vec::new();
        for i in 0..400_000u64 {
            addrs.push((i % 8) * 8);
        }
        for i in 0..400_000u64 {
            addrs.push((10_000 + i % 4000) * 8);
        }
        Trace::from_addresses("phases", addrs)
    }

    fn runner() -> RdxRunner {
        let mut cfg = RdxConfig::default().with_period(512);
        cfg.machine.sampling.jitter = 51;
        RdxRunner::new(cfg)
    }

    #[test]
    fn windows_cover_whole_stream() {
        let trace = two_phase_trace();
        let wp = runner().profile_windows(trace.stream(), 100_000);
        assert_eq!(wp.windows.len(), 8);
        assert_eq!(wp.accesses(), 800_000);
        assert!((wp.merged_rd.total_weight() - 800_000.0).abs() < 1.0);
    }

    #[test]
    fn ragged_final_window() {
        let trace = Trace::from_addresses("r", (0..250_000u64).map(|i| (i % 100) * 8));
        let wp = runner().profile_windows(trace.stream(), 100_000);
        assert_eq!(wp.windows.len(), 3);
        assert_eq!(wp.windows[2].accesses, 50_000);
    }

    #[test]
    fn detects_the_phase_boundary() {
        let trace = two_phase_trace();
        let wp = runner().profile_windows(trace.stream(), 100_000);
        let changes = wp.phase_changes(0.5);
        // the single real phase change is between windows 3 and 4
        assert_eq!(
            changes,
            vec![3],
            "divergences: {:?}",
            wp.phase_divergences()
        );
    }

    #[test]
    fn windowed_beats_global_on_phased_mix() {
        // Phase-local conversion should estimate the tight loop's small
        // distances and the wide loop's large distances separately; the
        // merged histogram must show substantial mass in both regions.
        let trace = two_phase_trace();
        let wp = runner().profile_windows(trace.stream(), 100_000);
        let h = wp.merged_rd.as_histogram();
        let small: f64 = h
            .buckets()
            .filter(|b| b.range.hi <= 64)
            .map(|b| b.weight)
            .sum();
        let large: f64 = h
            .buckets()
            .filter(|b| b.range.lo >= 1024)
            .map(|b| b.weight)
            .sum();
        let fin = h.finite_weight();
        assert!(
            small > 0.3 * fin,
            "small-distance phase visible: {small} of {fin}"
        );
        assert!(
            large > 0.3 * fin,
            "large-distance phase visible: {large} of {fin}"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let trace = Trace::new("e");
        let _ = runner().profile_windows(trace.stream(), 0);
    }
}
