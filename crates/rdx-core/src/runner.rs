//! The end-to-end driver: machine run → censoring correction → conversion.

use crate::config::{CensoringCorrection, ConversionMethod, RdxConfig};
use crate::convert::WeightedFootprint;
use crate::km::{KaplanMeier, Observation};
use crate::profiler::RdxProfiler;
use crate::report::RdxProfile;
use memsim::Machine;
use rdx_histogram::{RdHistogram, ReuseDistance, ReuseTime, RtHistogram};
use rdx_trace::AccessStream;

/// Runs the RDX profiler over access streams.
///
/// Construct once per configuration and reuse across workloads; each
/// [`profile`](RdxRunner::profile) call is independent and deterministic.
#[derive(Debug, Clone)]
pub struct RdxRunner {
    config: RdxConfig,
}

impl RdxRunner {
    /// Creates a runner with the given configuration.
    #[must_use]
    pub fn new(config: RdxConfig) -> Self {
        RdxRunner { config }
    }

    /// The runner's configuration.
    #[must_use]
    pub fn config(&self) -> &RdxConfig {
        &self.config
    }

    /// Profiles one access stream, producing the estimated reuse-distance
    /// histogram and overhead accounting.
    pub fn profile(&self, stream: impl AccessStream) -> RdxProfile {
        let _profile_span = rdx_metrics::span("rdx.profile");
        rdx_metrics::counter("rdx.runner.profiles").incr();
        let cfg = &self.config;
        let mut profiler = RdxProfiler::new(cfg);
        let machine_span = rdx_metrics::span("machine");
        let report = Machine::new(cfg.machine).run(stream, &mut profiler);
        drop(machine_span);
        let n = report.counters.loads + report.counters.stores;
        rdx_metrics::counter("rdx.runner.accesses").add(n);

        // --- Censoring correction -------------------------------------
        // Two intertwined processes act on each armed watchpoint:
        //
        // * the *reuse* process — the block is accessed again at its reuse
        //   interval (an event we want the distribution of);
        // * the *eviction* process — register pressure disarms the
        //   watchpoint first (censoring, biased against long intervals).
        //
        // A Kaplan–Meier fit of the eviction process yields IPCW weights
        // `1/C_evict(t)` that de-bias the observed pairs; the cold bucket
        // is the IPCW-corrected count of watchpoints still armed at the
        // end of the run (last touches of their blocks).
        let censor_span = rdx_metrics::span("censor");
        let (pair_weights, cold_frac): (Vec<(u64, f64)>, f64) = match cfg.censoring {
            CensoringCorrection::None => {
                let resolved = profiler.completed.len() + profiler.end_censored.len();
                let cold = if resolved == 0 {
                    0.0
                } else {
                    profiler.end_censored.len() as f64 / resolved as f64
                };
                (
                    profiler
                        .completed
                        .iter()
                        .map(|p| (p.reuse_time, 1.0))
                        .collect(),
                    cold,
                )
            }
            CensoringCorrection::Ipcw => {
                let mut evict_obs: Vec<Observation> = Vec::with_capacity(
                    profiler.completed.len() + profiler.evicted.len() + profiler.end_censored.len(),
                );
                let mut reuse_obs: Vec<Observation> = Vec::with_capacity(evict_obs.capacity());
                for p in &profiler.completed {
                    let d = p.reuse_time + 1;
                    evict_obs.push(Observation {
                        duration: d,
                        evicted: false,
                    });
                    reuse_obs.push(Observation {
                        duration: d,
                        evicted: true, // a reuse-process *event*
                    });
                }
                for &d in &profiler.evicted {
                    evict_obs.push(Observation {
                        duration: d,
                        evicted: true,
                    });
                    reuse_obs.push(Observation {
                        duration: d,
                        evicted: false,
                    });
                }
                for &d in &profiler.end_censored {
                    evict_obs.push(Observation {
                        duration: d,
                        evicted: false,
                    });
                    reuse_obs.push(Observation {
                        duration: d,
                        evicted: false,
                    });
                }
                let km_evict = KaplanMeier::fit(&evict_obs);
                let pairs: Vec<(u64, f64)> = profiler
                    .completed
                    .iter()
                    .map(|p| (p.reuse_time, km_evict.inverse_weight(p.reuse_time + 1)))
                    .collect();
                // Cold bucket: IPCW-corrected count of samples that were
                // still armed (never reused) when the run ended — an
                // unbiased estimate of the last-touch fraction m/n.
                let cold_raw: f64 = profiler
                    .end_censored
                    .iter()
                    .map(|&d| km_evict.inverse_weight(d))
                    .sum();
                let pair_raw: f64 = pairs.iter().map(|&(_, w)| w).sum();
                let cold = if pair_raw + cold_raw > 0.0 {
                    cold_raw / (pair_raw + cold_raw)
                } else if reuse_obs.is_empty() {
                    0.0
                } else {
                    1.0
                };
                (pairs, cold)
            }
        };
        drop(censor_span);

        // --- Scale the sampled distribution to the full run -----------
        // Each access has exactly one reuse time (cold = infinite) and
        // samples are uniform over accesses: the finite portion carries
        // (1 − cold)·n total weight, the cold bucket m̂ = cold·n.
        let m_estimate = cold_frac.clamp(0.0, 1.0) * n as f64;
        let pair_total: f64 = pair_weights.iter().map(|&(_, w)| w).sum();
        let scale = if pair_total > 0.0 {
            (1.0 - cold_frac).max(0.0) * n as f64 / pair_total
        } else {
            0.0
        };

        // --- Time → distance conversion -------------------------------
        // One pass over the pairs feeds both histograms: the footprint
        // curve is built from a scaling iterator and each pair is scaled
        // once, recorded into rt, converted, and recorded into rd — no
        // intermediate scaled vector, no re-scan.
        let convert_span = rdx_metrics::span("convert");
        let fp = match cfg.conversion {
            ConversionMethod::Footprint => Some(WeightedFootprint::from_sampled_iter(
                n,
                m_estimate,
                pair_weights.iter().map(|&(t, w)| (t, w * scale)),
            )),
            ConversionMethod::TimeAsDistance => None,
        };
        let footprint_bytes = fp.as_ref().map_or(0, WeightedFootprint::memory_bytes);
        let mut rt = RtHistogram::new(cfg.binning);
        let mut rd = RdHistogram::new(cfg.binning);
        for &(t, w) in &pair_weights {
            let w = w * scale;
            rt.record(ReuseTime::finite(t), w);
            let d = match &fp {
                Some(fp) => fp.distance_of(t),
                None => ReuseDistance::finite(t),
            };
            rd.record(d, w);
        }
        if m_estimate > 0.0 {
            rt.record(ReuseTime::INFINITE, m_estimate);
            rd.record(ReuseDistance::INFINITE, m_estimate);
        }
        drop(convert_span);

        let profiler_bytes = cfg.machine.cost.profiler_fixed_bytes
            + profiler.memory_bytes() as u64
            + rd.as_histogram().memory_bytes() as u64
            + rt.as_histogram().memory_bytes() as u64
            + footprint_bytes as u64;

        RdxProfile {
            rd,
            rt,
            granularity: cfg.granularity,
            accesses: n,
            samples: report.ledger.samples,
            traps: report.ledger.traps,
            evictions: profiler.evicted.len() as u64,
            end_censored: profiler.end_censored.len() as u64,
            dropped_samples: profiler.dropped_samples,
            duplicate_samples: profiler.duplicate_samples,
            m_estimate,
            time_overhead: report.time_overhead(),
            profiler_bytes,
            cost: cfg.machine.cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    fn fixed(period: u64) -> RdxConfig {
        let mut c = RdxConfig::default().with_period(period);
        c.machine.sampling.jitter = 0;
        c
    }

    #[test]
    fn cyclic_trace_distance_estimate() {
        let k = 128u64;
        let trace = Trace::from_addresses("cyc", (0..200_000u64).map(|i| (i % k) * 8));
        let profile = RdxRunner::new(fixed(500)).profile(trace.stream());
        assert!(profile.traps > 300);
        // All reuses at distance k−1 = 127; the log2 bucket [64,128) or
        // [128,256) should hold essentially all finite weight.
        let h = profile.rd.as_histogram();
        let near = h.weight_for(127) + h.weight_for(128);
        assert!(
            near > 0.9 * h.finite_weight(),
            "estimate concentrated near 127: {near} of {}",
            h.finite_weight()
        );
        // m̂ should be small relative to n (few cold accesses)
        assert!(
            profile.cold_fraction() < 0.05,
            "{}",
            profile.cold_fraction()
        );
    }

    #[test]
    fn histogram_totals_scale_to_n() {
        let trace = Trace::from_addresses("t", (0..100_000u64).map(|i| (i % 50) * 8));
        let profile = RdxRunner::new(fixed(200)).profile(trace.stream());
        let total = profile.rd.total_weight();
        assert!(
            (total - profile.accesses as f64).abs() < 1e-6 * profile.accesses as f64,
            "rd total {total} vs n {}",
            profile.accesses
        );
        let rt_total = profile.rt.total_weight();
        assert!((rt_total - total).abs() < 1e-6 * total);
    }

    #[test]
    fn streaming_trace_is_all_cold() {
        let trace = Trace::from_addresses("s", (0..200_000u64).map(|i| i * 8));
        let profile = RdxRunner::new(fixed(1000)).profile(trace.stream());
        assert_eq!(profile.traps, 0);
        assert!(
            profile.cold_fraction() > 0.95,
            "{}",
            profile.cold_fraction()
        );
        assert_eq!(profile.rd.as_histogram().finite_weight(), 0.0);
    }

    #[test]
    fn empty_stream_profile() {
        let trace = Trace::new("e");
        let profile = RdxRunner::new(fixed(100)).profile(trace.stream());
        assert_eq!(profile.accesses, 0);
        assert_eq!(profile.samples, 0);
        assert!(profile.rd.as_histogram().is_empty());
        assert_eq!(profile.m_estimate, 0.0);
    }

    #[test]
    fn overhead_at_paper_operating_point() {
        // Period 64Ki on a reuse-heavy trace: ≈5% time overhead.
        let trace = Trace::from_addresses("o", (0..2_000_000u64).map(|i| (i % 1000) * 8));
        let profile = RdxRunner::new(RdxConfig::default()).profile(trace.stream());
        assert!(
            profile.time_overhead < 0.10,
            "overhead {} should be featherlight",
            profile.time_overhead
        );
        assert!(profile.instrumentation_slowdown() > 50.0);
    }

    #[test]
    fn conversion_method_changes_estimates() {
        // random uniform over 256 blocks: reuse times overestimate distances
        let addrs: Vec<u64> = {
            let mut x = 1234567u64;
            (0..300_000)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((x >> 33) % 256) * 8
                })
                .collect()
        };
        let trace = Trace::from_addresses("r", addrs);
        let fp_profile = RdxRunner::new(fixed(300)).profile(trace.stream());
        let naive_profile =
            RdxRunner::new(fixed(300).with_conversion(ConversionMethod::TimeAsDistance))
                .profile(trace.stream());
        let fp_mean = fp_profile.rd.as_histogram().finite_mean().unwrap();
        let naive_mean = naive_profile.rd.as_histogram().finite_mean().unwrap();
        // True mean distance for uniform-256 ≈ 255·(H(255)) style ≪ mean time.
        assert!(
            fp_mean < naive_mean,
            "footprint conversion must shrink naive times: {fp_mean} vs {naive_mean}"
        );
        // distances are bounded by the footprint (256)
        assert!(fp_mean <= 300.0, "{fp_mean}");
    }

    #[test]
    fn deterministic_profiles() {
        let trace = Trace::from_addresses("d", (0..100_000u64).map(|i| (i % 321) * 8));
        let a = RdxRunner::new(RdxConfig::default().with_period(500).with_seed(1))
            .profile(trace.stream());
        let b = RdxRunner::new(RdxConfig::default().with_period(500).with_seed(1))
            .profile(trace.stream());
        assert_eq!(a.rd, b.rd);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn censoring_correction_recovers_long_reuses() {
        // Two-scale trace: mostly short reuses + rare very long reuses.
        // Under FIFO eviction the long intervals get censored; IPCW should
        // recover more long-distance weight than no correction.
        let mut addrs = Vec::new();
        for i in 0..400_000u64 {
            if i % 50 == 0 {
                // slow cycle over 4000 "cold-ish" blocks → long reuse
                addrs.push((10_000 + (i / 50) % 4000) * 8);
            } else {
                // fast cycle over 8 hot blocks
                addrs.push((i % 8) * 8);
            }
        }
        let trace = Trace::from_addresses("two", addrs);
        let with = RdxRunner::new(fixed(97)).profile(trace.stream());
        let without = RdxRunner::new(fixed(97).with_censoring(CensoringCorrection::None))
            .profile(trace.stream());
        let tail = |p: &RdxProfile| {
            let h = p.rd.as_histogram();
            let fin = h.finite_weight();
            if fin == 0.0 {
                return 0.0;
            }
            h.buckets()
                .filter(|b| b.range.lo >= 256)
                .map(|b| b.weight)
                .sum::<f64>()
                / fin
        };
        assert!(
            tail(&with) >= tail(&without),
            "IPCW tail {} ≥ uncorrected tail {}",
            tail(&with),
            tail(&without)
        );
    }
}
