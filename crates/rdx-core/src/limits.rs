//! Shared validation of user-supplied numeric parameters.
//!
//! The CLI flags and the server's `OpenSession` options feed the same
//! machinery, so they share one set of bounds checks. Historically these
//! values were "fixed" silently downstream (`--decode-buffer 0` clamped
//! by a `.max(1)`, `--registers 7` quietly truncated to the 4-watchpoint
//! machine); validating at the trust boundary turns each misuse into a
//! clear per-parameter error instead of a silently different experiment.

use std::fmt;

/// The simulated machine models the x86 debug-register file: 4 slots.
pub const MAX_REGISTERS: usize = 4;

/// The decode-ahead ring needs one buffer in flight plus one being
/// refilled; smaller depths would deadlock and are clamped internally,
/// so reject them at the boundary instead.
pub const MIN_DECODE_AHEAD: usize = 2;

/// A parameter outside its valid range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LimitError {
    /// Parameter name in flag spelling (`period`, `decode-buffer`, ...).
    pub param: &'static str,
    /// The requirement, as prose (`at least 1`, `between 1 and 4`).
    pub requirement: &'static str,
    /// The rejected value.
    pub got: u64,
}

impl fmt::Display for LimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} must be {} (got {})",
            self.param, self.requirement, self.got
        )
    }
}

impl std::error::Error for LimitError {}

/// Validates a sampling period: the PMU cannot sample every 0 accesses.
///
/// # Errors
///
/// [`LimitError`] if `period` is 0.
pub fn check_period(period: u64) -> Result<u64, LimitError> {
    if period == 0 {
        return Err(LimitError {
            param: "period",
            requirement: "at least 1",
            got: 0,
        });
    }
    Ok(period)
}

/// Validates a debug-register count against the 4-slot machine model.
///
/// # Errors
///
/// [`LimitError`] if `registers` is 0 or exceeds [`MAX_REGISTERS`].
pub fn check_registers(registers: usize) -> Result<usize, LimitError> {
    if registers == 0 || registers > MAX_REGISTERS {
        return Err(LimitError {
            param: "registers",
            requirement: "between 1 and 4",
            got: registers as u64,
        });
    }
    Ok(registers)
}

/// Validates a worker count.
///
/// # Errors
///
/// [`LimitError`] if `jobs` is 0.
pub fn check_jobs(jobs: usize) -> Result<usize, LimitError> {
    if jobs == 0 {
        return Err(LimitError {
            param: "jobs",
            requirement: "at least 1",
            got: 0,
        });
    }
    Ok(jobs)
}

/// Validates a decode chunk capacity (accesses per chunk).
///
/// # Errors
///
/// [`LimitError`] if `capacity` is 0.
pub fn check_decode_buffer(capacity: usize) -> Result<usize, LimitError> {
    if capacity == 0 {
        return Err(LimitError {
            param: "decode-buffer",
            requirement: "at least 1",
            got: 0,
        });
    }
    Ok(capacity)
}

/// Validates an access-count parameter (`Params::with_accesses` panics
/// on 0, so the boundary must reject it first).
///
/// # Errors
///
/// [`LimitError`] if `accesses` is 0.
pub fn check_accesses(accesses: u64) -> Result<u64, LimitError> {
    if accesses == 0 {
        return Err(LimitError {
            param: "accesses",
            requirement: "at least 1",
            got: 0,
        });
    }
    Ok(accesses)
}

/// Validates an element-count parameter (`Params::with_elements` panics
/// on 0, so the boundary must reject it first).
///
/// # Errors
///
/// [`LimitError`] if `elements` is 0.
pub fn check_elements(elements: u64) -> Result<u64, LimitError> {
    if elements == 0 {
        return Err(LimitError {
            param: "elements",
            requirement: "at least 1",
            got: 0,
        });
    }
    Ok(elements)
}

/// Validates a decode-ahead ring depth.
///
/// # Errors
///
/// [`LimitError`] if `depth` is below [`MIN_DECODE_AHEAD`].
pub fn check_decode_ahead(depth: usize) -> Result<usize, LimitError> {
    if depth < MIN_DECODE_AHEAD {
        return Err(LimitError {
            param: "decode-ahead",
            requirement: "at least 2",
            got: depth as u64,
        });
    }
    Ok(depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_enforced() {
        assert!(check_period(0).is_err());
        assert_eq!(check_period(1), Ok(1));
        assert_eq!(check_period(1 << 20), Ok(1 << 20));

        assert!(check_registers(0).is_err());
        assert_eq!(check_registers(1), Ok(1));
        assert_eq!(check_registers(4), Ok(4));
        assert!(check_registers(5).is_err());

        assert!(check_jobs(0).is_err());
        assert_eq!(check_jobs(8), Ok(8));

        assert!(check_decode_buffer(0).is_err());
        assert_eq!(check_decode_buffer(1), Ok(1));

        assert!(check_decode_ahead(0).is_err());
        assert!(check_decode_ahead(1).is_err());
        assert_eq!(check_decode_ahead(2), Ok(2));

        assert!(check_accesses(0).is_err());
        assert_eq!(check_accesses(1), Ok(1));
        assert!(check_elements(0).is_err());
        assert_eq!(check_elements(1 << 30), Ok(1 << 30));
    }

    #[test]
    fn errors_name_the_parameter_and_value() {
        let e = check_registers(7).unwrap_err();
        assert_eq!(e.to_string(), "registers must be between 1 and 4 (got 7)");
        let e = check_period(0).unwrap_err();
        assert!(e.to_string().contains("period"));
        assert!(e.to_string().contains("at least 1"));
        let e = check_decode_ahead(1).unwrap_err();
        assert_eq!(e.param, "decode-ahead");
        assert_eq!(e.got, 1);
        let e = check_accesses(0).unwrap_err();
        assert_eq!(e.to_string(), "accesses must be at least 1 (got 0)");
        let e = check_elements(0).unwrap_err();
        assert_eq!(e.param, "elements");
    }
}
