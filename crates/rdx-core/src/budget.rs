//! Overhead-budgeted profiling — an extension beyond the paper.
//!
//! Production deployments think in overhead budgets ("spend at most 2 % of
//! CPU on profiling"), not sampling periods. The cost model makes the
//! period ↔ overhead relationship explicit, so the budget can be solved
//! for directly: at period `P`, expected overhead is
//!
//! ```text
//! ovh(P) ≈ (c_sample + r_trap · c_trap) / (P · c_access)
//! ```
//!
//! where `r_trap` is the fraction of samples whose watchpoint traps
//! (conservatively 1.0 — every sample may trap). Inverting for `P` yields
//! the densest sampling that respects the budget, i.e. the best accuracy
//! money can buy at that overhead.

use crate::config::RdxConfig;
use memsim::CostModel;

/// Computes the smallest sampling period whose *worst-case* expected time
/// overhead (every sample trapping) stays within `budget` (a fraction,
/// e.g. `0.05` for 5 %).
///
/// # Panics
///
/// Panics if `budget` is not positive and finite.
#[must_use]
pub fn period_for_budget(cost: &CostModel, budget: f64) -> u64 {
    assert!(
        budget.is_finite() && budget > 0.0,
        "overhead budget must be positive, got {budget}"
    );
    let per_sample = cost.cycles_per_sample + cost.cycles_per_trap;
    let period = per_sample / (budget * cost.cycles_per_access);
    (period.ceil() as u64).max(1)
}

/// Expected worst-case overhead at a given period under the cost model.
#[must_use]
pub fn overhead_at_period(cost: &CostModel, period: u64) -> f64 {
    let per_sample = cost.cycles_per_sample + cost.cycles_per_trap;
    per_sample / (period.max(1) as f64 * cost.cycles_per_access)
}

impl RdxConfig {
    /// Configures the sampling period from an overhead budget instead of a
    /// raw period: the densest sampling whose worst-case time overhead is
    /// at most `budget`.
    ///
    /// ```
    /// use rdx_core::RdxConfig;
    ///
    /// let config = RdxConfig::default().with_overhead_budget(0.05);
    /// // the paper's 5% operating point lands near the 64Ki period
    /// let p = config.machine.sampling.period;
    /// assert!((32_768..=131_072).contains(&p), "period {p}");
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not positive and finite.
    #[must_use]
    pub fn with_overhead_budget(self, budget: f64) -> Self {
        let period = period_for_budget(&self.machine.cost, budget);
        self.with_period(period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RdxRunner;
    use rdx_trace::Trace;

    #[test]
    fn budget_round_trips_through_overhead() {
        let cost = CostModel::default();
        for budget in [0.01, 0.05, 0.20, 1.0] {
            let p = period_for_budget(&cost, budget);
            let ovh = overhead_at_period(&cost, p);
            assert!(ovh <= budget * 1.001, "budget {budget}: period {p} → {ovh}");
            // one step denser would bust the budget (within rounding)
            if p > 2 {
                let denser = overhead_at_period(&cost, p - 1);
                assert!(denser >= budget * 0.99, "period not minimal: {p}");
            }
        }
    }

    #[test]
    fn five_percent_budget_matches_paper_period() {
        let p = period_for_budget(&CostModel::default(), 0.05);
        // (6000+4000)/(0.05·3) ≈ 66667 — the 64Ki neighbourhood
        assert!((60_000..75_000).contains(&p), "{p}");
    }

    #[test]
    fn measured_overhead_respects_budget() {
        // worst-case trace: every sample traps immediately
        let trace = Trace::from_addresses("hot", std::iter::repeat_n(0x40u64, 3_000_000));
        for budget in [0.02, 0.10] {
            let config = RdxConfig::default().with_overhead_budget(budget);
            let profile = RdxRunner::new(config).profile(trace.stream());
            assert!(
                profile.time_overhead <= budget * 1.15,
                "budget {budget}: measured {}",
                profile.time_overhead
            );
            assert!(profile.samples > 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = period_for_budget(&CostModel::default(), 0.0);
    }
}
