//! Parallel batch profiling over a bounded worker pool.
//!
//! Every RDX profile is an independent, deterministic function of its
//! `(config, stream)` pair, which makes sweeps — registry × period ×
//! policy grids — embarrassingly parallel. [`profile_batch`] fans a
//! task list out over at most `jobs` worker threads and returns the
//! profiles **in task order**, so parallel output is byte-identical to
//! a sequential run no matter how the scheduler interleaves workers.
//!
//! Tasks carry a *stream factory* rather than a stream so that nothing
//! is materialized until a worker picks the task up; combined with the
//! profiler's own streaming consumption, peak memory stays at
//! `O(jobs)` live streams.
//!
//! A panicking task can never silently shrink or reorder the result:
//! workers catch each task's unwind, the collector re-raises the
//! panic of the **lowest-indexed** failed task on the caller's thread
//! with its original payload, and no partial `Vec` escapes.

use crate::config::RdxConfig;
use crate::report::RdxProfile;
use crate::runner::RdxRunner;
use rdx_trace::{AccessStream, Chunked};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The steppable core of the batch dispatch loop: claim task indices
/// from a shared cursor, reassemble `(index, result)` pairs into task
/// order.
///
/// [`profile_batch`] drives these from real worker threads; the
/// deterministic simulator (`rdx-sim`) drives the same types from
/// virtual workers under a seeded schedule, so the claim/collect
/// semantics — every index claimed exactly once, the lowest-indexed
/// panic wins — are pinned by replayable tests instead of whatever
/// interleaving the OS happened to produce.
pub mod dispatch {
    use std::any::Any;
    use std::panic::resume_unwind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A caught panic payload as it crosses the collector queue.
    pub type TaskPanic = Box<dyn Any + Send + 'static>;

    /// Lock-free claim cursor: hands each of `total` task indices to
    /// exactly one caller, in cursor order.
    #[derive(Debug)]
    pub struct Claims {
        cursor: AtomicUsize,
        total: usize,
    }

    impl Claims {
        /// A cursor over task indices `0..total`.
        #[must_use]
        pub fn new(total: usize) -> Self {
            Claims {
                cursor: AtomicUsize::new(0),
                total,
            }
        }

        /// Claims the next unclaimed index; `None` once exhausted.
        pub fn next(&self) -> Option<usize> {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            (i < self.total).then_some(i)
        }

        /// The total number of task indices.
        #[must_use]
        pub fn total(&self) -> usize {
            self.total
        }
    }

    /// Reassembles out-of-order `(index, result)` pairs into task
    /// order, returning the values. A worker stops claiming after its
    /// own task fails, so scanning in index order meets the
    /// lowest-indexed panic before any never-claimed hole.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-indexed `Err` payload via
    /// [`resume_unwind`]; panics if an index below the first failure
    /// was never reported (a dispatch-protocol violation).
    pub fn collect_in_order<T>(
        total: usize,
        results: impl IntoIterator<Item = (usize, Result<T, TaskPanic>)>,
    ) -> Vec<T> {
        let mut slots: Vec<Option<Result<T, TaskPanic>>> = (0..total).map(|_| None).collect();
        for (i, result) in results {
            slots[i] = Some(result);
        }
        let mut out = Vec::with_capacity(total);
        for slot in slots {
            match slot.expect("every task before the first panic was claimed") {
                Ok(value) => out.push(value),
                Err(payload) => resume_unwind(payload),
            }
        }
        out
    }
}

/// A unit of batch work: a profiler configuration plus the factory that
/// builds its input stream on the worker thread.
pub struct BatchTask<F> {
    /// Profiler configuration for this task.
    pub config: RdxConfig,
    /// Builds the access stream (invoked once, on the worker).
    pub make_stream: F,
}

/// The machine's available parallelism (≥ 1): the default `jobs` value.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One task's outcome as it crosses the collector channel.
type TaskResult = Result<RdxProfile, Box<dyn Any + Send + 'static>>;

fn run_task<S: AccessStream, F: FnOnce() -> S>(config: RdxConfig, make_stream: F) -> RdxProfile {
    let _task_span = rdx_metrics::span("task");
    rdx_metrics::counter("rdx.batch.tasks").incr();
    // Batch throughput is the point of this module, so hand the machine
    // chunks: generator streams get buffered into bounded slices for the
    // bulk-scan fast path, materialized traces pass through zero-copy.
    // Chunking never changes the access sequence, so profiles stay
    // bit-identical to an unwrapped run (asserted by the tests below).
    RdxRunner::new(config).profile(Chunked::new(make_stream()))
}

/// Profiles every task on a pool of at most `jobs` threads, returning
/// profiles in task order (deterministic regardless of scheduling).
///
/// `jobs` is clamped to `[1, tasks.len()]`; `jobs == 1` degenerates to
/// an in-place sequential loop with no thread overhead.
///
/// # Panics
///
/// If a task panics (in its stream factory or in the profiler), the
/// panic is re-raised here with the original payload — the first one
/// in *task order* when several tasks fail. Workers that already
/// completed other tasks are joined first, so no thread leaks.
#[must_use]
pub fn profile_batch<S, F>(tasks: Vec<BatchTask<F>>, jobs: usize) -> Vec<RdxProfile>
where
    S: AccessStream,
    F: FnOnce() -> S + Send,
{
    let task_count = tasks.len();
    if task_count == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, task_count);
    let _batch_span = rdx_metrics::span("rdx.batch");
    if jobs == 1 {
        return tasks
            .into_iter()
            .map(|t| run_task(t.config, t.make_stream))
            .collect();
    }

    // Each slot is taken exactly once: the atomic cursor hands every
    // index to exactly one worker, so the per-slot lock is uncontended.
    let slots: Vec<parking_lot::Mutex<Option<BatchTask<F>>>> = tasks
        .into_iter()
        .map(|t| parking_lot::Mutex::new(Some(t)))
        .collect();
    let claims = dispatch::Claims::new(task_count);
    // Bounded at one in-flight result per worker: the collector drains
    // concurrently on the caller's thread, so a full queue stalls a
    // worker briefly but can never deadlock — and backpressure
    // discipline holds here like everywhere else in the workspace.
    let (tx, rx) = crossbeam::channel::bounded::<(usize, TaskResult)>(jobs);

    let results: Vec<Option<TaskResult>> = crossbeam::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let slots = &slots;
            let claims = &claims;
            scope.spawn(move |_| {
                let _worker_span = rdx_metrics::span("rdx.batch.worker");
                while let Some(i) = claims.next() {
                    rdx_metrics::record_value("rdx.batch.queue_depth", (claims.total() - i) as u64);
                    let task = slots[i].lock().take().expect("task taken exactly once");
                    let result =
                        catch_unwind(AssertUnwindSafe(|| run_task(task.config, task.make_stream)));
                    let failed = result.is_err();
                    tx.send((i, result)).expect("result collector alive");
                    if failed {
                        // This worker's state is fine (the unwind was
                        // caught), but stop claiming new work: the batch
                        // is already doomed to re-raise.
                        break;
                    }
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<TaskResult>> = (0..task_count).map(|_| None).collect();
        for (i, result) in rx {
            results[i] = Some(result);
        }
        results
    })
    .expect("batch workers never unwind (panics are caught per task)");

    // Re-raising the lowest-indexed panic must happen outside the
    // scope (the scope catches closure unwinds to match crossbeam's
    // contract, which would swallow the payload).
    dispatch::collect_in_order(task_count, results.into_iter().enumerate().map(to_pair))
}

/// Unwraps one collected slot for [`dispatch::collect_in_order`]; the
/// `None` case is the same protocol violation its docs describe.
fn to_pair(
    (i, slot): (usize, Option<TaskResult>),
) -> (usize, Result<RdxProfile, dispatch::TaskPanic>) {
    (
        i,
        slot.expect("every task before the first panic was claimed"),
    )
}

impl RdxRunner {
    /// Profiles many streams under this runner's configuration on at
    /// most `jobs` threads; results are in input order.
    ///
    /// See [`profile_batch`] for the execution model, including how
    /// panicking tasks are surfaced.
    #[must_use]
    pub fn profile_batch<S, F>(&self, streams: Vec<F>, jobs: usize) -> Vec<RdxProfile>
    where
        S: AccessStream,
        F: FnOnce() -> S + Send,
    {
        profile_batch(
            streams
                .into_iter()
                .map(|make_stream| BatchTask {
                    config: *self.config(),
                    make_stream,
                })
                .collect(),
            jobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_workloads::{by_name, DynStream, Params};

    fn workload_params(k: u64) -> Params {
        Params::default()
            .with_accesses(20_000)
            .with_elements(500 + 100 * k)
    }

    fn make_stream(name: &'static str, k: u64) -> impl FnOnce() -> DynStream + Send {
        move || {
            by_name(name)
                .expect("registry workload")
                .stream(&workload_params(k))
        }
    }

    #[test]
    fn empty_batch() {
        let out = profile_batch::<DynStream, fn() -> DynStream>(Vec::new(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_equals_sequential_in_order() {
        let tasks = || {
            (0..12u64)
                .map(|k| BatchTask {
                    config: RdxConfig::default().with_period(512 + 64 * k),
                    make_stream: make_stream("zipf", k),
                })
                .collect::<Vec<_>>()
        };
        let seq = profile_batch(tasks(), 1);
        let par = profile_batch(tasks(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.rd, b.rd);
            assert_eq!(a.rt, b.rt);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.m_estimate, b.m_estimate);
        }
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        let runner = RdxRunner::new(RdxConfig::default().with_period(256));
        let streams: Vec<_> = (0..3u64).map(|k| make_stream("stream_triad", k)).collect();
        let out = runner.profile_batch(streams, 64);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|p| p.accesses == 20_000));
    }

    #[test]
    fn runner_batch_matches_individual_profiles() {
        let runner = RdxRunner::new(RdxConfig::default().with_period(1024));
        let individual: Vec<_> = (0..4u64)
            .map(|k| runner.profile(make_stream("zipf", k)()))
            .collect();
        let streams: Vec<_> = (0..4u64).map(|k| make_stream("zipf", k)).collect();
        let batched = runner.profile_batch(streams, 4);
        for (a, b) in individual.iter().zip(&batched) {
            assert_eq!(a.rd, b.rd);
            assert_eq!(a.traps, b.traps);
        }
    }

    /// Builds a batch whose task at `poison` panics in its stream
    /// factory with a recognizable payload.
    fn poisoned_tasks(
        n: u64,
        poison: u64,
    ) -> Vec<BatchTask<Box<dyn FnOnce() -> DynStream + Send>>> {
        (0..n)
            .map(|k| {
                let make: Box<dyn FnOnce() -> DynStream + Send> = if k == poison {
                    Box::new(move || panic!("injected failure in task {k}"))
                } else {
                    Box::new(make_stream("zipf", k))
                };
                BatchTask {
                    config: RdxConfig::default().with_period(512),
                    make_stream: make,
                }
            })
            .collect()
    }

    #[test]
    fn worker_panic_is_propagated_with_payload() {
        for jobs in [1, 3] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                profile_batch(poisoned_tasks(6, 2), jobs)
            }));
            let payload = result.expect_err("panicking task must fail the batch loudly");
            let msg = payload
                .downcast_ref::<String>()
                .expect("panic! with format args carries a String");
            assert_eq!(msg, "injected failure in task 2", "jobs={jobs}");
        }
    }

    #[test]
    fn first_panic_in_task_order_wins() {
        // Both task 1 and task 4 panic; whichever thread finishes first,
        // the caller must always see task 1's payload.
        for _ in 0..8 {
            let mut tasks = poisoned_tasks(6, 1);
            let poison4 = poisoned_tasks(6, 4).remove(4);
            tasks[4] = poison4;
            let payload = catch_unwind(AssertUnwindSafe(|| profile_batch(tasks, 4)))
                .expect_err("batch with two poisoned tasks must fail");
            let msg = payload.downcast_ref::<String>().expect("String payload");
            assert_eq!(msg, "injected failure in task 1");
        }
    }

    #[test]
    fn completed_prefix_stays_ordered_when_later_task_panics() {
        // The batch fails loudly, and an identical batch without the
        // poisoned tail yields the same ordered prefix as sequential —
        // the failure mode is "panic", never "fewer/misordered rows".
        let full = catch_unwind(AssertUnwindSafe(|| profile_batch(poisoned_tasks(5, 4), 2)));
        assert!(full.is_err());
        let prefix_tasks = || poisoned_tasks(5, 4).into_iter().take(4).collect::<Vec<_>>();
        let par = profile_batch(prefix_tasks(), 2);
        let seq = profile_batch(prefix_tasks(), 1);
        assert_eq!(par.len(), 4);
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.rd, b.rd);
            assert_eq!(a.samples, b.samples);
        }
    }
}
