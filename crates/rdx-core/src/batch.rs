//! Parallel batch profiling over a bounded worker pool.
//!
//! Every RDX profile is an independent, deterministic function of its
//! `(config, stream)` pair, which makes sweeps — registry × period ×
//! policy grids — embarrassingly parallel. [`profile_batch`] fans a
//! task list out over at most `jobs` worker threads and returns the
//! profiles **in task order**, so parallel output is byte-identical to
//! a sequential run no matter how the scheduler interleaves workers.
//!
//! Tasks carry a *stream factory* rather than a stream so that nothing
//! is materialized until a worker picks the task up; combined with the
//! profiler's own streaming consumption, peak memory stays at
//! `O(jobs)` live streams.

use crate::config::RdxConfig;
use crate::report::RdxProfile;
use crate::runner::RdxRunner;
use rdx_trace::AccessStream;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unit of batch work: a profiler configuration plus the factory that
/// builds its input stream on the worker thread.
pub struct BatchTask<F> {
    /// Profiler configuration for this task.
    pub config: RdxConfig,
    /// Builds the access stream (invoked once, on the worker).
    pub make_stream: F,
}

/// The machine's available parallelism (≥ 1): the default `jobs` value.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Profiles every task on a pool of at most `jobs` threads, returning
/// profiles in task order (deterministic regardless of scheduling).
///
/// `jobs` is clamped to `[1, tasks.len()]`; `jobs == 1` degenerates to
/// an in-place sequential loop with no thread overhead.
#[must_use]
pub fn profile_batch<S, F>(tasks: Vec<BatchTask<F>>, jobs: usize) -> Vec<RdxProfile>
where
    S: AccessStream,
    F: FnOnce() -> S + Send,
{
    let task_count = tasks.len();
    if task_count == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, task_count);
    if jobs == 1 {
        return tasks
            .into_iter()
            .map(|t| RdxRunner::new(t.config).profile((t.make_stream)()))
            .collect();
    }

    // Each slot is taken exactly once: the atomic cursor hands every
    // index to exactly one worker, so the per-slot lock is uncontended.
    let slots: Vec<parking_lot::Mutex<Option<BatchTask<F>>>> = tasks
        .into_iter()
        .map(|t| parking_lot::Mutex::new(Some(t)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, RdxProfile)>();

    crossbeam::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let slots = &slots;
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let task = slots[i].lock().take().expect("task taken exactly once");
                let profile = RdxRunner::new(task.config).profile((task.make_stream)());
                tx.send((i, profile)).expect("result collector alive");
            });
        }
        drop(tx);
        let mut results: Vec<Option<RdxProfile>> = (0..task_count).map(|_| None).collect();
        for (i, profile) in rx {
            results[i] = Some(profile);
        }
        results
            .into_iter()
            .map(|p| p.expect("worker completed every claimed task"))
            .collect()
    })
    .expect("batch worker panicked")
}

impl RdxRunner {
    /// Profiles many streams under this runner's configuration on at
    /// most `jobs` threads; results are in input order.
    ///
    /// See [`profile_batch`] for the execution model.
    #[must_use]
    pub fn profile_batch<S, F>(&self, streams: Vec<F>, jobs: usize) -> Vec<RdxProfile>
    where
        S: AccessStream,
        F: FnOnce() -> S + Send,
    {
        profile_batch(
            streams
                .into_iter()
                .map(|make_stream| BatchTask {
                    config: *self.config(),
                    make_stream,
                })
                .collect(),
            jobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_workloads::{by_name, DynStream, Params};

    fn workload_params(k: u64) -> Params {
        Params::default()
            .with_accesses(20_000)
            .with_elements(500 + 100 * k)
    }

    fn make_stream(name: &'static str, k: u64) -> impl FnOnce() -> DynStream + Send {
        move || {
            by_name(name)
                .expect("registry workload")
                .stream(&workload_params(k))
        }
    }

    #[test]
    fn empty_batch() {
        let out = profile_batch::<DynStream, fn() -> DynStream>(Vec::new(), 8);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_equals_sequential_in_order() {
        let tasks = || {
            (0..12u64)
                .map(|k| BatchTask {
                    config: RdxConfig::default().with_period(512 + 64 * k),
                    make_stream: make_stream("zipf", k),
                })
                .collect::<Vec<_>>()
        };
        let seq = profile_batch(tasks(), 1);
        let par = profile_batch(tasks(), 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.rd, b.rd);
            assert_eq!(a.rt, b.rt);
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.m_estimate, b.m_estimate);
        }
    }

    #[test]
    fn oversubscribed_jobs_are_clamped() {
        let runner = RdxRunner::new(RdxConfig::default().with_period(256));
        let streams: Vec<_> = (0..3u64).map(|k| make_stream("stream_triad", k)).collect();
        let out = runner.profile_batch(streams, 64);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|p| p.accesses == 20_000));
    }

    #[test]
    fn runner_batch_matches_individual_profiles() {
        let runner = RdxRunner::new(RdxConfig::default().with_period(1024));
        let individual: Vec<_> = (0..4u64)
            .map(|k| runner.profile(make_stream("zipf", k)()))
            .collect();
        let streams: Vec<_> = (0..4u64).map(|k| make_stream("zipf", k)).collect();
        let batched = runner.profile_batch(streams, 4);
        for (a, b) in individual.iter().zip(&batched) {
            assert_eq!(a.rd, b.rd);
            assert_eq!(a.traps, b.traps);
        }
    }
}
