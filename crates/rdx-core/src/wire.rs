//! `RDXP` — the versioned binary serialization of [`RdxProfile`].
//!
//! Fleet aggregation moves profiles between processes and machines
//! (`rdx profile --save`, `rdx merge`, archival of per-session
//! snapshots), so the profile needs a stable, self-describing wire
//! form. The format is deliberately plain:
//!
//! ```text
//! magic   "RDXP"                       4 bytes
//! version u16 LE                       (RDXP_VERSION)
//! granularity block bytes  u64 LE      (must be a power of two)
//! counters                 8 × u64 LE  accesses, samples, traps,
//!                                      evictions, end_censored,
//!                                      dropped_samples,
//!                                      duplicate_samples,
//!                                      profiler_bytes
//! m_estimate, time_overhead            f64 bits as u64 LE
//! cost model               4 × f64 bits + 2 × u64 LE
//! rd histogram, rt histogram, each:
//!   binning tag u8                     0 = linear, 1 = log2
//!   binning param u64 LE               width / sub-bucket count
//!   bucket count u64 LE
//!   bucket weights                     count × f64 bits
//!   infinite weight                    f64 bits
//!   observations u64 LE
//! ```
//!
//! Weights travel as `f64::to_bits`, so `decode ∘ encode` is the
//! identity bit-for-bit (the monoid proptests in
//! `tests/merge_monoid.rs` pin this). Decoding is total: malformed
//! input — bad magic, unknown version, non-power-of-two granularity,
//! zero binning parameters, non-finite or negative weights, truncation,
//! trailing bytes — yields a typed [`WireError`], never a panic.

use crate::report::RdxProfile;
use memsim::cost::CostModel;
use rdx_histogram::{Binning, Histogram, RdHistogram, RtHistogram};
use rdx_trace::Granularity;
use std::fmt;

/// The wire-format version this build writes and accepts.
pub const RDXP_VERSION: u16 = 1;

const MAGIC: [u8; 4] = *b"RDXP";

/// Typed decode failure for [`decode_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer does not start with the `RDXP` magic.
    BadMagic,
    /// The version field names a format this build does not speak.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this build writes and accepts.
        expected: u16,
    },
    /// The buffer ended before the structure it promised.
    Truncated,
    /// Bytes remained after a complete profile.
    TrailingBytes {
        /// Number of unconsumed bytes.
        extra: usize,
    },
    /// The granularity field is not a non-zero power of two.
    BadGranularity {
        /// The offending block size.
        block_bytes: u64,
    },
    /// Unknown binning tag byte.
    BadBinningTag {
        /// The offending tag.
        tag: u8,
    },
    /// A binning parameter outside its valid range (zero width, zero or
    /// oversized sub-bucket count).
    BadBinningParam {
        /// The binning tag the parameter belongs to.
        tag: u8,
        /// The offending parameter value.
        param: u64,
    },
    /// A histogram weight is not finite and non-negative.
    BadWeight,
    /// A metadata float (estimate, overhead, or cost-model field) is
    /// not finite.
    BadFloat {
        /// Which field was malformed.
        field: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not an RDXP profile (bad magic)"),
            WireError::VersionMismatch { found, expected } => {
                write!(
                    f,
                    "RDXP version mismatch: found {found}, expected {expected}"
                )
            }
            WireError::Truncated => write!(f, "RDXP profile is truncated"),
            WireError::TrailingBytes { extra } => {
                write!(f, "RDXP profile has {extra} trailing bytes")
            }
            WireError::BadGranularity { block_bytes } => {
                write!(
                    f,
                    "granularity {block_bytes} is not a power-of-two block size"
                )
            }
            WireError::BadBinningTag { tag } => write!(f, "unknown binning tag {tag}"),
            WireError::BadBinningParam { tag, param } => {
                write!(f, "binning parameter {param} invalid for tag {tag}")
            }
            WireError::BadWeight => {
                write!(f, "histogram weight is not finite and non-negative")
            }
            WireError::BadFloat { field } => write!(f, "field {field} is not finite"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes a profile to `RDXP` bytes.
#[must_use]
pub fn encode_profile(profile: &RdxProfile) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        64 + 8 * (profile.rd.as_histogram().bucket_len() + profile.rt.as_histogram().bucket_len()),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&RDXP_VERSION.to_le_bytes());
    put_u64(&mut out, profile.granularity.block_bytes());
    for c in [
        profile.accesses,
        profile.samples,
        profile.traps,
        profile.evictions,
        profile.end_censored,
        profile.dropped_samples,
        profile.duplicate_samples,
        profile.profiler_bytes,
    ] {
        put_u64(&mut out, c);
    }
    put_u64(&mut out, profile.m_estimate.to_bits());
    put_u64(&mut out, profile.time_overhead.to_bits());
    put_u64(&mut out, profile.cost.cycles_per_access.to_bits());
    put_u64(&mut out, profile.cost.cycles_per_sample.to_bits());
    put_u64(&mut out, profile.cost.cycles_per_trap.to_bits());
    put_u64(
        &mut out,
        profile.cost.cycles_per_instrumented_access.to_bits(),
    );
    put_u64(&mut out, profile.cost.profiler_fixed_bytes);
    put_u64(&mut out, profile.cost.instrumentation_bytes_per_block);
    put_histogram(&mut out, profile.rd.as_histogram());
    put_histogram(&mut out, profile.rt.as_histogram());
    rdx_metrics::counter("rdx.merge.encoded").add(1);
    out
}

/// Deserializes a profile from `RDXP` bytes.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first malformation found;
/// the whole buffer must be one profile (trailing bytes are an error).
pub fn decode_profile(bytes: &[u8]) -> Result<RdxProfile, WireError> {
    let mut r = Reader { buf: bytes };
    if r.take(4)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.take_u16()?;
    if version != RDXP_VERSION {
        return Err(WireError::VersionMismatch {
            found: version,
            expected: RDXP_VERSION,
        });
    }
    let block_bytes = r.take_u64()?;
    if !block_bytes.is_power_of_two() {
        return Err(WireError::BadGranularity { block_bytes });
    }
    let granularity = Granularity::from_block_bytes(block_bytes);
    let accesses = r.take_u64()?;
    let samples = r.take_u64()?;
    let traps = r.take_u64()?;
    let evictions = r.take_u64()?;
    let end_censored = r.take_u64()?;
    let dropped_samples = r.take_u64()?;
    let duplicate_samples = r.take_u64()?;
    let profiler_bytes = r.take_u64()?;
    let m_estimate = r.take_finite("m_estimate")?;
    let time_overhead = r.take_finite("time_overhead")?;
    let cost = CostModel {
        cycles_per_access: r.take_finite("cycles_per_access")?,
        cycles_per_sample: r.take_finite("cycles_per_sample")?,
        cycles_per_trap: r.take_finite("cycles_per_trap")?,
        cycles_per_instrumented_access: r.take_finite("cycles_per_instrumented_access")?,
        profiler_fixed_bytes: r.take_u64()?,
        instrumentation_bytes_per_block: r.take_u64()?,
    };
    let rd = RdHistogram::from(take_histogram(&mut r)?);
    let rt = RtHistogram::from(take_histogram(&mut r)?);
    if !r.buf.is_empty() {
        return Err(WireError::TrailingBytes { extra: r.buf.len() });
    }
    rdx_metrics::counter("rdx.merge.decoded").add(1);
    Ok(RdxProfile {
        rd,
        rt,
        granularity,
        accesses,
        samples,
        traps,
        evictions,
        end_censored,
        dropped_samples,
        duplicate_samples,
        m_estimate,
        time_overhead,
        profiler_bytes,
        cost,
    })
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_histogram(out: &mut Vec<u8>, h: &Histogram) {
    let (tag, param) = match h.binning() {
        Binning::Linear { width } => (0u8, width),
        Binning::Log2 { subs } => (1u8, u64::from(subs)),
    };
    out.push(tag);
    put_u64(out, param);
    put_u64(out, h.bucket_len() as u64);
    for &w in h.weights() {
        put_u64(out, w.to_bits());
    }
    put_u64(out, h.infinite_weight().to_bits());
    put_u64(out, h.observations());
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let bytes = self.buf.get(..n).ok_or(WireError::Truncated)?;
        self.buf = &self.buf[n..];
        Ok(bytes)
    }

    fn take_u16(&mut self) -> Result<u16, WireError> {
        let bytes = self.take(2)?;
        let mut w = [0u8; 2];
        w.copy_from_slice(bytes);
        Ok(u16::from_le_bytes(w))
    }

    fn take_u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(w))
    }

    fn take_finite(&mut self, field: &'static str) -> Result<f64, WireError> {
        let v = f64::from_bits(self.take_u64()?);
        if v.is_finite() {
            Ok(v)
        } else {
            Err(WireError::BadFloat { field })
        }
    }
}

fn take_histogram(r: &mut Reader<'_>) -> Result<Histogram, WireError> {
    let tag = *r.take(1)?.first().ok_or(WireError::Truncated)?;
    let param = r.take_u64()?;
    let binning = match tag {
        0 => {
            if param == 0 {
                return Err(WireError::BadBinningParam { tag, param });
            }
            Binning::Linear { width: param }
        }
        1 => match u32::try_from(param) {
            Ok(subs) if subs > 0 => Binning::Log2 { subs },
            _ => return Err(WireError::BadBinningParam { tag, param }),
        },
        _ => return Err(WireError::BadBinningTag { tag }),
    };
    let count = r.take_u64()?;
    // A bucket needs 8 bytes; a count promising more than the buffer
    // holds is a truncation (and guards the allocation below).
    let count = usize::try_from(count).map_err(|_| WireError::Truncated)?;
    if count.checked_mul(8).is_none_or(|need| need > r.buf.len()) {
        return Err(WireError::Truncated);
    }
    let mut buckets = Vec::with_capacity(count);
    for _ in 0..count {
        buckets.push(f64::from_bits(r.take_u64()?));
    }
    let infinite = f64::from_bits(r.take_u64()?);
    let observations = r.take_u64()?;
    Histogram::try_from_parts(binning, buckets, infinite, observations).ok_or(WireError::BadWeight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_histogram::{ReuseDistance, ReuseTime};

    fn sample_profile() -> RdxProfile {
        let mut rd = RdHistogram::new(Binning::log2());
        rd.record(ReuseDistance::finite(3), 2.0);
        rd.record(ReuseDistance::finite(900), 5.5);
        rd.record(ReuseDistance::INFINITE, 3.25);
        let mut rt = RtHistogram::new(Binning::log2());
        rt.record(ReuseTime::finite(40), 7.0);
        rt.record(ReuseTime::INFINITE, 1.0);
        RdxProfile {
            rd,
            rt,
            granularity: Granularity::CACHE_LINE,
            accesses: 60_000,
            samples: 117,
            traps: 110,
            evictions: 4,
            end_censored: 7,
            dropped_samples: 0,
            duplicate_samples: 2,
            m_estimate: 800.25,
            time_overhead: 0.0421,
            profiler_bytes: 1 << 20,
            cost: CostModel::default(),
        }
    }

    fn bits_equal(a: &RdxProfile, b: &RdxProfile) -> bool {
        a.rd == b.rd
            && a.rt == b.rt
            && a.granularity == b.granularity
            && a.accesses == b.accesses
            && a.samples == b.samples
            && a.traps == b.traps
            && a.evictions == b.evictions
            && a.end_censored == b.end_censored
            && a.dropped_samples == b.dropped_samples
            && a.duplicate_samples == b.duplicate_samples
            && a.m_estimate.to_bits() == b.m_estimate.to_bits()
            && a.time_overhead.to_bits() == b.time_overhead.to_bits()
            && a.profiler_bytes == b.profiler_bytes
            && a.cost == b.cost
    }

    #[test]
    fn round_trip_is_identity() {
        let p = sample_profile();
        let bytes = encode_profile(&p);
        let back = decode_profile(&bytes).unwrap();
        assert!(bits_equal(&p, &back));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_profile(&sample_profile());
        bytes[0] = b'X';
        assert_eq!(decode_profile(&bytes), Err(WireError::BadMagic));
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut bytes = encode_profile(&sample_profile());
        bytes[4] = 0xFF;
        assert_eq!(
            decode_profile(&bytes),
            Err(WireError::VersionMismatch {
                found: u16::from_le_bytes([0xFF, bytes[5]]),
                expected: RDXP_VERSION,
            })
        );
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = encode_profile(&sample_profile());
        for len in 0..bytes.len() {
            let err = decode_profile(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    WireError::Truncated | WireError::BadMagic | WireError::VersionMismatch { .. }
                ),
                "len={len}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_profile(&sample_profile());
        bytes.push(0);
        assert_eq!(
            decode_profile(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_granularity_is_typed() {
        let mut bytes = encode_profile(&sample_profile());
        // The granularity word sits right after magic + version.
        bytes[6..14].copy_from_slice(&96u64.to_le_bytes());
        assert_eq!(
            decode_profile(&bytes),
            Err(WireError::BadGranularity { block_bytes: 96 })
        );
    }

    #[test]
    fn oversized_bucket_count_is_truncation_not_allocation() {
        let p = sample_profile();
        let bytes = encode_profile(&p);
        // Corrupt the rd bucket count (first histogram): tag is at the
        // fixed header end; count is 9 bytes further.
        let header = 4 + 2 + 8 + 8 * 8 + 2 * 8 + 6 * 8;
        let count_off = header + 1 + 8;
        let mut corrupt = bytes.clone();
        corrupt[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(decode_profile(&corrupt), Err(WireError::Truncated));
    }

    #[test]
    fn negative_weight_is_typed() {
        let p = sample_profile();
        let bytes = encode_profile(&p);
        let header = 4 + 2 + 8 + 8 * 8 + 2 * 8 + 6 * 8;
        let first_weight = header + 1 + 8 + 8;
        let mut corrupt = bytes.clone();
        corrupt[first_weight..first_weight + 8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert_eq!(decode_profile(&corrupt), Err(WireError::BadWeight));
    }
}
