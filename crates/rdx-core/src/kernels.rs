//! Merge kernels: interchangeable inner loops for bulk histogram
//! accumulation, behind one trait and a capability/cost table.
//!
//! Fleet aggregation ([`merge_batch`](crate::merge_batch)) reduces many
//! histograms into one, and its hot loop is bucket-wise `f64` addition
//! across a structure-of-arrays batch: one destination row plus many
//! equal-width source rows. The per-bucket accumulation is delegated to
//! a [`MergeKernel`] resolved once per reduction, using the same
//! [`KernelKind`] taxonomy as the decode (`rdx_trace::kernels`) and
//! scan (`memsim::kernels`) sides:
//!
//! * **scalar** — one pairwise pass over the destination per source
//!   row, exactly what chained [`Histogram::merge`]
//!   (rdx_histogram::Histogram::merge) calls would do. It is the
//!   oracle: every other kernel must produce bit-identical buckets on
//!   every input, which the equivalence tests below and the monoid
//!   proptests in `tests/merge_monoid.rs` enforce.
//! * **swar** — blockwise accumulation: eight buckets at a time held in
//!   a lane array that stays in registers across *all* source rows, so
//!   the destination is written once per block instead of once per
//!   source — straight-line code LLVM autovectorizes.
//! * **simd** — AVX2 on x86_64 (runtime-detected): 32 buckets per
//!   block as eight 4-lane `_mm256_add_pd` accumulators, again kept in
//!   registers across all sources. Confined to this module and guarded
//!   by `is_x86_feature_detected!`; other architectures mark the row
//!   unavailable and resolve to SWAR.
//!
//! **Bit-identity contract.** For each bucket `j` every kernel computes
//! `((dst[j] + srcs[0][j]) + srcs[1][j]) + …` in source order — only
//! the *traversal* differs, never the per-bucket operation sequence —
//! so kernel choice can never change a merged profile.
//!
//! The capability/cost table idiom ([`merge_kernels`], `auto` picking
//! the cheapest available row) mirrors the other two kernel sites.

#![allow(unsafe_code)]

pub use rdx_trace::{KernelChoice, KernelEntry, KernelKind};

/// Buckets accumulated per block in the SWAR kernel.
const LANES: usize = 8;

/// One interchangeable inner loop of the bulk histogram accumulator.
///
/// `dst` and every row of `srcs` must have the same width (callers
/// zero-pad ragged histograms first); implementations must be exactly
/// equivalent to the scalar oracle [`ScalarMerge`] — same bits in every
/// bucket — for every input.
pub trait MergeKernel {
    /// Which kernel family this is.
    fn kind(&self) -> KernelKind;

    /// Adds every source row into `dst`, bucket-wise, in source order.
    fn accumulate(&self, dst: &mut [f64], srcs: &[&[f64]]);
}

/// The pairwise pass — what chained `Histogram::merge` calls do —
/// retained as the oracle.
#[derive(Debug, Default, Clone, Copy)]
pub struct ScalarMerge;

impl MergeKernel for ScalarMerge {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }

    fn accumulate(&self, dst: &mut [f64], srcs: &[&[f64]]) {
        for src in srcs {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += *s;
            }
        }
    }
}

/// The portable blockwise kernel: eight-bucket lane arrays that stay
/// resident across all source rows, so each destination block is
/// loaded and stored once per reduction instead of once per source.
#[derive(Debug, Default, Clone, Copy)]
pub struct SwarMerge;

impl MergeKernel for SwarMerge {
    fn kind(&self) -> KernelKind {
        KernelKind::Swar
    }

    fn accumulate(&self, dst: &mut [f64], srcs: &[&[f64]]) {
        let width = dst.len();
        if srcs.iter().any(|s| s.len() != width) {
            // Ragged input violates the documented contract; take the
            // oracle's zip path (which truncates) instead of indexing
            // out of bounds on the hot path.
            return ScalarMerge.accumulate(dst, srcs);
        }
        let mut pos = 0;
        while pos + LANES <= width {
            let mut acc = [0.0f64; LANES];
            acc.copy_from_slice(&dst[pos..pos + LANES]);
            for src in srcs {
                for (a, s) in acc.iter_mut().zip(&src[pos..pos + LANES]) {
                    *a += *s;
                }
            }
            dst[pos..pos + LANES].copy_from_slice(&acc);
            pos += LANES;
        }
        // Tail (< 8 buckets): per-bucket accumulation, same add order.
        for (j, d) in dst.iter_mut().enumerate().skip(pos) {
            for src in srcs {
                *d += src[j];
            }
        }
    }
}

/// The x86_64 AVX2 kernel: 32 buckets per block as eight 4-lane vector
/// accumulators.
///
/// Only constructed when `is_x86_feature_detected!("avx2")` holds (and
/// [`MergeKernel::accumulate`] re-checks, so a mis-forced kind degrades
/// to the portable kernel instead of executing illegal instructions).
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdMerge;

impl MergeKernel for SimdMerge {
    fn kind(&self) -> KernelKind {
        KernelKind::Simd
    }

    fn accumulate(&self, dst: &mut [f64], srcs: &[&[f64]]) {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && srcs.iter().all(|s| s.len() == dst.len())
        {
            // SAFETY: AVX2 support was just verified on this CPU, and
            // every source row matches the destination width.
            unsafe { avx2::accumulate(dst, srcs) };
            return;
        }
        SwarMerge.accumulate(dst, srcs);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! The AVX2 wide-add kernel; every intrinsic call is guarded by the
    //! caller's feature check, and the caller has verified that all
    //! rows share `dst.len()` so the raw pointer arithmetic below stays
    //! in bounds.

    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_setzero_pd, _mm256_storeu_pd, _mm_prefetch,
        _MM_HINT_T0,
    };

    /// Buckets per block: eight 4-lane vectors kept in registers across
    /// all source rows.
    const BLOCK: usize = 32;
    const VECS: usize = BLOCK / 4;
    /// Cache lines per block (`BLOCK * 8` bytes, 64-byte lines).
    const LINES: usize = BLOCK * 8 / 64;
    /// How many source rows ahead to prefetch: the block-major walk
    /// jumps between unrelated row allocations, so the hardware stride
    /// prefetcher never locks on — without hints every row's block
    /// arrives cold from L2.
    const AHEAD: usize = 2;

    /// Adds every source row into `dst`, 32 buckets at a time.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support on this CPU and that
    /// every row of `srcs` is exactly `dst.len()` wide.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate(dst: &mut [f64], srcs: &[&[f64]]) {
        let width = dst.len();
        let mut pos = 0;
        while pos + BLOCK <= width {
            // SAFETY: `pos + BLOCK <= width` bounds every lane of every
            // load and store in this block, for `dst` and (by the
            // caller's width check) every source row.
            let mut acc = [_mm256_setzero_pd(); VECS];
            let base = dst.as_ptr().add(pos);
            for (v, slot) in acc.iter_mut().enumerate() {
                *slot = _mm256_loadu_pd(base.add(4 * v));
            }
            for (i, src) in srcs.iter().enumerate() {
                // Prefetch has no architectural effect, so the add order
                // (and therefore the result bits) is unchanged.
                if let Some(next) = srcs.get(i + AHEAD) {
                    let hint = next.as_ptr().add(pos).cast::<i8>();
                    for line in 0..LINES {
                        _mm_prefetch::<_MM_HINT_T0>(hint.add(64 * line));
                    }
                }
                let row = src.as_ptr().add(pos);
                for (v, slot) in acc.iter_mut().enumerate() {
                    *slot = _mm256_add_pd(*slot, _mm256_loadu_pd(row.add(4 * v)));
                }
            }
            let out = dst.as_mut_ptr().add(pos);
            for (v, slot) in acc.iter().enumerate() {
                _mm256_storeu_pd(out.add(4 * v), *slot);
            }
            pos += BLOCK;
        }
        // Tail (< 32 buckets): per-bucket accumulation, same add order.
        for (j, d) in dst.iter_mut().enumerate().skip(pos) {
            for src in srcs {
                *d += src[j];
            }
        }
    }
}

/// The merge-side capability/cost table for this host.
///
/// The `simd` row is available only on x86_64 CPUs with AVX2; elsewhere
/// `resolve` degrades it to the portable SWAR kernel.
#[must_use]
pub fn merge_kernels() -> [KernelEntry; 3] {
    #[cfg(target_arch = "x86_64")]
    let simd_available = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let simd_available = false;
    [
        KernelEntry {
            kind: KernelKind::Scalar,
            available: true,
            cost: 100,
        },
        KernelEntry {
            kind: KernelKind::Swar,
            available: true,
            cost: 45,
        },
        KernelEntry {
            kind: KernelKind::Simd,
            available: simd_available,
            cost: 30,
        },
    ]
}

/// Resolves a merge kernel choice against [`merge_kernels`].
#[must_use]
pub fn resolve_merge(choice: KernelChoice) -> KernelKind {
    rdx_trace::kernels::resolve(&merge_kernels(), choice)
}

/// Runs the merge kernel of `kind` (static dispatch — the reduction
/// resolves the kind once).
#[inline]
pub fn run_merge(kind: KernelKind, dst: &mut [f64], srcs: &[&[f64]]) {
    match kind {
        KernelKind::Scalar => ScalarMerge.accumulate(dst, srcs),
        KernelKind::Swar => SwarMerge.accumulate(dst, srcs),
        KernelKind::Simd => SimdMerge.accumulate(dst, srcs),
    }
}

/// The merge kernel instance for `kind`, for benches and tests that
/// drive kernels directly.
#[must_use]
pub fn merge_kernel(kind: KernelKind) -> &'static dyn MergeKernel {
    match kind {
        KernelKind::Scalar => &ScalarMerge,
        KernelKind::Swar => &SwarMerge,
        KernelKind::Simd => &SimdMerge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random integer-valued weights (exactly
    /// representable, so the bit-identity assertions are meaningful and
    /// strict at once).
    fn rows(seed: u64, n: usize, width: usize) -> Vec<Vec<f64>> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| (0..width).map(|_| (next() % 1000) as f64).collect())
            .collect()
    }

    #[test]
    fn resolve_auto_prefers_fastest_available() {
        let auto = resolve_merge(KernelChoice::Auto);
        assert_ne!(auto, KernelKind::Scalar);
        assert_eq!(resolve_merge(KernelChoice::Scalar), KernelKind::Scalar);
        assert_eq!(resolve_merge(KernelChoice::Swar), KernelKind::Swar);
    }

    #[test]
    fn kernels_match_the_scalar_oracle_bit_for_bit() {
        // Widths straddle every block boundary: SWAR lanes (8) and the
        // AVX2 block (32), plus ragged tails and a sub-lane width.
        for width in [0usize, 1, 5, 8, 9, 31, 32, 33, 64, 100, 257] {
            for nsrc in [0usize, 1, 2, 7, 33] {
                let data = rows(0x9e37 + width as u64, nsrc, width);
                let srcs: Vec<&[f64]> = data.iter().map(Vec::as_slice).collect();
                let dst0: Vec<f64> = rows(42, 1, width).remove(0);
                let mut want = dst0.clone();
                ScalarMerge.accumulate(&mut want, &srcs);
                for kind in [KernelKind::Scalar, KernelKind::Swar, KernelKind::Simd] {
                    let mut got = dst0.clone();
                    run_merge(kind, &mut got, &srcs);
                    let same = want
                        .iter()
                        .zip(&got)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(same, "kind={kind:?} width={width} nsrc={nsrc}");
                }
            }
        }
    }

    #[test]
    fn kernel_instances_report_their_kind() {
        for kind in [KernelKind::Scalar, KernelKind::Swar, KernelKind::Simd] {
            assert_eq!(merge_kernel(kind).kind(), kind);
        }
    }
}
