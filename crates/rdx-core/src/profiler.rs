//! The RDX profiler: sample handler, trap handler, replacement policy.

use crate::config::{RdxConfig, ReplacementPolicy};
use memsim::{Hardware, Profiler, Sample, Slot, Trap, Watchpoint};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A completed use–reuse observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompletedPair {
    /// Reuse time in intervening accesses.
    pub reuse_time: u64,
}

/// The profiler state accumulated across PMU samples and debug traps.
///
/// This is the component that would run inside perf-event overflow and
/// SIGTRAP handlers on real hardware: it owns no histogram logic, only the
/// raw observations; [`crate::RdxRunner`] post-processes them into a
/// [`crate::RdxProfile`].
#[derive(Debug)]
pub struct RdxProfiler {
    watch_width: u8,
    replacement: ReplacementPolicy,
    /// Age limit in accesses (0 = no aging).
    max_armed_accesses: u64,
    rng: SmallRng,
    pub(crate) completed: Vec<CompletedPair>,
    /// Durations of watchpoints evicted by the replacement policy.
    pub(crate) evicted: Vec<u64>,
    /// Durations of watchpoints still armed when the run ended.
    pub(crate) end_censored: Vec<u64>,
    /// Samples dropped because the policy was [`ReplacementPolicy::DropNew`]
    /// and no register was free.
    pub(crate) dropped_samples: u64,
    /// Samples skipped because the sampled address was already being
    /// watched (re-arming would double-count the same interval).
    pub(crate) duplicate_samples: u64,
}

impl RdxProfiler {
    /// Creates a profiler for the given configuration.
    #[must_use]
    pub fn new(config: &RdxConfig) -> Self {
        RdxProfiler {
            watch_width: config.watch_width,
            replacement: config.replacement,
            max_armed_accesses: config
                .max_armed_periods
                .saturating_mul(config.machine.sampling.period),
            rng: SmallRng::seed_from_u64(config.machine.seed ^ 0x5244_5850_524f_4631),
            completed: Vec::new(),
            evicted: Vec::new(),
            end_censored: Vec::new(),
            dropped_samples: 0,
            duplicate_samples: 0,
        }
    }

    /// Number of completed use–reuse pairs observed so far.
    #[must_use]
    pub fn completed_pairs(&self) -> usize {
        self.completed.len()
    }

    /// Approximate heap bytes of profiler state (memory-overhead
    /// accounting; the fixed runtime cost lives in the machine cost model).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.completed.capacity() * std::mem::size_of::<CompletedPair>()
            + (self.evicted.capacity() + self.end_censored.capacity()) * std::mem::size_of::<u64>()
    }

    fn evict_victim(&mut self, hw: &mut Hardware) -> Option<Slot> {
        // Runs inside the sample handler whenever the register file is
        // full, so it must not allocate: each policy walks `armed_iter`
        // directly. `min_by_key` returns the *first* minimal element,
        // matching the old collect-then-scan victim on `armed_at` ties,
        // and the RNG is drawn only for `EvictRandom` with a non-empty
        // file — the exact draw schedule of the allocating version.
        match self.replacement {
            ReplacementPolicy::DropNew => None,
            ReplacementPolicy::EvictOldest => hw
                .armed_iter()
                .min_by_key(|&(_, info)| info.armed_at)
                .map(|(slot, _)| slot),
            ReplacementPolicy::EvictRandom => {
                let count = hw.armed_count();
                if count == 0 {
                    return None;
                }
                let k = self.rng.random_range(0..count);
                hw.armed_iter().nth(k).map(|(slot, _)| slot)
            }
        }
    }
}

impl Profiler for RdxProfiler {
    fn on_sample(&mut self, sample: &Sample, hw: &mut Hardware) {
        rdx_metrics::counter("rdx.profiler.samples").incr();
        // Aging: release registers whose watchpoint has been armed beyond
        // the age limit — these are overwhelmingly cold (never-reused)
        // samples that would otherwise clog the register file forever.
        if self.max_armed_accesses > 0 {
            let now = hw.access_count();
            // The register file holds at most 64 slots, so a fixed stack
            // buffer replaces a per-sample heap allocation here.
            let mut expired = [Slot(0); 64];
            let mut expired_len = 0;
            for (slot, info) in hw.armed_iter() {
                if now.saturating_sub(info.accesses_at_arm) > self.max_armed_accesses {
                    expired[expired_len] = slot;
                    expired_len += 1;
                }
            }
            for &slot in &expired[..expired_len] {
                if let Some(info) = hw.disarm(slot) {
                    rdx_metrics::counter("rdx.profiler.evictions").incr();
                    self.evicted.push(now.saturating_sub(info.accesses_at_arm));
                }
            }
        }
        let wp = Watchpoint::read_write(sample.access.addr, self.watch_width);
        // Never arm two watchpoints on the same range: the second would
        // shadow the first and the pair accounting would double-count.
        if hw
            .armed_iter()
            .any(|(_, info)| info.watchpoint.addr == wp.addr)
        {
            rdx_metrics::counter("rdx.profiler.duplicate_samples").incr();
            self.duplicate_samples += 1;
            return;
        }
        if hw.armed_count() == hw.register_count() {
            match self.evict_victim(hw) {
                None => {
                    rdx_metrics::counter("rdx.profiler.dropped_samples").incr();
                    self.dropped_samples += 1;
                    return;
                }
                Some(slot) => {
                    if let Some(info) = hw.disarm(slot) {
                        rdx_metrics::counter("rdx.profiler.evictions").incr();
                        self.evicted
                            .push(hw.access_count().saturating_sub(info.accesses_at_arm));
                    }
                }
            }
        }
        match hw.arm(wp, sample.access.addr.raw()) {
            Ok(_) => rdx_metrics::counter("rdx.profiler.watchpoints_armed").incr(),
            Err(_) => {
                // Defensive: the eviction above guarantees a free slot, so
                // treat a failed arm like a dropped sample instead of dying.
                rdx_metrics::counter("rdx.profiler.dropped_samples").incr();
                self.dropped_samples += 1;
            }
        }
    }

    fn on_trap(&mut self, trap: &Trap, _hw: &mut Hardware) {
        rdx_metrics::counter("rdx.profiler.traps").incr();
        // Counter snapshots are taken after each access retires, so the
        // number of accesses strictly between sample and reuse is the
        // difference minus the trapping access itself.
        let total_now = trap.counters.loads + trap.counters.stores;
        let reuse_time = total_now
            .saturating_sub(trap.info.accesses_at_arm)
            .saturating_sub(1);
        self.completed.push(CompletedPair { reuse_time });
    }

    fn on_finish(&mut self, hw: &mut Hardware) {
        let now = hw.access_count();
        let mut armed = [Slot(0); 64];
        let mut armed_len = 0;
        for (slot, _) in hw.armed_iter() {
            armed[armed_len] = slot;
            armed_len += 1;
        }
        let mut end_censored = 0u64;
        for &slot in &armed[..armed_len] {
            if let Some(info) = hw.disarm(slot) {
                end_censored += 1;
                self.end_censored
                    .push(now.saturating_sub(info.accesses_at_arm));
            }
        }
        rdx_metrics::counter("rdx.profiler.end_censored").add(end_censored);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::Machine;
    use rdx_trace::Trace;

    fn run(trace: &Trace, config: RdxConfig) -> (RdxProfiler, memsim::RunReport) {
        let mut prof = RdxProfiler::new(&config);
        let report = Machine::new(config.machine).run(trace.stream(), &mut prof);
        (prof, report)
    }

    fn fixed_period(period: u64) -> RdxConfig {
        let mut c = RdxConfig::default().with_period(period);
        c.machine.sampling.jitter = 0;
        c
    }

    #[test]
    fn completes_pairs_on_cyclic_trace() {
        // 64-block cycle: every sampled block is reused 64 accesses later.
        let trace = Trace::from_addresses("cyc", (0..50_000u64).map(|i| (i % 64) * 8));
        let (prof, report) = run(&trace, fixed_period(100));
        assert!(prof.completed_pairs() > 400, "{}", prof.completed_pairs());
        // every completed pair has reuse time exactly 63
        for p in &prof.completed {
            assert_eq!(p.reuse_time, 63);
        }
        assert_eq!(report.ledger.traps as usize, prof.completed.len());
    }

    #[test]
    fn streaming_trace_all_end_censored_or_evicted() {
        // no reuse at all → no traps; samples either end-censored or evicted
        let trace = Trace::from_addresses("str", (0..100_000u64).map(|i| i * 8));
        let (prof, report) = run(&trace, fixed_period(1000));
        assert_eq!(prof.completed_pairs(), 0);
        assert_eq!(report.ledger.traps, 0);
        assert_eq!(prof.end_censored.len(), 4, "4 registers still armed");
        assert_eq!(
            prof.evicted.len() as u64 + 4 + prof.dropped_samples + prof.duplicate_samples,
            report.ledger.samples,
        );
    }

    #[test]
    fn drop_new_policy_never_evicts() {
        let trace = Trace::from_addresses("str", (0..100_000u64).map(|i| i * 8));
        let cfg = fixed_period(1000)
            .with_replacement(ReplacementPolicy::DropNew)
            .with_max_armed_periods(0);
        let (prof, report) = run(&trace, cfg);
        assert!(prof.evicted.is_empty());
        assert_eq!(prof.dropped_samples, report.ledger.samples - 4);
    }

    #[test]
    fn aging_releases_cold_watchpoints() {
        // Streaming trace: without aging, the 4 registers fill and stay
        // stuck; with an age limit of 8 periods they recycle.
        let trace = Trace::from_addresses("str", (0..100_000u64).map(|i| i * 8));
        let cfg = fixed_period(1000)
            .with_replacement(ReplacementPolicy::DropNew)
            .with_max_armed_periods(8);
        let (prof, _) = run(&trace, cfg);
        assert!(
            prof.evicted.len() >= 4 * (100 / 8 - 2),
            "aging must recycle registers, got {} evictions",
            prof.evicted.len()
        );
        for &d in &prof.evicted {
            assert!(d > 8 * 1000, "evicted only beyond the age limit, got {d}");
        }
    }

    #[test]
    fn evict_random_policy_evicts() {
        let trace = Trace::from_addresses("str", (0..100_000u64).map(|i| i * 8));
        let cfg = fixed_period(1000).with_replacement(ReplacementPolicy::EvictRandom);
        let (prof, _) = run(&trace, cfg);
        assert!(!prof.evicted.is_empty());
    }

    #[test]
    fn duplicate_addresses_not_double_armed() {
        // constant address: every sample hits the same watch range
        let trace = Trace::from_addresses("one", std::iter::repeat_n(0x40u64, 50_000));
        let (prof, report) = run(&trace, fixed_period(100));
        assert!(prof.duplicate_samples > 0 || report.ledger.traps > 0);
        // immediate reuse: every completed pair has time 0
        for p in &prof.completed {
            assert_eq!(p.reuse_time, 0);
        }
    }

    #[test]
    fn eviction_durations_reasonable() {
        // streaming + FIFO: a watchpoint survives exactly 4 sampling gaps
        let trace = Trace::from_addresses("str", (0..100_000u64).map(|i| i * 8));
        let (prof, _) = run(
            &trace,
            fixed_period(1000).with_replacement(ReplacementPolicy::EvictOldest),
        );
        for &d in &prof.evicted {
            assert_eq!(d % 1000, 0, "durations are multiples of the fixed period");
            assert_eq!(d, 4000, "FIFO with 4 registers → evicted after 4 gaps");
        }
    }

    #[test]
    fn watch_width_controls_trap_granularity() {
        // accesses alternate between byte 0 and byte 4 of the same 8-byte
        // word; an 8-byte watch traps on both, a 4-byte watch only on the
        // sampled half... alternation: 0,4,0,4
        let addrs: Vec<u64> = (0..40_000u64).map(|i| (i % 2) * 4).collect();
        let trace = Trace::from_addresses("w", addrs);
        let wide = run(&trace, fixed_period(100)).0;
        let narrow = run(&trace, fixed_period(100).with_watch_width(4)).0;
        // wide watch: next access (other half-word) traps → reuse time 0
        assert!(wide.completed.iter().all(|p| p.reuse_time == 0));
        // narrow watch: traps only on the same half → reuse time 1
        assert!(narrow.completed.iter().all(|p| p.reuse_time == 1));
        assert!(!wide.completed.is_empty() && !narrow.completed.is_empty());
    }

    #[test]
    fn memory_accounting() {
        let trace = Trace::from_addresses("m", (0..50_000u64).map(|i| (i % 1000) * 8));
        let (prof, _) = run(&trace, fixed_period(100));
        assert!(prof.memory_bytes() > std::mem::size_of::<RdxProfiler>());
    }
}
