//! File-backed trace ingestion: RDXT inputs into the profiling engine.
//!
//! The profiler consumes [`AccessStream`]s; RDXT files on disk reach it
//! through this module. Two execution shapes, both chunk-capable so
//! `Machine::run`'s bulk-scan fast path applies either way:
//!
//! * **bulk** — a plain [`TraceReader`], whose chunk API bulk-decodes a
//!   bounded chunk of varints per refill on the consumer's thread;
//! * **pipelined** (the default) — a [`PipelinedReader`] that runs the
//!   same bulk decoder on a dedicated thread, so decoding the next chunk
//!   overlaps with profiling the current one.
//!
//! Headers are validated when an input is loaded ([`load_rdxt`]), so
//! stream construction on a batch worker cannot fail; record-level
//! corruption surfaces as the stream's parked [`TraceError`] after the
//! run, per the trace layer's chunk-granularity recovery contract.

use crate::batch::{profile_batch, BatchTask};
use crate::config::RdxConfig;
use crate::report::RdxProfile;
use crate::runner::RdxRunner;
use rdx_trace::{
    Access, AccessStream, KernelChoice, PipelineOptions, PipelinedReader, TraceError, TraceReader,
    DEFAULT_CHUNK_CAPACITY,
};
use std::fmt;
use std::path::{Path, PathBuf};

/// How file-backed profiling decodes its input.
#[derive(Debug, Clone, Copy)]
pub struct IngestOptions {
    /// Run the decoder on a dedicated thread ([`PipelinedReader`]);
    /// when `false`, decode on the consumer's thread in bulk chunks.
    pub pipelined: bool,
    /// Accesses per decoded chunk (default
    /// [`DEFAULT_CHUNK_CAPACITY`]).
    pub chunk_capacity: usize,
    /// Decode-ahead depth of the pipelined reader's buffer ring
    /// (ignored without `pipelined`; default 2 = double buffering).
    pub decode_ahead: usize,
    /// Which decode kernel the reader uses (default: auto, the
    /// cheapest available in the trace layer's capability table).
    pub decode_kernel: KernelChoice,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            pipelined: true,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            decode_ahead: 2,
            decode_kernel: KernelChoice::Auto,
        }
    }
}

impl IngestOptions {
    /// Sets whether decoding runs on a dedicated thread.
    #[must_use]
    pub fn with_pipelined(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Sets the accesses decoded per chunk.
    #[must_use]
    pub fn with_chunk_capacity(mut self, capacity: usize) -> Self {
        self.chunk_capacity = capacity;
        self
    }

    /// Sets the pipelined reader's decode-ahead depth.
    #[must_use]
    pub fn with_decode_ahead(mut self, depth: usize) -> Self {
        self.decode_ahead = depth;
        self
    }

    /// Selects the decode kernel (default: auto).
    #[must_use]
    pub fn with_decode_kernel(mut self, kernel: KernelChoice) -> Self {
        self.decode_kernel = kernel;
        self
    }
}

/// Why an RDXT input could not be loaded.
#[derive(Debug)]
pub enum IngestError {
    /// Reading the file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not a valid RDXT trace (bad header).
    Trace {
        /// The offending path.
        path: PathBuf,
        /// The underlying format error.
        source: TraceError,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            IngestError::Trace { path, source } => {
                write!(f, "{} is not a valid RDXT trace: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io { source, .. } => Some(source),
            IngestError::Trace { source, .. } => Some(source),
        }
    }
}

/// A loaded, header-validated RDXT input, ready to stream.
#[derive(Debug)]
pub struct RdxtInput {
    /// Display label: the trace's embedded name, or the file stem when
    /// the embedded name is empty.
    pub label: String,
    /// Record count declared by the header.
    pub declared: u64,
    reader: TraceReader,
}

impl RdxtInput {
    /// Wraps an already-loaded RDXT byte buffer, validating the header.
    ///
    /// `fallback_label` is used when the embedded trace name is empty.
    ///
    /// # Errors
    ///
    /// [`TraceError`] if the header is malformed.
    pub fn from_bytes(
        fallback_label: impl Into<String>,
        bytes: impl Into<bytes::Bytes>,
    ) -> Result<RdxtInput, TraceError> {
        let reader = TraceReader::new(bytes.into())?;
        let label = if reader.name().is_empty() {
            fallback_label.into()
        } else {
            reader.name().to_owned()
        };
        Ok(RdxtInput {
            label,
            declared: reader.declared_len(),
            reader,
        })
    }

    /// Turns the input into a profiler-ready stream.
    #[must_use]
    pub fn into_stream(self, opts: &IngestOptions) -> RdxtStream {
        let capacity = opts.chunk_capacity.max(1);
        let reader = self.reader.with_kernel(opts.decode_kernel);
        if opts.pipelined {
            let popts = PipelineOptions::default()
                .with_chunk_capacity(capacity)
                .with_depth(opts.decode_ahead);
            RdxtStream::Pipelined(PipelinedReader::with_options(reader, popts))
        } else {
            RdxtStream::Bulk(reader.with_chunk_capacity(capacity))
        }
    }
}

/// Loads and header-validates an RDXT file.
///
/// # Errors
///
/// [`IngestError`] when the file cannot be read or is not a valid RDXT
/// trace.
pub fn load_rdxt(path: impl AsRef<Path>) -> Result<RdxtInput, IngestError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|source| IngestError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    RdxtInput::from_bytes(stem, bytes).map_err(|source| IngestError::Trace {
        path: path.to_path_buf(),
        source,
    })
}

/// A file-backed access stream: bulk-decoding reader or its pipelined
/// (decode-ahead thread) variant. Both are chunk-capable.
#[derive(Debug)]
pub enum RdxtStream {
    /// Decode on the consumer's thread, one bulk chunk per refill.
    Bulk(TraceReader),
    /// Decode ahead on a dedicated thread.
    Pipelined(PipelinedReader),
}

impl RdxtStream {
    /// The trace's embedded name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            RdxtStream::Bulk(r) => r.name(),
            RdxtStream::Pipelined(r) => r.name(),
        }
    }

    /// The record count declared in the trace header.
    #[must_use]
    pub fn declared_len(&self) -> u64 {
        match self {
            RdxtStream::Bulk(r) => r.declared_len(),
            RdxtStream::Pipelined(r) => r.declared_len(),
        }
    }

    /// Verifies the input decoded cleanly and exactly (all declared
    /// records, no trailing bytes). For the pipelined variant this
    /// drains the decoder first.
    ///
    /// # Errors
    ///
    /// The [`TraceError`] the decode ended with, if any.
    pub fn finish(self) -> Result<(), TraceError> {
        match self {
            RdxtStream::Bulk(r) => r.finish(),
            RdxtStream::Pipelined(r) => r.finish(),
        }
    }
}

impl AccessStream for RdxtStream {
    fn next_access(&mut self) -> Option<Access> {
        match self {
            RdxtStream::Bulk(r) => r.next_access(),
            RdxtStream::Pipelined(r) => r.next_access(),
        }
    }

    fn remaining_hint(&self) -> Option<u64> {
        match self {
            RdxtStream::Bulk(r) => r.remaining_hint(),
            RdxtStream::Pipelined(r) => r.remaining_hint(),
        }
    }

    fn chunk_capable(&self) -> bool {
        true
    }

    fn next_chunk(&mut self) -> Option<&[Access]> {
        match self {
            RdxtStream::Bulk(r) => r.next_chunk(),
            RdxtStream::Pipelined(r) => r.next_chunk(),
        }
    }

    fn consume_chunk(&mut self, n: usize) {
        match self {
            RdxtStream::Bulk(r) => r.consume_chunk(n),
            RdxtStream::Pipelined(r) => r.consume_chunk(n),
        }
    }
}

/// One file's profile out of [`profile_rdxt_batch`].
#[derive(Debug)]
pub struct RdxtReport {
    /// Display label of the input (embedded name or file stem).
    pub label: String,
    /// Record count the header declared.
    pub declared: u64,
    /// The profile measured over the decodable prefix.
    pub profile: RdxProfile,
}

impl RdxtReport {
    /// True when fewer accesses were profiled than the header declared —
    /// the input was truncated or corrupt past some point.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.profile.accesses != self.declared
    }
}

impl RdxRunner {
    /// Profiles one RDXT input end to end and reports both the profile
    /// and the decode verdict (clean / truncated / trailing data).
    pub fn profile_rdxt(
        &self,
        input: RdxtInput,
        opts: &IngestOptions,
    ) -> (RdxProfile, Result<(), TraceError>) {
        let mut stream = input.into_stream(opts);
        let profile = self.profile(&mut stream);
        (profile, stream.finish())
    }
}

/// Profiles a set of RDXT inputs in parallel on at most `jobs` threads
/// (via [`profile_batch`]: results in input order, worker panics
/// re-raised in task order).
///
/// Decode errors do not panic a task: each profile covers the decodable
/// prefix of its input, and [`RdxtReport::truncated`] flags inputs that
/// fell short of their declared record count.
#[must_use]
pub fn profile_rdxt_batch(
    config: RdxConfig,
    inputs: Vec<RdxtInput>,
    opts: &IngestOptions,
    jobs: usize,
) -> Vec<RdxtReport> {
    let mut labels = Vec::with_capacity(inputs.len());
    let opts = *opts;
    let tasks: Vec<BatchTask<_>> = inputs
        .into_iter()
        .map(|input| {
            labels.push((input.label.clone(), input.declared));
            BatchTask {
                config,
                make_stream: move || input.into_stream(&opts),
            }
        })
        .collect();
    let profiles = profile_batch(tasks, jobs);
    labels
        .into_iter()
        .zip(profiles)
        .map(|((label, declared), profile)| RdxtReport {
            label,
            declared,
            profile,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::{io, Trace};

    fn sample_bytes(name: &str, n: u64) -> Vec<u8> {
        let t = Trace::from_stream(
            name,
            Trace::from_addresses(name, (0..n).map(|i| (i % 257) * 64)).stream(),
        );
        io::to_bytes(&t).to_vec()
    }

    fn both_opts() -> [IngestOptions; 2] {
        [
            IngestOptions::default().with_chunk_capacity(1024),
            IngestOptions::default()
                .with_pipelined(false)
                .with_chunk_capacity(1024),
        ]
    }

    #[test]
    fn file_profile_matches_in_memory_both_paths() {
        let t = Trace::from_addresses("m", (0..60_000u64).map(|i| (i % 511) * 64));
        let raw = io::to_bytes(&t);
        let runner = RdxRunner::new(RdxConfig::default().with_period(512).with_seed(3));
        let want = runner.profile(t.stream());
        for opts in both_opts() {
            let input = RdxtInput::from_bytes("m", raw.clone()).expect("valid");
            let (profile, verdict) = runner.profile_rdxt(input, &opts);
            assert!(verdict.is_ok(), "pipelined={}", opts.pipelined);
            assert_eq!(profile.rd, want.rd, "pipelined={}", opts.pipelined);
            assert_eq!(profile.rt, want.rt);
            assert_eq!(profile.samples, want.samples);
            assert_eq!(profile.traps, want.traps);
            assert_eq!(profile.accesses, want.accesses);
        }
    }

    #[test]
    fn truncated_file_profiles_prefix_and_reports() {
        let mut raw = sample_bytes("cut", 30_000);
        raw.truncate(raw.len() - 11);
        for opts in both_opts() {
            let input = RdxtInput::from_bytes("cut", raw.clone()).expect("header intact");
            let declared = input.declared;
            let runner = RdxRunner::new(RdxConfig::default().with_period(256));
            let (profile, verdict) = runner.profile_rdxt(input, &opts);
            assert!(profile.accesses < declared);
            assert!(
                matches!(verdict, Err(TraceError::Truncated)),
                "pipelined={}",
                opts.pipelined
            );
        }
    }

    #[test]
    fn batch_over_files_matches_sequential() {
        let config = RdxConfig::default().with_period(512).with_seed(9);
        let runner = RdxRunner::new(config);
        let raws: Vec<(String, Vec<u8>)> = (0..4u64)
            .map(|k| {
                (
                    format!("w{k}"),
                    sample_bytes(&format!("w{k}"), 20_000 + 1000 * k),
                )
            })
            .collect();
        let sequential: Vec<RdxProfile> = raws
            .iter()
            .map(|(label, raw)| {
                let input = RdxtInput::from_bytes(label.clone(), raw.clone()).expect("valid");
                runner.profile_rdxt(input, &IngestOptions::default()).0
            })
            .collect();
        let inputs: Vec<RdxtInput> = raws
            .iter()
            .map(|(label, raw)| RdxtInput::from_bytes(label.clone(), raw.clone()).expect("valid"))
            .collect();
        let reports = profile_rdxt_batch(config, inputs, &IngestOptions::default(), 4);
        assert_eq!(reports.len(), 4);
        for (report, want) in reports.iter().zip(&sequential) {
            assert!(!report.truncated());
            assert_eq!(report.profile.rd, want.rd);
            assert_eq!(report.profile.samples, want.samples);
        }
    }

    #[test]
    fn batch_flags_truncated_inputs() {
        let good = sample_bytes("good", 10_000);
        let mut bad = sample_bytes("bad", 10_000);
        bad.truncate(bad.len() - 20);
        let inputs = vec![
            RdxtInput::from_bytes("good", good).expect("valid"),
            RdxtInput::from_bytes("bad", bad).expect("header intact"),
        ];
        let reports = profile_rdxt_batch(
            RdxConfig::default().with_period(128),
            inputs,
            &IngestOptions::default(),
            2,
        );
        assert!(!reports[0].truncated());
        assert!(reports[1].truncated());
    }

    #[test]
    fn load_rdxt_reports_missing_file_and_bad_header() {
        let err = load_rdxt("/nonexistent/definitely-missing.rdxt").unwrap_err();
        assert!(matches!(err, IngestError::Io { .. }), "{err}");
        let dir = std::env::temp_dir().join("rdx-ingest-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let bad = dir.join("not-a-trace.rdxt");
        std::fs::write(&bad, b"definitely not RDXT").expect("write");
        let err = load_rdxt(&bad).unwrap_err();
        assert!(matches!(
            err,
            IngestError::Trace {
                source: TraceError::BadMagic,
                ..
            }
        ));
        let good = dir.join("roundtrip.rdxt");
        std::fs::write(&good, sample_bytes("roundtrip", 1000)).expect("write");
        let input = load_rdxt(&good).expect("valid trace file");
        assert_eq!(input.label, "roundtrip");
        assert_eq!(input.declared, 1000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_embedded_name_falls_back_to_label() {
        let t: Trace = (0..100u64).map(|i| (i * 64, false)).collect(); // name ""
        let input = RdxtInput::from_bytes("fallback", io::to_bytes(&t)).expect("valid");
        assert_eq!(input.label, "fallback");
    }
}
