//! Reuse-time → reuse-distance conversion via sampled footprints.
//!
//! The conversion rests on the working-set identity (Denning's law, also
//! derivable from Xiang et al.'s footprint theory): the average number of
//! distinct blocks in a window of `w` consecutive accesses is
//!
//! ```text
//! fp(w) = Σ_{j=0}^{w−1} P(reuse interval > j)
//! ```
//!
//! where the reuse interval of an access is the index difference to the
//! *next* access of the same block (∞ for last touches). The profiler's
//! corrected sample distribution estimates exactly that survival function
//! `S(j)`, so the curve needs **no** separate estimate of the distinct
//! block count — sanity-check the identity on the classics:
//!
//! * pure cycle over `k` blocks: `S(j) = 1` for `j < k` ⇒ `fp(w) = w` ✓
//! * uniform random over `N` blocks: `S(j) = (1−1/N)^j` ⇒
//!   `fp(w) = N(1−(1−1/N)^w)`, the textbook distinct-count formula ✓
//!
//! The reuse distance of a pair with reuse time `t` (intervening-access
//! convention) is then `d = fp(t+1) − 1`, HOTL's stack-distance relation
//! shifted between conventions.

use rdx_histogram::ReuseDistance;

/// A footprint curve estimated from weighted sampled reuse intervals.
///
/// Piecewise linear with breakpoints at the observed interval lengths;
/// queries cost one binary search.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedFootprint {
    n: u64,
    /// Total interval mass (one interval per access; cold = ∞).
    total: f64,
    /// Breakpoints: sorted unique interval lengths (index-difference
    /// convention), with `bps[0] = 0` sentinel.
    bps: Vec<u64>,
    /// `fp` value at each breakpoint (`fp(bps[i])`).
    fp_at: Vec<f64>,
    /// Survival S(j) for `j ∈ [bps[i], bps[i+1])`.
    surv: Vec<f64>,
}

impl WeightedFootprint {
    /// Builds the estimated footprint curve.
    ///
    /// * `n` — total accesses in the run (known exactly from the PMU).
    /// * `cold_weight` — estimated number of accesses with no further
    ///   reuse (infinite intervals); together with the pairs this should
    ///   total ≈ `n`.
    /// * `reuse_intervals` — `(reuse_time, weight)` pairs in the
    ///   *intervening-accesses* convention, scaled to full-trace counts.
    #[must_use]
    pub fn from_sampled(n: u64, cold_weight: f64, reuse_intervals: &[(u64, f64)]) -> Self {
        Self::from_sampled_iter(n, cold_weight, reuse_intervals.iter().copied())
    }

    /// Iterator-driven form of [`from_sampled`](Self::from_sampled),
    /// for callers that derive the scaled pairs on the fly (the runner
    /// scales raw IPCW weights without materializing an intermediate
    /// vector). Weight arithmetic is performed in encounter order, so a
    /// slice and an iterator over the same pairs build bit-identical
    /// curves.
    #[must_use]
    pub fn from_sampled_iter(
        n: u64,
        cold_weight: f64,
        reuse_intervals: impl IntoIterator<Item = (u64, f64)>,
    ) -> Self {
        // Aggregate weights per index-difference length ℓ = t + 1.
        let mut by_len: Vec<(u64, f64)> = reuse_intervals
            .into_iter()
            .filter(|&(_, w)| w > 0.0)
            .map(|(t, w)| (t + 1, w))
            .collect();
        by_len.sort_unstable_by_key(|&(l, _)| l);
        let finite: f64 = by_len.iter().map(|&(_, w)| w).sum();
        let total = (finite + cold_weight.max(0.0)).max(f64::MIN_POSITIVE);

        // Walk lengths in order, maintaining survival and the running fp
        // integral Σ S(j).
        let mut bps = vec![0u64];
        let mut fp_at = vec![0.0f64];
        let mut surv = Vec::new();
        let mut remaining = total; // mass with interval length > current j
        let mut s = remaining / total; // = 1.0
        let mut i = 0;
        while i < by_len.len() {
            let l = by_len[i].0;
            // fp grows linearly with slope `s` from the previous breakpoint
            let prev_bp = *bps.last().expect("sentinel present");
            let prev_fp = *fp_at.last().expect("sentinel present");
            surv.push(s);
            bps.push(l);
            fp_at.push(prev_fp + s * (l - prev_bp) as f64);
            // all intervals of length exactly l stop surviving at j = l
            while i < by_len.len() && by_len[i].0 == l {
                remaining -= by_len[i].1;
                i += 1;
            }
            s = (remaining / total).max(0.0);
        }
        // beyond the last breakpoint the survivors are the cold mass
        surv.push(s);
        WeightedFootprint {
            n,
            total,
            bps,
            fp_at,
            surv,
        }
    }

    /// Estimated average distinct blocks in a window of `w` accesses.
    /// Monotone and concave in `w` by construction.
    #[must_use]
    pub fn fp(&self, w: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let w = w.min(self.n);
        // find the last breakpoint ≤ w
        let i = self.bps.partition_point(|&b| b <= w) - 1;
        self.fp_at[i] + self.surv[i] * (w - self.bps[i]) as f64
    }

    /// Converts one sampled reuse time (intervening convention) to an
    /// estimated reuse distance: `d = fp(t+1) − 1`, clamped at 0.
    #[must_use]
    pub fn distance_of(&self, reuse_time: u64) -> ReuseDistance {
        let d = (self.fp(reuse_time + 1) - 1.0).max(0.0);
        ReuseDistance::finite(d.round() as u64)
    }

    /// The curve's saturation estimate: `fp` at the last observed interval
    /// length (distinct blocks seen within the observable horizon).
    #[must_use]
    pub fn m_estimate(&self) -> f64 {
        *self.fp_at.last().expect("sentinel present")
    }

    /// Approximate heap bytes held by the curve (overhead accounting).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.bps.capacity() * std::mem::size_of::<u64>()
            + (self.fp_at.capacity() + self.surv.capacity()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Intervals of a cyclic trace over k blocks, length n: every reuse
    /// interval is k (index difference), n−k pairs, k cold.
    fn cyclic(n: u64, k: u64) -> WeightedFootprint {
        WeightedFootprint::from_sampled(n, k as f64, &[(k - 1, (n - k) as f64)])
    }

    #[test]
    fn cyclic_trace_recovers_distance() {
        let fp = cyclic(10_000, 100);
        // fp(w) = w up to the cycle length
        for w in [1u64, 50, 100] {
            assert!((fp.fp(w) - w as f64).abs() < 0.2, "fp({w}) = {}", fp.fp(w));
        }
        // reuse time 99 (intervening) → distance 99 in a pure cycle
        assert_eq!(fp.distance_of(99).value().unwrap(), 99);
    }

    #[test]
    fn immediate_reuse_distance_zero() {
        let fp = WeightedFootprint::from_sampled(1000, 1.0, &[(0, 999.0)]);
        assert_eq!(fp.distance_of(0).value().unwrap(), 0);
    }

    #[test]
    fn uniform_random_matches_textbook_formula() {
        // geometric reuse intervals over N blocks: S(j) = (1−1/N)^j.
        let n = 1_000_000u64;
        let big_n = 256.0f64;
        let mut intervals = Vec::new();
        let mut mass_left = n as f64;
        for t in 0u64..6000 {
            let p = (1.0 / big_n) * (1.0 - 1.0 / big_n).powi(t as i32);
            let w = n as f64 * p;
            intervals.push((t, w));
            mass_left -= w;
        }
        let fp = WeightedFootprint::from_sampled(n, mass_left.max(0.0), &intervals);
        for w in [1u64, 10, 100, 256, 1000] {
            let expect = big_n * (1.0 - (1.0 - 1.0 / big_n).powi(w as i32));
            let got = fp.fp(w);
            assert!(
                (got - expect).abs() < 0.05 * expect + 0.5,
                "fp({w}) = {got}, textbook {expect}"
            );
        }
    }

    #[test]
    fn fp_monotone_and_concave() {
        let fp = WeightedFootprint::from_sampled(
            100_000,
            500.0,
            &[
                (0, 40_000.0),
                (10, 30_000.0),
                (500, 20_000.0),
                (5_000, 9_500.0),
            ],
        );
        let mut last = 0.0;
        let mut last_slope = f64::INFINITY;
        let probes = [0u64, 1, 2, 5, 10, 100, 1000, 10_000, 100_000];
        for win in probes.windows(2) {
            let (a, b) = (win[0], win[1]);
            let (fa, fb) = (fp.fp(a), fp.fp(b));
            assert!(fb >= fa - 1e-9, "monotone");
            let slope = (fb - fa) / (b - a) as f64;
            assert!(slope <= last_slope + 1e-9, "concave");
            last_slope = slope;
            last = fb;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn fp_zero_window_is_zero() {
        let fp = cyclic(1000, 10);
        assert_eq!(fp.fp(0), 0.0);
    }

    #[test]
    fn cold_mass_keeps_fp_growing() {
        // with substantial cold mass, longer windows keep meeting new
        // blocks: slope approaches cold fraction
        let fp = WeightedFootprint::from_sampled(1000, 500.0, &[(0, 500.0)]);
        let s = (fp.fp(200) - fp.fp(100)) / 100.0;
        assert!((s - 0.5).abs() < 1e-9, "tail slope {s} = cold fraction");
    }

    #[test]
    fn empty_inputs() {
        let fp = WeightedFootprint::from_sampled(0, 0.0, &[]);
        assert_eq!(fp.fp(0), 0.0);
        assert_eq!(fp.fp(100), 0.0);
        let fp2 = WeightedFootprint::from_sampled(100, 5.0, &[]);
        assert!(fp2.fp(100) > 0.0, "cold mass alone still yields a curve");
    }

    #[test]
    fn zero_weight_intervals_ignored() {
        let a = WeightedFootprint::from_sampled(1000, 10.0, &[(5, 0.0), (7, 100.0)]);
        let b = WeightedFootprint::from_sampled(1000, 10.0, &[(7, 100.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn distance_monotone_in_reuse_time() {
        let fp = WeightedFootprint::from_sampled(
            50_000,
            100.0,
            &[(1, 20_000.0), (50, 20_000.0), (2_000, 9_900.0)],
        );
        let mut last = 0;
        for t in [0u64, 1, 10, 100, 1000, 10_000] {
            let d = fp.distance_of(t).value().unwrap();
            assert!(d >= last, "distance must be monotone in time");
            last = d;
        }
    }
}
