//! RDX: featherlight reuse-distance measurement.
//!
//! This crate implements the paper's contribution: a profiler that produces
//! reuse-*distance* histograms **without any instrumentation**, by combining
//! two commodity hardware facilities (modeled by [`memsim`]):
//!
//! 1. **PMU sampling** picks a memory access every ~`period` accesses and
//!    reports its precise effective address.
//! 2. A **hardware debug register** is armed on that address; the next
//!    access to it traps, and the PMU counter difference between arm and
//!    trap yields the pair's reuse *time* (number of intervening accesses).
//!
//! Reuse time is not reuse distance — it counts duplicates. The conversion
//! goes through *footprint theory* (Xiang et al.): the average number of
//! distinct blocks in a window of `w` accesses, `fp(w)`, is computable from
//! the sampled reuse-time distribution, and the reuse distance of a pair
//! with reuse time `t` is estimated as `fp(t+1) − 1` (the `+1`/`−1` move
//! between the index-difference and distinct-blocks-between conventions).
//!
//! Two practical obstacles shape the implementation, exactly as they shape
//! the paper's design:
//!
//! * **Register scarcity.** x86 has four debug registers. When a new sample
//!   arrives with all registers armed, a [`ReplacementPolicy`] evicts one;
//!   the evicted (censored) interval is fed to a Kaplan–Meier-style
//!   inverse-probability-of-censoring correction ([`km`]) so that long reuse
//!   intervals are not silently under-represented.
//! * **Cold accesses.** A sampled access that never traps before the end of
//!   the run is (statistically) a last access to its block; the fraction of
//!   such samples estimates the distinct-block count `m`, which anchors both
//!   the cold bucket of the histogram and the footprint curve.
//!
//! # Example
//!
//! ```
//! use rdx_core::{RdxConfig, RdxRunner};
//! use rdx_trace::Trace;
//!
//! // A loop over 100 blocks: every reuse has distance 99.
//! let trace = Trace::from_addresses("loop", (0..100_000u64).map(|i| (i % 100) * 8));
//! let config = RdxConfig::default().with_period(256);
//! let profile = RdxRunner::new(config).profile(trace.stream());
//! assert!(profile.samples > 100);
//! // The estimated mean distance lands near 99.
//! let mean = profile.rd.as_histogram().finite_mean().unwrap();
//! assert!((60.0..160.0).contains(&mean), "mean {mean}");
//! ```

// The AVX2 merge kernel needs core::arch intrinsics, so this crate can
// only *deny* unsafe code, not forbid it: `kernels.rs` re-allows it for
// exactly that module, and the unsafe-confinement lint pins every
// `unsafe` token in the workspace to the allowlisted kernel files.
// rdx-lint-allow: forbid-unsafe — arch intrinsics confined to kernels.rs
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod budget;
mod config;
pub mod convert;
pub mod ingest;
pub mod kernels;
pub mod km;
pub mod limits;
mod merge;
mod profiler;
mod report;
mod runner;
mod windows;
mod wire;

pub use batch::{default_jobs, profile_batch, BatchTask};
pub use config::{CensoringCorrection, ConversionMethod, RdxConfig, ReplacementPolicy};
pub use convert::WeightedFootprint;
pub use ingest::{
    load_rdxt, profile_rdxt_batch, IngestError, IngestOptions, RdxtInput, RdxtReport, RdxtStream,
};
pub use kernels::{
    merge_kernel, merge_kernels, resolve_merge, KernelChoice, KernelEntry, KernelKind, MergeKernel,
};
pub use limits::LimitError;
pub use merge::{merge_batch, merge_batch_with, merge_histogram_batch, MergeError};
pub use profiler::RdxProfiler;
pub use report::RdxProfile;
pub use runner::RdxRunner;
pub use windows::WindowedProfile;
pub use wire::{decode_profile, encode_profile, WireError, RDXP_VERSION};
