//! Fleet aggregation: the profile monoid and its parallel tree
//! reduction.
//!
//! [`RdxProfile`] forms a commutative monoid under merge: histograms
//! add bucket-wise, counters (samples, traps, evictions, censoring
//! metadata) add, `m_estimate` adds (the distinct-block estimate of a
//! union of disjoint shards is the sum of the shard estimates — the
//! property the `ShardedExact` golden test pins), and the identity is
//! [`RdxProfile::empty_like`]. Reuse-*time* histograms merged before
//! footprint conversion are provably exact, so this is the safe level
//! to aggregate at; `time_overhead` is a *ratio*, not a sum, and is
//! recomputed from the merged event counts at the end of every
//! reduction (the same [`CostLedger`] formula the runner uses, so
//! merging with the identity is bit-invisible).
//!
//! **Determinism.** `f64` addition is not associative, so the reduction
//! shape must not depend on the job count. [`merge_batch`] always uses
//! the same fixed shape: consecutive groups of [`LEAF`] profiles are
//! accumulated by one multi-source kernel call each (this is where the
//! SIMD wide-add pays off — the destination block stays in registers
//! across all sources), then the group results are combined by a
//! pairwise binary tree `((G0⊕G1)⊕(G2⊕G3))⊕…` on the caller's thread.
//! Only the *leaf* work is parallel (claimed from a shared cursor, the
//! PR-1 batch-pool idiom), and each leaf's result is a pure function of
//! its own group — so the merged profile is bit-identical at every job
//! count and under every kernel (the kernels share a per-bucket
//! source-order add contract; see [`crate::kernels`]).

use crate::batch::dispatch;
use crate::kernels::{resolve_merge, run_merge, KernelChoice, KernelKind};
use crate::report::RdxProfile;
use memsim::cost::CostLedger;
use parking_lot::Mutex;
use rdx_histogram::{BinningMismatch, Histogram, RdHistogram, RtHistogram};
use rdx_trace::Granularity;
use std::fmt;

/// Profiles accumulated per reduction leaf by one multi-source kernel
/// call. Part of the deterministic reduction shape: changing it changes
/// merged bits, so it is a constant, never a tunable.
const LEAF: usize = 8;

/// Typed failure of a profile merge: the inputs are not aggregatable.
///
/// Every variant is recoverable — `rdx merge` reports it and exits
/// cleanly rather than panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MergeError {
    /// Reuse-distance histograms disagree on binning.
    RdBinning(BinningMismatch),
    /// Reuse-time histograms disagree on binning.
    RtBinning(BinningMismatch),
    /// Profiles were taken at different granularities.
    Granularity {
        /// Granularity of the first profile.
        left: Granularity,
        /// Granularity of the offending profile.
        right: Granularity,
    },
    /// Profiles carry different cost models, so overhead ratios would
    /// not be comparable after merging.
    CostModel,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::RdBinning(e) => write!(f, "reuse-distance {e}"),
            MergeError::RtBinning(e) => write!(f, "reuse-time {e}"),
            MergeError::Granularity { left, right } => {
                write!(f, "profile granularities differ: {left} vs {right}")
            }
            MergeError::CostModel => write!(f, "profile cost models differ"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Checks that `b` can be merged into `a`.
fn check_compatible(a: &RdxProfile, b: &RdxProfile) -> Result<(), MergeError> {
    let (ra, rb) = (a.rd.as_histogram().binning(), b.rd.as_histogram().binning());
    if ra != rb {
        return Err(MergeError::RdBinning(BinningMismatch {
            left: ra,
            right: rb,
        }));
    }
    let (ta, tb) = (a.rt.as_histogram().binning(), b.rt.as_histogram().binning());
    if ta != tb {
        return Err(MergeError::RtBinning(BinningMismatch {
            left: ta,
            right: tb,
        }));
    }
    if a.granularity != b.granularity {
        return Err(MergeError::Granularity {
            left: a.granularity,
            right: b.granularity,
        });
    }
    if a.cost != b.cost {
        return Err(MergeError::CostModel);
    }
    Ok(())
}

/// Adds every source row into `dst` with the resolved kernel,
/// preserving exact pairwise-merge semantics for ragged widths.
///
/// Sources shorter than a bucket index contribute nothing there (just
/// like chained [`Histogram::merge`] calls), so rows are *not* padded:
/// the bucket range is cut at each distinct source width and the kernel
/// runs once per segment over the sources that reach it, in source
/// order — the common equal-width case is a single full-width call.
fn accumulate_rows(kind: KernelKind, dst: &mut Vec<f64>, rows: &[&[f64]]) {
    let max = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    if dst.len() < max {
        dst.resize(max, 0.0);
    }
    let mut bounds: Vec<usize> = rows.iter().map(|r| r.len()).filter(|&l| l > 0).collect();
    bounds.sort_unstable();
    bounds.dedup();
    let mut segment: Vec<&[f64]> = Vec::with_capacity(rows.len());
    let mut lo = 0usize;
    for &hi in &bounds {
        segment.clear();
        segment.extend(rows.iter().filter(|r| r.len() >= hi).map(|r| &r[lo..hi]));
        run_merge(kind, &mut dst[lo..hi], &segment);
        lo = hi;
    }
}

/// Merges `srcs` into `dst` (histogram level): buckets via the kernel,
/// infinite weight and observations folded in source order.
fn accumulate_hist(kind: KernelKind, dst: Histogram, srcs: &[&Histogram]) -> Histogram {
    let (binning, mut buckets, mut infinite, mut observations) = dst.into_parts();
    let rows: Vec<&[f64]> = srcs.iter().map(|h| h.weights()).collect();
    accumulate_rows(kind, &mut buckets, &rows);
    for h in srcs {
        infinite += h.infinite_weight();
        observations = observations.saturating_add(h.observations());
    }
    Histogram::from_parts(binning, buckets, infinite, observations)
}

/// Merges every profile of `srcs` into `dst` (already validated as
/// compatible). `time_overhead` is left stale here; the reduction
/// recomputes it once at the end.
fn merge_group(dst: &mut RdxProfile, srcs: &[RdxProfile], kind: KernelKind) {
    let rd_binning = dst.rd.as_histogram().binning();
    let rt_binning = dst.rt.as_histogram().binning();
    let rd = std::mem::replace(&mut dst.rd, RdHistogram::new(rd_binning)).into_histogram();
    let rt = std::mem::replace(&mut dst.rt, RtHistogram::new(rt_binning)).into_histogram();
    let rd_rows: Vec<&Histogram> = srcs.iter().map(|p| p.rd.as_histogram()).collect();
    let rt_rows: Vec<&Histogram> = srcs.iter().map(|p| p.rt.as_histogram()).collect();
    dst.rd = RdHistogram::from(accumulate_hist(kind, rd, &rd_rows));
    dst.rt = RtHistogram::from(accumulate_hist(kind, rt, &rt_rows));
    for p in srcs {
        dst.accesses = dst.accesses.saturating_add(p.accesses);
        dst.samples = dst.samples.saturating_add(p.samples);
        dst.traps = dst.traps.saturating_add(p.traps);
        dst.evictions = dst.evictions.saturating_add(p.evictions);
        dst.end_censored = dst.end_censored.saturating_add(p.end_censored);
        dst.dropped_samples = dst.dropped_samples.saturating_add(p.dropped_samples);
        dst.duplicate_samples = dst.duplicate_samples.saturating_add(p.duplicate_samples);
        dst.profiler_bytes = dst.profiler_bytes.saturating_add(p.profiler_bytes);
        dst.m_estimate += p.m_estimate;
    }
}

/// Reduces `items` with the fixed leaf-group + pairwise-tree shape.
///
/// `reduce(first, rest)` must fold `rest` into `first` and return it;
/// the shape (and therefore every intermediate operand sequence)
/// depends only on `items.len()`, never on `jobs`.
fn tree_reduce<T, R>(items: Vec<T>, jobs: usize, reduce: R) -> Option<T>
where
    T: Send,
    R: Fn(T, &[T]) -> T + Sync,
{
    let mut groups: Vec<Vec<T>> = Vec::with_capacity(items.len().div_ceil(LEAF));
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(LEAF).collect();
        if chunk.is_empty() {
            break;
        }
        groups.push(chunk);
    }
    let jobs = jobs.clamp(1, groups.len().max(1));
    let mut level: Vec<T> = if jobs == 1 || groups.len() == 1 {
        groups
            .into_iter()
            .filter_map(|g| reduce_group(g, &reduce))
            .collect()
    } else {
        // The PR-1 dispatch idiom: a shared claim cursor hands each
        // leaf to exactly one worker; results land in per-leaf slots,
        // so leaf order (and thus the tree's operand order) is
        // preserved no matter how workers interleave.
        let slots: Vec<Mutex<Option<Vec<T>>>> =
            groups.into_iter().map(|g| Mutex::new(Some(g))).collect();
        let out: Vec<Mutex<Option<T>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
        let claims = dispatch::Claims::new(slots.len());
        let scope_result = crossbeam::scope(|scope| {
            for _ in 0..jobs {
                let (slots, out, claims, reduce) = (&slots, &out, &claims, &reduce);
                scope.spawn(move |_| {
                    while let Some(i) = claims.next() {
                        if let Some(group) = slots[i].lock().take() {
                            if let Some(merged) = reduce_group(group, reduce) {
                                *out[i].lock() = Some(merged);
                            }
                        }
                    }
                });
            }
        });
        if let Err(payload) = scope_result {
            std::panic::resume_unwind(payload);
        }
        out.into_iter().filter_map(Mutex::into_inner).collect()
    };
    // Fixed pairwise binary tree ((G0⊕G1)⊕(G2⊕G3))⊕…, sequential on
    // the caller's thread: log₂(leaves) levels of cheap pair merges.
    while level.len() > 1 {
        let mut next: Vec<T> = Vec::with_capacity(level.len().div_ceil(2));
        let mut pairs = level.into_iter();
        while let Some(a) = pairs.next() {
            match pairs.next() {
                Some(b) => next.push(reduce(a, &[b])),
                None => next.push(a),
            }
        }
        level = next;
    }
    level.pop()
}

fn reduce_group<T>(mut group: Vec<T>, reduce: &impl Fn(T, &[T]) -> T) -> Option<T> {
    if group.is_empty() {
        return None;
    }
    let rest = group.split_off(1);
    let first = group.pop()?;
    Some(reduce(first, &rest))
}

/// Recomputes the ratio metadata that does not add under merge: the
/// time overhead of the aggregate is the ledger formula over the merged
/// event counts — exactly how the runner computed it for each input, so
/// canonical profiles survive a merge with the identity bit-for-bit.
fn finalize(mut p: RdxProfile) -> RdxProfile {
    let ledger = CostLedger {
        accesses: p.accesses,
        samples: p.samples,
        traps: p.traps,
        arms: 0,
    };
    p.time_overhead = ledger.time_overhead(&p.cost);
    p
}

/// Merges a batch of profiles into one fleet profile with the
/// auto-resolved kernel. See [`merge_batch_with`].
///
/// # Errors
///
/// Returns a [`MergeError`] if any profile is incompatible with the
/// first (binning, granularity, or cost model).
pub fn merge_batch(
    profiles: Vec<RdxProfile>,
    jobs: usize,
) -> Result<Option<RdxProfile>, MergeError> {
    merge_batch_with(profiles, jobs, KernelChoice::Auto)
}

/// Merges a batch of profiles into one fleet profile.
///
/// Returns `Ok(None)` for an empty batch. The reduction shape is fixed
/// (see the module docs), so the result is bit-identical for every
/// `jobs` value and every kernel choice; `jobs` only controls how many
/// worker threads reduce the leaf groups.
///
/// # Errors
///
/// Returns a [`MergeError`] if any profile is incompatible with the
/// first (binning, granularity, or cost model). Compatibility is
/// validated up front — on error no work has been done.
pub fn merge_batch_with(
    profiles: Vec<RdxProfile>,
    jobs: usize,
    choice: KernelChoice,
) -> Result<Option<RdxProfile>, MergeError> {
    let Some(first) = profiles.first() else {
        return Ok(None);
    };
    for p in &profiles[1..] {
        check_compatible(first, p)?;
    }
    let kind = resolve_merge(choice);
    rdx_metrics::counter("rdx.merge.batches").add(1);
    rdx_metrics::counter("rdx.merge.profiles").add(profiles.len() as u64);
    let merged = tree_reduce(profiles, jobs, |mut dst, srcs| {
        merge_group(&mut dst, srcs, kind);
        dst
    });
    Ok(merged.map(finalize))
}

/// Merges a batch of raw histograms into one, using the same fixed
/// reduction shape (and kernel dispatch) as [`merge_batch_with`].
///
/// This is the reuse-time aggregation primitive: per-shard RT
/// histograms merged here and *then* converted to reuse distance are
/// provably exact, which the `ShardedExact` golden test exercises.
/// Returns `Ok(None)` for an empty batch.
///
/// # Errors
///
/// Returns [`BinningMismatch`] if any histogram's binning differs from
/// the first's.
pub fn merge_histogram_batch(
    histograms: Vec<Histogram>,
    jobs: usize,
    choice: KernelChoice,
) -> Result<Option<Histogram>, BinningMismatch> {
    let Some(first) = histograms.first() else {
        return Ok(None);
    };
    let binning = first.binning();
    for h in &histograms[1..] {
        if h.binning() != binning {
            return Err(BinningMismatch {
                left: binning,
                right: h.binning(),
            });
        }
    }
    let kind = resolve_merge(choice);
    rdx_metrics::counter("rdx.merge.batches").add(1);
    rdx_metrics::counter("rdx.merge.profiles").add(histograms.len() as u64);
    Ok(tree_reduce(histograms, jobs, |dst, srcs| {
        let rows: Vec<&Histogram> = srcs.iter().collect();
        accumulate_hist(kind, dst, &rows)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::cost::CostModel;
    use rdx_histogram::{Binning, ReuseDistance, ReuseTime};

    fn profile(seed: u64) -> RdxProfile {
        let mut rd = RdHistogram::new(Binning::log2());
        let mut rt = RtHistogram::new(Binning::log2());
        for k in 0..20u64 {
            rd.record(
                ReuseDistance::finite(seed * 13 + k * k),
                1.0 + (k % 5) as f64,
            );
            rt.record(ReuseTime::finite(seed * 7 + k * 3), 2.0);
        }
        rd.record(ReuseDistance::INFINITE, seed as f64 + 1.0);
        rt.record(ReuseTime::INFINITE, seed as f64 + 1.0);
        RdxProfile {
            rd,
            rt,
            granularity: Granularity::CACHE_LINE,
            accesses: 10_000 + seed,
            samples: 100 + seed,
            traps: 90 + seed,
            evictions: seed % 3,
            end_censored: seed % 5,
            dropped_samples: 0,
            duplicate_samples: seed % 2,
            m_estimate: 50.0 + seed as f64,
            time_overhead: 0.0,
            profiler_bytes: 1 << 16,
            cost: CostModel::default(),
        }
    }

    fn bits(p: &RdxProfile) -> Vec<u64> {
        let mut out = vec![
            p.accesses,
            p.samples,
            p.traps,
            p.evictions,
            p.end_censored,
            p.dropped_samples,
            p.duplicate_samples,
            p.m_estimate.to_bits(),
            p.time_overhead.to_bits(),
            p.profiler_bytes,
        ];
        for h in [p.rd.as_histogram(), p.rt.as_histogram()] {
            out.extend(h.weights().iter().map(|w| w.to_bits()));
            out.push(h.infinite_weight().to_bits());
            out.push(h.observations());
        }
        out
    }

    #[test]
    fn empty_batch_merges_to_none() {
        assert!(merge_batch(Vec::new(), 4).unwrap().is_none());
        assert!(merge_histogram_batch(Vec::new(), 4, KernelChoice::Auto)
            .unwrap()
            .is_none());
    }

    #[test]
    fn bit_identical_at_every_job_count_and_kernel() {
        let batch: Vec<RdxProfile> = (0..37).map(profile).collect();
        let want = merge_batch_with(batch.clone(), 1, KernelChoice::Scalar)
            .unwrap()
            .unwrap();
        for jobs in [1usize, 2, 3, 5, 8, 64] {
            for choice in [
                KernelChoice::Auto,
                KernelChoice::Scalar,
                KernelChoice::Swar,
                KernelChoice::Simd,
            ] {
                let got = merge_batch_with(batch.clone(), jobs, choice)
                    .unwrap()
                    .unwrap();
                assert_eq!(
                    bits(&got),
                    bits(&want),
                    "jobs={jobs} kernel={}",
                    choice.name()
                );
            }
        }
    }

    #[test]
    fn incompatible_binning_is_typed_and_upfront() {
        let mut batch: Vec<RdxProfile> = (0..3).map(profile).collect();
        let mut odd = profile(9);
        odd.rd = RdHistogram::new(Binning::linear(64));
        batch.push(odd);
        match merge_batch(batch, 2) {
            Err(MergeError::RdBinning(e)) => {
                assert_eq!(e.right, Binning::linear(64));
            }
            other => panic!("expected RdBinning error, got {other:?}"),
        }
    }

    #[test]
    fn incompatible_granularity_and_cost_are_typed() {
        let mut gran = profile(1);
        gran.granularity = Granularity::PAGE;
        assert!(matches!(
            merge_batch(vec![profile(0), gran], 1),
            Err(MergeError::Granularity { .. })
        ));
        let mut cost = profile(1);
        cost.cost.cycles_per_trap += 1.0;
        assert_eq!(
            merge_batch(vec![profile(0), cost], 1).unwrap_err(),
            MergeError::CostModel
        );
    }

    #[test]
    fn counters_and_overhead_compose() {
        let batch: Vec<RdxProfile> = (0..5).map(profile).collect();
        let total_accesses: u64 = batch.iter().map(|p| p.accesses).sum();
        let total_samples: u64 = batch.iter().map(|p| p.samples).sum();
        let merged = merge_batch(batch, 2).unwrap().unwrap();
        assert_eq!(merged.accesses, total_accesses);
        assert_eq!(merged.samples, total_samples);
        let ledger = CostLedger {
            accesses: merged.accesses,
            samples: merged.samples,
            traps: merged.traps,
            arms: 0,
        };
        assert_eq!(
            merged.time_overhead.to_bits(),
            ledger.time_overhead(&merged.cost).to_bits()
        );
    }

    #[test]
    fn ragged_widths_match_chained_pairwise_merge() {
        // Histograms of very different touched widths: the segmented
        // kernel path must equal chained Histogram::merge exactly.
        let mut hists = Vec::new();
        for k in 0..11u64 {
            let mut h = Histogram::new(Binning::log2());
            for v in 0..(1u64 << k) {
                h.record(v, 1.0);
            }
            if k % 2 == 0 {
                h.record_infinite(k as f64);
            }
            hists.push(h);
        }
        let mut want = Histogram::new(Binning::log2());
        for h in &hists {
            want.merge(h).unwrap();
        }
        for choice in [KernelChoice::Scalar, KernelChoice::Swar, KernelChoice::Simd] {
            let got = merge_histogram_batch(hists.clone(), 3, choice)
                .unwrap()
                .unwrap();
            assert_eq!(got, want, "kernel={}", choice.name());
        }
    }
}
