//! The profiler's output: histograms plus overhead accounting.

use memsim::cost::CostModel;
use rdx_histogram::{MissRatioCurve, RdHistogram, RtHistogram};
use rdx_trace::Granularity;

/// The result of one RDX profiling run.
///
/// Histogram weights are scaled to the full run: the total weight of both
/// histograms equals the number of accesses executed (every access has one
/// reuse time/distance, with first-touches in the cold bucket), so profiles
/// are directly comparable to exhaustive ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct RdxProfile {
    /// Estimated reuse-distance histogram — the paper's deliverable.
    pub rd: RdHistogram,
    /// Sampled reuse-time histogram (intervening-accesses convention).
    pub rt: RtHistogram,
    /// Granularity the profile was taken at.
    pub granularity: Granularity,
    /// Total accesses executed.
    pub accesses: u64,
    /// PMU samples delivered.
    pub samples: u64,
    /// Debug traps delivered (completed use–reuse pairs).
    pub traps: u64,
    /// Watchpoints evicted under register pressure (censored intervals).
    pub evictions: u64,
    /// Watchpoints still armed at the end of the run (cold candidates).
    pub end_censored: u64,
    /// Samples dropped by the [`DropNew`] policy.
    ///
    /// [`DropNew`]: crate::ReplacementPolicy::DropNew
    pub dropped_samples: u64,
    /// Samples skipped because their address was already watched.
    pub duplicate_samples: u64,
    /// Estimated distinct-block count (anchors the cold bucket).
    pub m_estimate: f64,
    /// Fractional runtime overhead of profiling (from the cost model).
    pub time_overhead: f64,
    /// Total profiler memory in bytes: fixed runtime + dynamic state.
    pub profiler_bytes: u64,
    /// The cost model used for the overhead numbers.
    pub cost: CostModel,
}

impl RdxProfile {
    /// The merge identity shaped like this profile: empty histograms
    /// with the same binnings, zero counters, and the same granularity
    /// and cost model (the merge-compatibility keys).
    ///
    /// Merging the result into any profile compatible with `self`
    /// leaves that profile bit-identical — the monoid identity that
    /// `tests/merge_monoid.rs` pins.
    #[must_use]
    pub fn empty_like(&self) -> RdxProfile {
        RdxProfile {
            rd: RdHistogram::new(self.rd.as_histogram().binning()),
            rt: RtHistogram::new(self.rt.as_histogram().binning()),
            granularity: self.granularity,
            accesses: 0,
            samples: 0,
            traps: 0,
            evictions: 0,
            end_censored: 0,
            dropped_samples: 0,
            duplicate_samples: 0,
            // -0.0, not 0.0: IEEE-754 addition returns +0.0 for
            // (-0.0) + 0.0, so +0.0 is *not* a bit-level additive
            // identity — profiles can legitimately carry a -0.0
            // estimate (e.g. a cold-fraction product rounding to
            // negative zero), and merging the identity in must not
            // flip its sign bit. x + (-0.0) == x bitwise for every
            // finite x, which is what the golden digests demand.
            m_estimate: -0.0,
            time_overhead: 0.0,
            profiler_bytes: 0,
            cost: self.cost,
        }
    }

    /// Fractional memory overhead relative to an application footprint of
    /// `app_bytes` (profiler memory / application memory).
    ///
    /// Zero-footprint convention: with `app_bytes == 0` any nonzero
    /// profiler footprint is infinitely large relative to the
    /// application, so this returns [`f64::INFINITY`]; `0.0` is
    /// returned only when the profiler used no memory either (0/0 reads
    /// as "no overhead"). Callers aggregating overheads should filter
    /// non-finite values rather than averaging them.
    #[must_use]
    pub fn memory_overhead(&self, app_bytes: u64) -> f64 {
        if app_bytes == 0 {
            return if self.profiler_bytes == 0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.profiler_bytes as f64 / app_bytes as f64
    }

    /// Slowdown an exhaustive instrumentation tool would incur on the same
    /// run, per the cost model — the paper's contrast number.
    #[must_use]
    pub fn instrumentation_slowdown(&self) -> f64 {
        (self.cost.cycles_per_access + self.cost.cycles_per_instrumented_access)
            / self.cost.cycles_per_access
    }

    /// The LRU miss-ratio curve implied by the estimated histogram.
    #[must_use]
    pub fn miss_ratio_curve(&self) -> MissRatioCurve {
        MissRatioCurve::from_rd_histogram(&self.rd)
    }

    /// Fraction of accesses estimated to be cold (first touches).
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.m_estimate / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_histogram::Binning;

    fn dummy() -> RdxProfile {
        RdxProfile {
            rd: RdHistogram::new(Binning::log2()),
            rt: RtHistogram::new(Binning::log2()),
            granularity: Granularity::WORD,
            accesses: 1000,
            samples: 10,
            traps: 8,
            evictions: 1,
            end_censored: 1,
            dropped_samples: 0,
            duplicate_samples: 0,
            m_estimate: 100.0,
            time_overhead: 0.05,
            profiler_bytes: 1 << 20,
            cost: CostModel::default(),
        }
    }

    #[test]
    fn memory_overhead_ratio() {
        let p = dummy();
        assert!((p.memory_overhead(16 << 20) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn memory_overhead_zero_footprint_convention() {
        // Nonzero profiler memory against a zero-byte application is an
        // infinite ratio, not a free lunch.
        let p = dummy();
        assert!(p.profiler_bytes > 0);
        assert_eq!(p.memory_overhead(0), f64::INFINITY);
        // Only 0/0 collapses to "no overhead".
        let mut empty = dummy();
        empty.profiler_bytes = 0;
        assert_eq!(empty.memory_overhead(0), 0.0);
        assert_eq!(empty.memory_overhead(1 << 20), 0.0);
    }

    #[test]
    fn instrumentation_contrast_is_large() {
        let p = dummy();
        assert!(p.instrumentation_slowdown() > 50.0);
    }

    #[test]
    fn cold_fraction_from_m() {
        let p = dummy();
        assert!((p.cold_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mrc_from_empty_profile_is_all_miss() {
        let p = dummy();
        let mrc = p.miss_ratio_curve();
        assert_eq!(mrc.miss_ratio(1 << 20), 1.0);
    }
}
