//! Metrics must observe, never perturb: profiles are bit-identical
//! whether the `metrics` feature is compiled in or not.
//!
//! This file runs under both configurations (plain `cargo test` and
//! `cargo test --features metrics` — CI exercises both legs) and checks
//! every registry workload's `RdHistogram`/`RtHistogram` against one
//! hard-coded digest of the exact f64 bit patterns. Any divergence —
//! between the two builds, or from the recorded baseline — fails.

use rdx_core::{RdxConfig, RdxRunner};
use rdx_histogram::Histogram;
use rdx_workloads::{suite, Params};

/// FNV-1a over a stream of u64s (here: histogram weight bit patterns
/// and bucket bounds), so equality means bit-for-bit equality.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_histogram(&mut self, h: &Histogram) {
        for b in h.buckets() {
            self.push(b.range.lo);
            self.push(b.range.hi);
            self.push(b.weight.to_bits());
        }
        self.push(h.infinite_weight().to_bits());
    }
}

/// The digest of the whole registry at the pinned operating point,
/// recorded from a default-features run. The metrics build must
/// reproduce it exactly: collection is atomic counters and clock reads
/// only, and never feeds back into the estimate.
const GOLDEN: u64 = 0x17ea_4869_2cad_4966;

#[test]
fn profiles_identical_with_metrics_on_and_off() {
    let params = Params::default().with_accesses(60_000).with_elements(800);
    let config = RdxConfig::default().with_period(512).with_seed(7);
    let mut digest = Digest::new();
    for w in suite() {
        let p = RdxRunner::new(config).profile(w.stream(&params));
        digest.push_histogram(p.rd.as_histogram());
        digest.push_histogram(p.rt.as_histogram());
        digest.push(p.samples);
        digest.push(p.traps);
        digest.push(p.evictions);
        digest.push(p.m_estimate.to_bits());
    }
    assert_eq!(
        digest.0,
        GOLDEN,
        "registry digest {:#018x} deviates from the recorded baseline \
         (metrics feature: {}) — collection must not perturb results",
        digest.0,
        rdx_metrics::enabled(),
    );
}
