//! Golden exactness for fleet aggregation.
//!
//! Two anchors, both bit-level:
//!
//! * **Shard partials.** `ShardedExact::rt_partials` yields each
//!   shard's exactly-shardable reuse-time histogram and cold count.
//!   Merging those partials through `merge_histogram_batch` — at every
//!   job count and kernel — must reproduce the whole-trace reuse-time
//!   histogram bucket for bucket, and the cold counts must compose into
//!   the merged cold (infinite) weight. This pins the cold-correction
//!   composition rule: cold weight is additive under merge.
//! * **Registry digest.** The `metrics_determinism.rs` golden digest
//!   (`0x17ea_4869_2cad_4966`) must survive a trip through the RDXP
//!   wire format and `merge_batch` with the identity profile at several
//!   job counts: aggregation machinery may never perturb a profile.

use rdx_core::{decode_profile, encode_profile, merge_batch, merge_histogram_batch, KernelChoice};
use rdx_core::{RdxConfig, RdxRunner};
use rdx_groundtruth::{ExactProfile, ShardedExact};
use rdx_histogram::{Binning, Histogram};
use rdx_trace::Granularity;
use rdx_workloads::{suite, Params};

const JOB_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Same FNV-1a digest as `metrics_determinism.rs`, so the constant
/// below is directly comparable across the two tests.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_histogram(&mut self, h: &Histogram) {
        for b in h.buckets() {
            self.push(b.range.lo);
            self.push(b.range.hi);
            self.push(b.weight.to_bits());
        }
        self.push(h.infinite_weight().to_bits());
    }
}

/// The whole-registry digest recorded by `metrics_determinism.rs`.
const GOLDEN: u64 = 0x17ea_4869_2cad_4966;

#[test]
fn shard_partials_merge_to_the_whole_trace_histogram() {
    let params = Params::default().with_accesses(30_000).with_elements(700);
    let granularity = Granularity::CACHE_LINE;
    let binning = Binning::log2();
    for w in suite().iter().take(4) {
        let whole = ExactProfile::measure(w.stream(&params), granularity, binning);
        let whole_rt = whole.rt.into_histogram();
        for shards in [2usize, 3, 7] {
            let partials =
                ShardedExact::new(shards).rt_partials(w.stream(&params), granularity, binning);
            assert_eq!(partials.len(), shards);
            let total_cold: u64 = partials.iter().map(|(_, cold)| cold).sum();
            let hists: Vec<Histogram> = partials
                .into_iter()
                .map(|(rt, _)| rt.into_histogram())
                .collect();
            for jobs in JOB_COUNTS {
                for choice in [KernelChoice::Auto, KernelChoice::Scalar, KernelChoice::Swar] {
                    let merged = merge_histogram_batch(hists.clone(), jobs, choice)
                        .expect("shards share one binning")
                        .expect("at least one shard");
                    assert_eq!(
                        merged, whole_rt,
                        "{w}: {shards} shards merged at jobs={jobs} ({choice:?}) \
                         deviates from the whole-trace reuse-time histogram"
                    );
                    // Cold correction composes additively: every shard's
                    // first touches land in the merged cold bucket.
                    assert_eq!(merged.infinite_weight(), total_cold as f64, "{w}");
                }
            }
        }
    }
}

#[test]
fn registry_digest_survives_wire_and_merge_with_identity() {
    let params = Params::default().with_accesses(60_000).with_elements(800);
    let config = RdxConfig::default().with_period(512).with_seed(7);
    let profiles: Vec<_> = suite()
        .iter()
        .map(|w| RdxRunner::new(config).profile(w.stream(&params)))
        .collect();
    for jobs in JOB_COUNTS {
        let mut digest = Digest::new();
        for p in &profiles {
            let decoded = decode_profile(&encode_profile(p)).expect("own encoding decodes");
            let merged = merge_batch(vec![decoded, p.empty_like()], jobs)
                .expect("identical binnings are compatible")
                .expect("non-empty batch");
            digest.push_histogram(merged.rd.as_histogram());
            digest.push_histogram(merged.rt.as_histogram());
            digest.push(merged.samples);
            digest.push(merged.traps);
            digest.push(merged.evictions);
            digest.push(merged.m_estimate.to_bits());
        }
        assert_eq!(
            digest.0, GOLDEN,
            "digest {:#018x} at jobs={jobs} deviates from the recorded registry \
             baseline — wire round-trip or identity merge perturbed a profile",
            digest.0
        );
    }
}

#[test]
fn sharded_measure_equals_merged_partials_cold_accounting() {
    // The partition pass and the full sharded measurement must agree on
    // cold counts: distinct blocks == sum of per-shard first touches.
    let params = Params::default().with_accesses(20_000).with_elements(500);
    let w = &suite()[0];
    let granularity = Granularity::CACHE_LINE;
    let binning = Binning::log2();
    let engine = ShardedExact::new(4);
    let full = engine.measure(w.stream(&params), granularity, binning);
    let partials = engine.rt_partials(w.stream(&params), granularity, binning);
    let total_cold: u64 = partials.iter().map(|(_, cold)| cold).sum();
    assert_eq!(full.distinct_blocks, total_cold);
}
