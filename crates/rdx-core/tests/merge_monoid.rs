//! Property tests for the aggregation monoid and its wire format.
//!
//! The laws the fleet aggregator leans on, pinned over generated
//! inputs:
//!
//! * merge is **associative** and **commutative**, and the empty
//!   histogram / [`RdxProfile::empty_like`] is the **identity** — all
//!   at the level of exact `f64` bits. Generated weights are
//!   integer-valued (like every real profile weight: sums of `1.0`s or
//!   of integer sampling periods), so float addition is exact and the
//!   laws hold bit-for-bit, not approximately.
//! * `decode ∘ encode` is the identity on profiles, and decoding never
//!   panics: malformed input — including version and binning
//!   mismatches — yields typed [`WireError`]s.

use memsim::cost::{CostLedger, CostModel};
use proptest::prelude::*;
use rdx_core::{
    decode_profile, encode_profile, merge_batch, merge_histogram_batch, RdxProfile, WireError,
    RDXP_VERSION,
};
use rdx_histogram::{Binning, Histogram, RdHistogram, RtHistogram};
use rdx_trace::Granularity;
use rdx_trace::KernelChoice;

fn arb_histogram() -> impl Strategy<Value = Histogram> {
    (
        prop::collection::vec((0u64..1_000_000, 1u64..1_000), 0..40),
        0u64..1_000,
    )
        .prop_map(|(records, infinite)| {
            let mut h = Histogram::new(Binning::log2());
            for (value, weight) in records {
                h.record(value, weight as f64);
            }
            if infinite > 0 {
                h.record_infinite(infinite as f64);
            }
            h
        })
}

fn arb_profile() -> impl Strategy<Value = RdxProfile> {
    (
        (arb_histogram(), arb_histogram()),
        (1u64..1_000_000, 0u64..10_000, 0u64..10_000),
        prop::collection::vec(0u64..1_000, 5..6),
    )
        .prop_map(|((rd, rt), (accesses, samples, traps), extras)| {
            let cost = CostModel::default();
            let ledger = CostLedger {
                accesses,
                samples,
                traps,
                arms: 0,
            };
            RdxProfile {
                rd: RdHistogram::from(rd),
                rt: RtHistogram::from(rt),
                granularity: Granularity::CACHE_LINE,
                accesses,
                samples,
                traps,
                evictions: extras[0],
                end_censored: extras[1],
                dropped_samples: extras[2],
                duplicate_samples: extras[3],
                m_estimate: extras[4] as f64,
                // Canonical: the overhead a runner would have recorded
                // for these counts — what merging must preserve.
                time_overhead: ledger.time_overhead(&cost),
                profiler_bytes: 4096 + extras[0],
                cost,
            }
        })
}

fn merge2_hist(a: &Histogram, b: &Histogram) -> Histogram {
    merge_histogram_batch(vec![a.clone(), b.clone()], 1, KernelChoice::Auto)
        .expect("same binning")
        .expect("non-empty batch")
}

fn merge2(a: &RdxProfile, b: &RdxProfile) -> RdxProfile {
    merge_batch(vec![a.clone(), b.clone()], 1)
        .expect("compatible profiles")
        .expect("non-empty batch")
}

proptest! {
    #[test]
    fn histogram_merge_is_associative(a in arb_histogram(), b in arb_histogram(), c in arb_histogram()) {
        let left = merge2_hist(&merge2_hist(&a, &b), &c);
        let right = merge2_hist(&a, &merge2_hist(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_is_commutative(a in arb_histogram(), b in arb_histogram()) {
        prop_assert_eq!(merge2_hist(&a, &b), merge2_hist(&b, &a));
    }

    #[test]
    fn empty_histogram_is_the_identity(a in arb_histogram()) {
        let empty = Histogram::new(a.binning());
        prop_assert_eq!(merge2_hist(&a, &empty), a.clone());
        prop_assert_eq!(merge2_hist(&empty, &a), a);
    }

    #[test]
    fn profile_merge_is_associative(a in arb_profile(), b in arb_profile(), c in arb_profile()) {
        let left = merge2(&merge2(&a, &b), &c);
        let right = merge2(&a, &merge2(&b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn profile_merge_is_commutative(a in arb_profile(), b in arb_profile()) {
        prop_assert_eq!(merge2(&a, &b), merge2(&b, &a));
    }

    #[test]
    fn empty_profile_is_the_identity(a in arb_profile()) {
        prop_assert_eq!(merge2(&a, &a.empty_like()), a.clone());
        prop_assert_eq!(merge2(&a.empty_like(), &a), a);
    }

    #[test]
    fn wire_round_trip_is_the_identity(p in arb_profile()) {
        let back = decode_profile(&encode_profile(&p)).expect("own encoding decodes");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn round_trip_through_wire_then_merge_preserves_the_monoid(a in arb_profile(), b in arb_profile()) {
        // serialize ∘ deserialize commutes with merge.
        let direct = merge2(&a, &b);
        let via_wire = merge2(
            &decode_profile(&encode_profile(&a)).expect("decodes"),
            &decode_profile(&encode_profile(&b)).expect("decodes"),
        );
        prop_assert_eq!(direct, via_wire);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking is not.
        let _ = decode_profile(&bytes);
    }

    #[test]
    fn decoding_corrupted_encodings_never_panics(
        p in arb_profile(),
        offset in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = encode_profile(&p);
        let i = offset % bytes.len();
        bytes[i] = byte;
        let _ = decode_profile(&bytes);
    }

    #[test]
    fn version_mismatch_is_a_typed_error(p in arb_profile(), raw in 0u16..u16::MAX) {
        let version = if raw == RDXP_VERSION { u16::MAX } else { raw };
        let mut bytes = encode_profile(&p);
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        prop_assert_eq!(
            decode_profile(&bytes),
            Err(WireError::VersionMismatch { found: version, expected: RDXP_VERSION })
        );
    }

    #[test]
    fn binning_mismatch_across_shards_is_a_typed_error(a in arb_histogram(), width in 1u64..1_000) {
        let odd = Histogram::new(Binning::linear(width));
        let err = merge_histogram_batch(vec![a, odd], 1, KernelChoice::Auto).unwrap_err();
        // The typed error carries both sides' parameters.
        let msg = err.to_string();
        prop_assert!(msg.contains("log2(subs=1)"), "{}", msg);
        prop_assert!(msg.contains(&format!("linear(width={width})")), "{}", msg);
    }
}
