//! Property tests for the profiler pipeline: mass conservation, bounded
//! estimates, and Kaplan–Meier sanity under arbitrary observations.

use proptest::prelude::*;
use rdx_core::km::{KaplanMeier, Observation};
use rdx_core::{RdxConfig, RdxRunner};
use rdx_trace::Trace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any trace, the profile's histogram mass equals the access
    /// count, the cold estimate is within [0, n], and overheads are
    /// non-negative.
    #[test]
    fn profile_mass_and_bounds(
        addrs in prop::collection::vec(0u64..256, 200..3000),
        period in 20u64..300,
    ) {
        let trace = Trace::from_addresses("p", addrs.iter().map(|a| a * 8));
        let profile = RdxRunner::new(RdxConfig::default().with_period(period))
            .profile(trace.stream());
        let n = profile.accesses as f64;
        if profile.samples == 0 {
            // a run shorter than one sampling period observes nothing —
            // the histogram is honestly empty rather than fabricated
            prop_assert_eq!(profile.rd.total_weight(), 0.0);
        } else {
            prop_assert!((profile.rd.total_weight() - n).abs() < 1e-6 * n.max(1.0));
            prop_assert!((profile.rt.total_weight() - n).abs() < 1e-6 * n.max(1.0));
        }
        prop_assert!(profile.m_estimate >= 0.0 && profile.m_estimate <= n + 1e-9);
        prop_assert!(profile.time_overhead >= 0.0);
        prop_assert!(profile.profiler_bytes > 0);
    }

    /// Kaplan–Meier survival is in [0,1], non-increasing, and IPCW weights
    /// are ≥ 1 and capped by the floor.
    #[test]
    fn km_shape(obs in prop::collection::vec((1u64..1000, any::<bool>()), 0..200)) {
        let observations: Vec<Observation> = obs
            .iter()
            .map(|&(duration, evicted)| Observation { duration, evicted })
            .collect();
        let km = KaplanMeier::fit(&observations);
        let mut last = 1.0f64;
        for t in (0..1100).step_by(37) {
            let s = km.survival(t);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= last + 1e-12);
            last = s;
            let w = km.inverse_weight(t);
            prop_assert!(w >= 1.0 - 1e-12);
            prop_assert!(w <= 1.0 / KaplanMeier::DEFAULT_FLOOR + 1e-9);
        }
    }
}
