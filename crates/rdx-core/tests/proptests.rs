//! Property tests for the profiler pipeline: mass conservation, bounded
//! estimates, and Kaplan–Meier sanity under arbitrary observations.

use proptest::prelude::*;
use rdx_core::km::{KaplanMeier, Observation};
use rdx_core::{RdxConfig, RdxRunner};
use rdx_trace::Trace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any trace, the profile's histogram mass equals the access
    /// count, the cold estimate is within [0, n], and overheads are
    /// non-negative.
    #[test]
    fn profile_mass_and_bounds(
        addrs in prop::collection::vec(0u64..256, 200..3000),
        period in 20u64..300,
    ) {
        let trace = Trace::from_addresses("p", addrs.iter().map(|a| a * 8));
        let profile = RdxRunner::new(RdxConfig::default().with_period(period))
            .profile(trace.stream());
        let n = profile.accesses as f64;
        if profile.samples == 0 {
            // a run shorter than one sampling period observes nothing —
            // the histogram is honestly empty rather than fabricated
            prop_assert_eq!(profile.rd.total_weight(), 0.0);
        } else {
            prop_assert!((profile.rd.total_weight() - n).abs() < 1e-6 * n.max(1.0));
            prop_assert!((profile.rt.total_weight() - n).abs() < 1e-6 * n.max(1.0));
        }
        prop_assert!(profile.m_estimate >= 0.0 && profile.m_estimate <= n + 1e-9);
        prop_assert!(profile.time_overhead >= 0.0);
        prop_assert!(profile.profiler_bytes > 0);
    }

    /// Kaplan–Meier survival is in [0,1], non-increasing, and IPCW weights
    /// are ≥ 1 and capped by the floor.
    #[test]
    fn km_shape(obs in prop::collection::vec((1u64..1000, any::<bool>()), 0..200)) {
        let observations: Vec<Observation> = obs
            .iter()
            .map(|&(duration, evicted)| Observation { duration, evicted })
            .collect();
        let km = KaplanMeier::fit(&observations);
        let mut last = 1.0f64;
        for t in (0..1100).step_by(37) {
            let s = km.survival(t);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= last + 1e-12);
            last = s;
            let w = km.inverse_weight(t);
            prop_assert!(w >= 1.0 - 1e-12);
            prop_assert!(w <= 1.0 / KaplanMeier::DEFAULT_FLOOR + 1e-9);
        }
    }
}

/// Historical shrink from `proptests.proptest-regressions`, pinned as an
/// explicit case because the vendored proptest shim does not replay that
/// file: 200 accesses profiled with period 258. The run is shorter than
/// one (jittered) sampling period, so the profiler takes zero samples and
/// the profile must be honestly empty — not scaled up from nothing — while
/// the estimates stay in bounds.
#[test]
fn regression_short_run_period_258_yields_empty_profile() {
    const ADDRS: [u64; 200] = [
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 47, 123, 75, 131, 151, 150, 89, 27, 81, 90, 116,
        109, 171, 43, 211, 56, 183, 50, 74, 42, 9, 132, 162, 20, 221, 63, 32, 127, 137, 50, 115,
        133, 26, 253, 193, 135, 168, 189, 142, 59, 193, 255, 234, 51, 52, 77, 111, 204, 111, 166,
        154, 69, 116, 1, 217, 193, 130, 95, 54, 62, 174, 50, 108, 224, 184, 174, 220, 89, 203, 202,
        103, 50, 73, 157, 172, 58, 123, 108, 154, 158, 223, 169, 177, 53, 199, 71, 0, 154, 206,
        228, 173, 187, 159, 116, 64, 42, 47, 32, 89, 119, 73, 105, 190, 20, 201, 98, 213, 29, 129,
        39, 114, 59, 124, 85, 99, 60, 247, 81, 194, 92, 31, 222, 250, 61, 101, 158, 100, 158, 207,
        38, 158, 103, 169, 241, 128, 145, 137, 55, 157, 207, 29, 169, 107, 105, 12, 57, 234, 41,
        135, 143, 124, 98, 146, 151, 12, 3, 196, 196, 43, 139, 222, 17, 209, 168, 26, 85, 60, 207,
        47, 73, 46, 13, 211, 70, 150, 10, 202, 52, 69, 184, 197, 153, 47, 207, 183, 145, 152,
    ];
    let trace = Trace::from_addresses("p", ADDRS.iter().map(|a| a * 8));
    let profile = RdxRunner::new(RdxConfig::default().with_period(258)).profile(trace.stream());
    let n = profile.accesses as f64;
    if profile.samples == 0 {
        assert_eq!(profile.rd.total_weight(), 0.0);
    } else {
        assert!((profile.rd.total_weight() - n).abs() < 1e-6 * n.max(1.0));
        assert!((profile.rt.total_weight() - n).abs() < 1e-6 * n.max(1.0));
    }
    assert!(profile.m_estimate >= 0.0 && profile.m_estimate <= n + 1e-9);
    assert!(profile.time_overhead >= 0.0);
    assert!(profile.profiler_bytes > 0);
}
