//! File-backed ingestion must be invisible in the output: profiling an
//! RDXT-serialized workload through the bulk-decoding reader or the
//! pipelined (decode-ahead thread) reader reproduces the exact registry
//! golden digest that `metrics_determinism.rs` recorded from in-memory
//! generator streams and `fastpath_equivalence.rs` reproduced through
//! the chunk fast path. Same constant, third execution shape.

use rdx_core::{IngestOptions, RdxConfig, RdxRunner, RdxtInput};
use rdx_histogram::Histogram;
use rdx_trace::{io, Trace};
use rdx_workloads::{suite, Params};

/// FNV-1a over u64 words — the same digest as `metrics_determinism.rs`
/// and `fastpath_equivalence.rs`, so all three tests pin one baseline.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_histogram(&mut self, h: &Histogram) {
        for b in h.buckets() {
            self.push(b.range.lo);
            self.push(b.range.hi);
            self.push(b.weight.to_bits());
        }
        self.push(h.infinite_weight().to_bits());
    }
}

/// Must match `GOLDEN` in `metrics_determinism.rs` and
/// `fastpath_equivalence.rs`.
const GOLDEN: u64 = 0x17ea_4869_2cad_4966;

fn registry_digest_through_files(opts: &IngestOptions) -> u64 {
    let params = Params::default().with_accesses(60_000).with_elements(800);
    let config = RdxConfig::default().with_period(512).with_seed(7);
    let runner = RdxRunner::new(config);
    let mut digest = Digest::new();
    for w in suite() {
        // Serialize the workload to RDXT bytes and profile it back
        // through the file-backed ingestion path.
        let trace = Trace::from_stream(w.name, w.stream(&params));
        let raw = io::to_bytes(&trace);
        let input = RdxtInput::from_bytes(w.name, raw).expect("valid RDXT bytes");
        let (p, verdict) = runner.profile_rdxt(input, opts);
        assert!(verdict.is_ok(), "{}: clean decode expected", w.name);
        digest.push_histogram(p.rd.as_histogram());
        digest.push_histogram(p.rt.as_histogram());
        digest.push(p.samples);
        digest.push(p.traps);
        digest.push(p.evictions);
        digest.push(p.m_estimate.to_bits());
    }
    digest.0
}

#[test]
fn pipelined_ingestion_reproduces_registry_golden_digest() {
    let got = registry_digest_through_files(&IngestOptions::default());
    assert_eq!(
        got, GOLDEN,
        "pipelined file-backed registry digest {got:#018x} deviates from \
         the in-memory baseline — decode-ahead must be bit-identical",
    );
}

#[test]
fn bulk_ingestion_reproduces_registry_golden_digest() {
    let got = registry_digest_through_files(&IngestOptions::default().with_pipelined(false));
    assert_eq!(
        got, GOLDEN,
        "bulk file-backed registry digest {got:#018x} deviates from the \
         in-memory baseline — the bulk decoder must be bit-identical",
    );
}

#[test]
fn odd_chunk_capacities_and_depths_reproduce_the_digest() {
    // Chunk borders must never matter: a tiny odd capacity forces PMU
    // overflow gaps and armed-watchpoint lifetimes to straddle chunks.
    for opts in [
        IngestOptions::default()
            .with_chunk_capacity(777)
            .with_decode_ahead(4),
        IngestOptions::default()
            .with_pipelined(false)
            .with_chunk_capacity(777),
    ] {
        let got = registry_digest_through_files(&opts);
        assert_eq!(got, GOLDEN, "capacity 777, pipelined={}", opts.pipelined);
    }
}

#[test]
fn every_decode_kernel_reproduces_the_digest() {
    // Kernel dispatch must be invisible: forcing each decode kernel
    // (simd degrades to SWAR by table rule — still a distinct path)
    // through both ingestion shapes lands on the same bits.
    use rdx_trace::KernelChoice;
    for kernel in [
        KernelChoice::Auto,
        KernelChoice::Scalar,
        KernelChoice::Swar,
        KernelChoice::Simd,
    ] {
        for opts in [
            IngestOptions::default().with_decode_kernel(kernel),
            IngestOptions::default()
                .with_pipelined(false)
                .with_decode_kernel(kernel),
        ] {
            let got = registry_digest_through_files(&opts);
            assert_eq!(
                got,
                GOLDEN,
                "decode kernel '{}' (pipelined={}) digest {got:#018x} \
                 deviates — every kernel must be bit-identical",
                kernel.name(),
                opts.pipelined,
            );
        }
    }
}
