//! The chunk-scanning fast path must be invisible in the output: a
//! profile computed from a chunk-capable stream (bulk scans between PMU
//! overflows) is bit-identical to one computed by single-stepping every
//! access — histograms, event counts, and every floating-point estimate.
//!
//! Two layers of evidence:
//!
//! * a property test over random traces, periods, jitter, register
//!   counts, and deliberately tiny chunk capacities (so overflow gaps
//!   and armed-watchpoint lifetimes straddle chunk borders), and
//! * the registry golden digest from `metrics_determinism.rs`, re-run
//!   with every workload materialized and profiled through the fast
//!   path: the digest recorded from the slow loop must reproduce.

use memsim::KernelChoice;
use proptest::prelude::*;
use rdx_core::{RdxConfig, RdxProfile, RdxRunner};
use rdx_histogram::Histogram;
use rdx_trace::{Chunked, Opaque, Trace};
use rdx_workloads::{suite, Params};

/// Every scan-kernel selection the golden digest must survive. `Simd`
/// resolves to the portable kernel on hosts without AVX2 — still a
/// distinct dispatch path worth pinning.
const KERNELS: [KernelChoice; 4] = [
    KernelChoice::Auto,
    KernelChoice::Scalar,
    KernelChoice::Swar,
    KernelChoice::Simd,
];

/// Field-by-field bit equality of two profiles (floats by bit pattern:
/// "close" is not good enough — the fast path claims identity).
fn assert_profiles_identical(label: &str, a: &RdxProfile, b: &RdxProfile) {
    assert_eq!(a.rd, b.rd, "{label}: rd histogram");
    assert_eq!(a.rt, b.rt, "{label}: rt histogram");
    assert_eq!(a.accesses, b.accesses, "{label}: accesses");
    assert_eq!(a.samples, b.samples, "{label}: samples");
    assert_eq!(a.traps, b.traps, "{label}: traps");
    assert_eq!(a.evictions, b.evictions, "{label}: evictions");
    assert_eq!(a.end_censored, b.end_censored, "{label}: end_censored");
    assert_eq!(
        a.dropped_samples, b.dropped_samples,
        "{label}: dropped_samples"
    );
    assert_eq!(
        a.duplicate_samples, b.duplicate_samples,
        "{label}: duplicate_samples"
    );
    assert_eq!(
        a.m_estimate.to_bits(),
        b.m_estimate.to_bits(),
        "{label}: m_estimate {} vs {}",
        a.m_estimate,
        b.m_estimate
    );
    assert_eq!(
        a.time_overhead.to_bits(),
        b.time_overhead.to_bits(),
        "{label}: time_overhead {} vs {}",
        a.time_overhead,
        b.time_overhead
    );
    assert_eq!(
        a.profiler_bytes, b.profiler_bytes,
        "{label}: profiler_bytes"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end profile equality: slow loop vs zero-copy fast path vs
    /// buffered small chunks, over arbitrary load/store traces and
    /// machine configurations.
    #[test]
    fn profiles_identical_across_execution_paths(
        accesses in prop::collection::vec((0u64..512, any::<bool>()), 300..3000),
        period in 8u64..300,
        jittered in any::<bool>(),
        registers in 1usize..6,
        chunk_capacity in 3usize..160,
        seed in any::<u64>(),
        kernel_idx in 0usize..KERNELS.len(),
    ) {
        let trace: Trace = accesses.iter().map(|&(a, s)| (a * 8, s)).collect();
        let mut config = RdxConfig::default()
            .with_period(period)
            .with_registers(registers)
            .with_seed(seed)
            .with_scan_kernel(KERNELS[kernel_idx]);
        config.machine.sampling.jitter = if jittered { period / 8 } else { 0 };
        let runner = RdxRunner::new(config);

        // Slow loop: chunk capability hidden behind Opaque.
        let slow = runner.profile(Opaque::new(trace.stream()));
        // Fast path: the materialized trace is one zero-copy chunk.
        let fast = runner.profile(trace.stream());
        // Fast path over tiny buffered chunks: every overflow gap spans
        // several refills.
        let chunked = runner.profile(Chunked::with_capacity(
            Opaque::new(trace.stream()),
            chunk_capacity,
        ));

        assert_profiles_identical("fast vs slow", &fast, &slow);
        assert_profiles_identical("chunked vs slow", &chunked, &slow);
    }
}

/// FNV-1a over u64 words — the same digest as `metrics_determinism.rs`,
/// so the two tests pin the same baseline.
struct Digest(u64);

impl Digest {
    fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_histogram(&mut self, h: &Histogram) {
        for b in h.buckets() {
            self.push(b.range.lo);
            self.push(b.range.hi);
            self.push(b.weight.to_bits());
        }
        self.push(h.infinite_weight().to_bits());
    }
}

/// Must match `GOLDEN` in `metrics_determinism.rs`, which profiles the
/// same registry point through generator streams (the slow loop).
const GOLDEN: u64 = 0x17ea_4869_2cad_4966;

/// The registry digest through the fast path with one kernel forced.
fn registry_digest_with_kernel(kernel: KernelChoice) -> u64 {
    let params = Params::default().with_accesses(60_000).with_elements(800);
    let config = RdxConfig::default()
        .with_period(512)
        .with_seed(7)
        .with_scan_kernel(kernel);
    let mut digest = Digest::new();
    for w in suite() {
        // Materializing forces the zero-copy chunk fast path (generator
        // streams are not chunk-capable and would single-step).
        let trace = Trace::from_stream(w.name, w.stream(&params));
        let p = RdxRunner::new(config).profile(trace.stream());
        digest.push_histogram(p.rd.as_histogram());
        digest.push_histogram(p.rt.as_histogram());
        digest.push(p.samples);
        digest.push(p.traps);
        digest.push(p.evictions);
        digest.push(p.m_estimate.to_bits());
    }
    digest.0
}

#[test]
fn fast_path_reproduces_registry_golden_digest() {
    for kernel in KERNELS {
        let got = registry_digest_with_kernel(kernel);
        assert_eq!(
            got,
            GOLDEN,
            "fast-path registry digest {got:#018x} with scan kernel '{}' \
             deviates from the slow-loop baseline — every kernel must be \
             bit-identical",
            kernel.name(),
        );
    }
}
