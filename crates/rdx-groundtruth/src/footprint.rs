//! Exact average-footprint curves (higher-order theory of locality).
//!
//! The *average footprint* `fp(w)` of a trace is the mean number of distinct
//! blocks in a window of `w` consecutive accesses, averaged over all
//! `n − w + 1` windows. Xiang et al. showed `fp` is computable in linear
//! time from the distribution of *access intervals*: each block contributes
//! the gaps between its consecutive accesses plus two boundary gaps (before
//! its first and after its last access), and a window of length `w` misses a
//! block exactly when it fits inside one of that block's gaps:
//!
//! ```text
//! fp(w) = m − (1/(n−w+1)) · Σ_{ℓ ∈ L, ℓ > w} (ℓ − w)
//! ```
//!
//! where `L` holds, for every block, its first-access index `f` (1-based),
//! its reverse last-access index `n − last`, and the index differences of
//! consecutive accesses.
//!
//! RDX's key insight builds on this: reuse *time* is cheap to sample with
//! hardware, and `fp` converts reuse time to reuse *distance* — the reuse
//! distance of a pair with reuse time `t` is `≈ fp(t)`. This module provides
//! the exact curve; `rdx-core` builds the sampled estimate.

use crate::fxhash::FxHashMap;
use rdx_trace::{AccessStream, Granularity};

/// An exact average-footprint curve, queryable at any window length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FootprintCurve {
    n: u64,
    m: u64,
    /// All access-interval lengths, sorted ascending.
    lengths: Vec<u64>,
    /// `suffix[i]` = sum of `lengths[i..]`.
    suffix: Vec<u128>,
}

impl FootprintCurve {
    /// Measures the exact footprint curve of a stream at the given
    /// granularity.
    #[must_use]
    pub fn measure(mut stream: impl AccessStream, granularity: Granularity) -> FootprintCurve {
        let mut last: FxHashMap<u64, u64> = FxHashMap::default();
        let mut first: FxHashMap<u64, u64> = FxHashMap::default();
        let mut lengths: Vec<u64> = Vec::new();
        let mut time: u64 = 0; // 0-based access index
        while let Some(a) = stream.next_access() {
            let block = a.addr.block(granularity);
            match last.insert(block, time) {
                None => {
                    first.insert(block, time + 1); // 1-based first index
                }
                Some(prev) => lengths.push(time - prev),
            }
            time += 1;
        }
        let n = time;
        for (&block, &f) in &first {
            lengths.push(f);
            let l0 = last[&block];
            lengths.push(n - l0);
        }
        Self::from_parts(n, first.len() as u64, lengths)
    }

    /// Builds a curve from raw parts: trace length, distinct block count,
    /// and the full multiset of access-interval lengths. Exposed for the
    /// sampled estimator in `rdx-core`, which assembles approximate
    /// intervals.
    #[must_use]
    pub fn from_parts(n: u64, m: u64, mut lengths: Vec<u64>) -> FootprintCurve {
        lengths.sort_unstable();
        let mut suffix = vec![0u128; lengths.len() + 1];
        for i in (0..lengths.len()).rev() {
            suffix[i] = suffix[i + 1] + u128::from(lengths[i]);
        }
        FootprintCurve {
            n,
            m,
            lengths,
            suffix,
        }
    }

    /// Trace length.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.n
    }

    /// Distinct block count (`fp` saturates to this).
    #[must_use]
    pub fn distinct_blocks(&self) -> u64 {
        self.m
    }

    /// Average number of distinct blocks in a window of `w` accesses.
    ///
    /// `w` is clamped to the trace length; `fp(0) = 0` and `fp(n) = m`.
    #[must_use]
    pub fn fp(&self, w: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let w = w.min(self.n);
        let idx = self.lengths.partition_point(|&l| l <= w);
        let cnt = (self.lengths.len() - idx) as u128;
        let sum = self.suffix[idx];
        let miss_mass = sum - u128::from(w) * cnt;
        let windows = self.n - w + 1;
        let fp = self.m as f64 - miss_mass as f64 / windows as f64;
        fp.max(0.0)
    }

    /// Inverse query: the smallest window length whose average footprint
    /// reaches `target` blocks (binary search over the monotone curve).
    /// Returns `n` if even the full trace does not reach it.
    #[must_use]
    pub fn window_for_footprint(&self, target: f64) -> u64 {
        if self.fp(self.n) < target {
            return self.n;
        }
        let (mut lo, mut hi) = (0u64, self.n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.fp(mid) >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// Directly measures the average footprint of window length `w` by sliding
/// a window over `blocks` — O(n) per window length. The oracle against
/// which [`FootprintCurve`] is property-tested.
#[must_use]
pub fn direct_average_footprint(blocks: &[u64], w: usize) -> f64 {
    let n = blocks.len();
    if w == 0 || n == 0 || w > n {
        return if w == 0 { 0.0 } else { f64::NAN };
    }
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    let mut distinct_sum = 0u64;
    for &b in &blocks[..w] {
        *counts.entry(b).or_insert(0) += 1;
    }
    distinct_sum += counts.len() as u64;
    for i in w..n {
        let out = blocks[i - w];
        let c = counts.get_mut(&out).expect("outgoing block tracked");
        *c -= 1;
        if *c == 0 {
            counts.remove(&out);
        }
        *counts.entry(blocks[i]).or_insert(0) += 1;
        distinct_sum += counts.len() as u64;
    }
    distinct_sum as f64 / (n - w + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    fn curve_of(blocks: &[u64]) -> FootprintCurve {
        let t = Trace::from_addresses("fp", blocks.iter().copied());
        FootprintCurve::measure(t.stream(), Granularity::BYTE)
    }

    #[test]
    fn tiny_example_by_hand() {
        // trace: a b a  → fp(1)=1, fp(2)=2, fp(3)=2
        let c = curve_of(&[10, 20, 10]);
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.distinct_blocks(), 2);
        assert!((c.fp(1) - 1.0).abs() < 1e-12);
        assert!((c.fp(2) - 2.0).abs() < 1e-12);
        assert!((c.fp(3) - 2.0).abs() < 1e-12);
        assert_eq!(c.fp(0), 0.0);
    }

    #[test]
    fn matches_direct_measurement() {
        let blocks: Vec<u64> = (0..400u64).map(|i| (i * 31 + i * i / 5) % 29).collect();
        let c = curve_of(&blocks);
        for w in [1usize, 2, 3, 5, 10, 50, 100, 399, 400] {
            let direct = direct_average_footprint(&blocks, w);
            let formula = c.fp(w as u64);
            assert!(
                (direct - formula).abs() < 1e-9,
                "w={w}: direct={direct} formula={formula}"
            );
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        let blocks: Vec<u64> = (0..500u64).map(|i| (i * 17) % 97).collect();
        let c = curve_of(&blocks);
        let mut last = 0.0;
        for w in 0..=500u64 {
            let v = c.fp(w);
            assert!(v >= last - 1e-9, "fp must be non-decreasing at w={w}");
            last = v;
        }
    }

    #[test]
    fn saturates_at_distinct_count() {
        let c = curve_of(&[1, 2, 3, 1, 2, 3]);
        assert_eq!(c.fp(6), 3.0);
        assert_eq!(c.fp(u64::MAX), 3.0); // clamped
    }

    #[test]
    fn single_block_trace() {
        let c = curve_of(&[5, 5, 5, 5]);
        for w in 1..=4u64 {
            assert!((c.fp(w) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_trace() {
        let c = curve_of(&[]);
        assert_eq!(c.fp(0), 0.0);
        assert_eq!(c.fp(10), 0.0);
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn window_for_footprint_inverse() {
        let blocks: Vec<u64> = (0..1000u64).map(|i| i % 50).collect();
        let c = curve_of(&blocks);
        for target in [1.0, 10.0, 25.0, 49.9] {
            let w = c.window_for_footprint(target);
            assert!(c.fp(w) >= target, "fp({w}) >= {target}");
            if w > 0 {
                assert!(c.fp(w - 1) < target, "minimality at {w}");
            }
        }
        // unreachable target clamps to n
        assert_eq!(c.window_for_footprint(1000.0), 1000);
    }

    #[test]
    fn direct_oracle_edge_cases() {
        assert_eq!(direct_average_footprint(&[], 0), 0.0);
        assert!(direct_average_footprint(&[1], 2).is_nan());
        assert_eq!(direct_average_footprint(&[1, 1, 1], 2), 1.0);
    }
}
