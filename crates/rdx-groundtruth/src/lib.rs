//! Exhaustive ("ground truth") reuse-distance measurement.
//!
//! This crate implements the classic exact algorithms that the RDX paper
//! treats as ground truth and as the overhead strawman: every access is
//! observed, a hash map tracks each block's previous access time, and an
//! order-statistic structure counts how many *distinct* blocks were touched
//! in between (Olken's algorithm).
//!
//! Three interchangeable order-statistic structures are provided, all
//! implementing [`DistanceStructure`]:
//!
//! * [`FenwickStructure`] — a Fenwick (binary indexed) tree over access
//!   timestamps; the fastest here and the crate default.
//! * [`TreapStructure`] — a randomized order-statistic treap.
//! * [`SplayStructure`] — the splay tree used by Olken's original
//!   formulation and most instrumentation-based tools.
//!
//! They are property-tested against each other and against an O(n²)
//! brute-force oracle ([`brute_force_rd`]).
//!
//! On top of the per-access tracker, [`exact`] offers whole-stream drivers
//! producing exact reuse-distance and reuse-time histograms, and
//! [`footprint`] computes exact average-footprint curves (Xiang et al.'s
//! linear-time formula), which the RDX conversion in `rdx-core` relies on.
//!
//! # Example
//!
//! ```
//! use rdx_groundtruth::OlkenTracker;
//! use rdx_histogram::ReuseDistance;
//!
//! let mut olken = OlkenTracker::new();
//! assert_eq!(olken.access(7), ReuseDistance::INFINITE); // cold
//! assert_eq!(olken.access(8), ReuseDistance::INFINITE); // cold
//! assert_eq!(olken.access(7), ReuseDistance::finite(1)); // one distinct block (8) in between
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod footprint;
pub mod fxhash;
mod olken;
pub mod sharded;
mod structure;

pub use exact::{brute_force_rd, ExactProfile};
pub use footprint::FootprintCurve;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use olken::OlkenTracker;
pub use sharded::ShardedExact;
pub use structure::{DistanceStructure, FenwickStructure, SplayStructure, TreapStructure};
