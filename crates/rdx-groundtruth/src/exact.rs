//! Whole-stream exact measurement drivers.

use crate::fxhash::FxHashMap;
use crate::olken::OlkenTracker;
use crate::structure::DistanceStructure;
use crate::structure::FenwickStructure;
use rdx_histogram::{Binning, RdHistogram, ReuseDistance, ReuseTime, RtHistogram};
use rdx_trace::{AccessStream, Granularity};

/// The complete exact profile of an access stream: reuse-distance and
/// reuse-time histograms plus measurement bookkeeping.
///
/// This is the paper's ground truth: what an exhaustive instrumentation
/// tool produces, at exhaustive-instrumentation cost.
#[derive(Debug, Clone)]
pub struct ExactProfile {
    /// Exact reuse-distance histogram (each access weight 1).
    pub rd: RdHistogram,
    /// Exact reuse-time histogram (intervening-access convention: an
    /// immediately repeated access has reuse time 0).
    pub rt: RtHistogram,
    /// Granularity at which blocks were formed.
    pub granularity: Granularity,
    /// Total accesses measured.
    pub accesses: u64,
    /// Distinct blocks touched (equals the cold weight of `rd`).
    pub distinct_blocks: u64,
    /// Peak tracker memory in bytes — the exhaustive tool's memory bloat.
    pub tracker_bytes: usize,
}

impl ExactProfile {
    /// Measures a stream exhaustively with the default (Fenwick) structure.
    #[must_use]
    pub fn measure(
        stream: impl AccessStream,
        granularity: Granularity,
        binning: Binning,
    ) -> ExactProfile {
        Self::measure_with::<FenwickStructure>(stream, granularity, binning)
    }

    /// Measures a stream exhaustively with a chosen order-statistic
    /// structure (used by the structure-comparison benchmarks).
    #[must_use]
    pub fn measure_with<D: DistanceStructure + Default>(
        mut stream: impl AccessStream,
        granularity: Granularity,
        binning: Binning,
    ) -> ExactProfile {
        let mut olken = OlkenTracker::<D>::with_structure();
        let mut last_time: FxHashMap<u64, u64> = FxHashMap::default();
        let mut rd = RdHistogram::new(binning);
        let mut rt = RtHistogram::new(binning);
        let mut time = 0u64;
        while let Some(a) = stream.next_access() {
            let block = a.addr.block(granularity);
            rd.record(olken.access(block), 1.0);
            let t = match last_time.insert(block, time) {
                None => ReuseTime::INFINITE,
                Some(prev) => ReuseTime::finite(time - prev - 1),
            };
            rt.record(t, 1.0);
            time += 1;
        }
        ExactProfile {
            rd,
            rt,
            granularity,
            accesses: time,
            distinct_blocks: olken.distinct_blocks(),
            tracker_bytes: olken.memory_bytes(),
        }
    }

    /// Fraction of accesses that are cold (first touch of their block).
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.distinct_blocks as f64 / self.accesses as f64
        }
    }
}

/// O(n²) brute-force reuse distances, the oracle for property tests.
///
/// Returns one [`ReuseDistance`] per access (in block-number space — apply
/// granularity before calling).
#[must_use]
pub fn brute_force_rd(blocks: &[u64]) -> Vec<ReuseDistance> {
    let mut out = Vec::with_capacity(blocks.len());
    for (i, &b) in blocks.iter().enumerate() {
        let mut prev = None;
        for j in (0..i).rev() {
            if blocks[j] == b {
                prev = Some(j);
                break;
            }
        }
        match prev {
            None => out.push(ReuseDistance::INFINITE),
            Some(j) => {
                let mut distinct: Vec<u64> = blocks[j + 1..i].to_vec();
                distinct.sort_unstable();
                distinct.dedup();
                out.push(ReuseDistance::finite(distinct.len() as u64));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    #[test]
    fn brute_force_reference() {
        // a b c b a
        let rd = brute_force_rd(&[10, 20, 30, 20, 10]);
        assert_eq!(rd[0], ReuseDistance::INFINITE);
        assert_eq!(rd[1], ReuseDistance::INFINITE);
        assert_eq!(rd[2], ReuseDistance::INFINITE);
        assert_eq!(rd[3], ReuseDistance::finite(1)); // {c}
        assert_eq!(rd[4], ReuseDistance::finite(2)); // {b, c}
    }

    #[test]
    fn exact_profile_small_trace() {
        // byte addresses in distinct 64B lines: 0, 64, 0
        let t = Trace::from_addresses("p", [0u64, 64, 0]);
        let p = ExactProfile::measure(t.stream(), Granularity::CACHE_LINE, Binning::log2());
        assert_eq!(p.accesses, 3);
        assert_eq!(p.distinct_blocks, 2);
        assert_eq!(p.rd.cold_weight(), 2.0);
        // third access: distance 1
        assert_eq!(p.rd.as_histogram().weight_for(1), 1.0);
        // reuse time of third access: 1 intervening access
        assert_eq!(p.rt.as_histogram().weight_for(1), 1.0);
        assert!((p.cold_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn granularity_merges_blocks() {
        // 0 and 32 share a cache line: second access to the line is distance 0
        let t = Trace::from_addresses("g", [0u64, 32]);
        let line = ExactProfile::measure(t.stream(), Granularity::CACHE_LINE, Binning::log2());
        assert_eq!(line.distinct_blocks, 1);
        assert_eq!(line.rd.as_histogram().weight_for(0), 1.0);
        let byte = ExactProfile::measure(t.stream(), Granularity::BYTE, Binning::log2());
        assert_eq!(byte.distinct_blocks, 2);
        assert_eq!(byte.rd.cold_weight(), 2.0);
    }

    #[test]
    fn olken_matches_brute_force_on_pseudorandom_trace() {
        let blocks: Vec<u64> = (0..300u64).map(|i| (i * 7919 + i * i) % 23).collect();
        let expect = brute_force_rd(&blocks);
        let mut olken = OlkenTracker::new();
        for (i, &b) in blocks.iter().enumerate() {
            assert_eq!(olken.access(b), expect[i], "access {i}");
        }
    }

    #[test]
    fn rt_histogram_semantics() {
        // x . x : reuse time 1 ; x x : reuse time 0
        let t = Trace::from_addresses("rt", [0u64, 64, 0, 0]);
        let p = ExactProfile::measure(t.stream(), Granularity::CACHE_LINE, Binning::log2());
        assert_eq!(p.rt.as_histogram().weight_for(1), 1.0);
        assert_eq!(p.rt.as_histogram().weight_for(0), 1.0);
        assert_eq!(p.rt.cold_weight(), 2.0);
    }

    #[test]
    fn totals_match_access_count() {
        let t = Trace::from_addresses("tot", (0..1000u64).map(|i| (i % 77) * 64));
        let p = ExactProfile::measure(t.stream(), Granularity::CACHE_LINE, Binning::log2());
        assert_eq!(p.rd.total_weight(), 1000.0);
        assert_eq!(p.rt.total_weight(), 1000.0);
        assert_eq!(p.rd.cold_weight(), p.distinct_blocks as f64);
    }

    #[test]
    fn empty_stream() {
        let t = Trace::new("e");
        let p = ExactProfile::measure(t.stream(), Granularity::CACHE_LINE, Binning::log2());
        assert_eq!(p.accesses, 0);
        assert_eq!(p.cold_fraction(), 0.0);
        assert!(p.rd.as_histogram().is_empty());
    }
}
