//! Spatially sharded **exact** measurement.
//!
//! Blocks are hash-partitioned across N worker shards; the final
//! histograms are **identical — same count in every bucket — to the
//! sequential [`ExactProfile`]**, not an approximation. That claim needs
//! care: naively running Olken's algorithm per shard and merging the
//! per-shard histograms is *wrong* for reuse distance, because the
//! distance of an access counts distinct blocks of **every** shard in
//! its reuse window, not just its own. The fix is an exact
//! decomposition:
//!
//! > `d(access) = Σ over shards s of (distinct blocks of shard s
//! > touched inside the access's reuse window)`
//!
//! which turns each access into a *window-count query* `(u, v)` (the
//! global times of its previous and current access) that every shard
//! can answer independently from its own access subsequence. The
//! pipeline has three passes:
//!
//! 1. **Partition (parallel):** the stream is cut into bounded
//!    [`Chunker`] chunks on the caller's thread and broadcast to the
//!    shard workers over bounded channels, so the trace is never
//!    materialized and at most `shards × 4` chunks are in flight. Each
//!    worker keeps an independent tracker (last-access table) for its
//!    own blocks and emits: its query list, its update-time list, and
//!    its — exactly shardable — reuse-*time* histogram and cold count.
//! 2. **Sweep (parallel):** the queries of all shards are merged into
//!    one list ordered by query time (deterministic: times are unique).
//!    Each shard then sweeps its own updates through this list with a
//!    Fenwick tree over its *local* update ordinals, adding its
//!    distinct-block count for every window into a shared atomic
//!    accumulator. Per-shard memory is `O(own accesses)` — the
//!    structures shrink as shards are added.
//! 3. **Merge (deterministic):** accumulated window counts are exact
//!    distances; they are recorded in query order, cold accesses and
//!    reuse-time histograms in shard order. Every bucket weight is a sum
//!    of `1.0`s (integer-valued `f64`s, exact up to 2^53), so the result
//!    is bit-identical to the sequential profile regardless of thread
//!    scheduling — `assert_eq!` against [`ExactProfile::measure`] holds
//!    and is enforced by tests across the entire workload registry.

use crate::exact::ExactProfile;
use crate::fxhash::FxHashMap;
use rdx_histogram::{Binning, RdHistogram, ReuseDistance, ReuseTime, RtHistogram};
use rdx_trace::{AccessStream, Chunk, Chunker, Granularity, DEFAULT_CHUNK_CAPACITY};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Chunks allowed in flight per shard before the producer blocks.
const CHUNKS_IN_FLIGHT: usize = 4;

/// Assigns a block to a shard (Fibonacci multiplicative hash, so
/// strided block patterns spread evenly).
fn shard_of(block: u64, shards: u64) -> usize {
    usize::try_from((block.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards)
        .expect("shard index fits usize")
}

/// Everything one shard learns about its own blocks in the partition
/// pass.
struct ShardPass {
    /// Global time of each of this shard's accesses ("updates"),
    /// ascending by construction.
    times: Vec<u64>,
    /// For update `i`: the local ordinal of the same block's previous
    /// update, to be evicted from the sweep structure when `i` applies.
    prev: Vec<Option<u32>>,
    /// `(u, v)` reuse windows of this shard's non-cold accesses.
    queries: Vec<(u64, u64)>,
    /// Exact reuse-time histogram of this shard's accesses.
    rt: RtHistogram,
    /// First-touch (cold) accesses of this shard = its distinct blocks.
    cold: u64,
}

impl ShardPass {
    fn consume(
        rx: &crossbeam::channel::Receiver<Arc<Chunk>>,
        shard: usize,
        shards: u64,
        granularity: Granularity,
        binning: Binning,
    ) -> ShardPass {
        // Each shard's block-ownership map takes one probe per owned
        // access; the deterministic Fx hasher keeps that probe cheap.
        let mut last: FxHashMap<u64, u32> = FxHashMap::default();
        let mut times: Vec<u64> = Vec::new();
        let mut prev: Vec<Option<u32>> = Vec::new();
        let mut queries: Vec<(u64, u64)> = Vec::new();
        let mut rt = RtHistogram::new(binning);
        let mut cold = 0u64;
        for chunk in rx {
            for (time, a) in chunk.indexed() {
                let block = a.addr.block(granularity);
                if shard_of(block, shards) != shard {
                    continue;
                }
                let ordinal =
                    u32::try_from(times.len()).expect("more than u32::MAX accesses in one shard");
                match last.insert(block, ordinal) {
                    None => {
                        cold += 1;
                        rt.record(ReuseTime::INFINITE, 1.0);
                        prev.push(None);
                    }
                    Some(p) => {
                        let u = times[p as usize];
                        queries.push((u, time));
                        rt.record(ReuseTime::finite(time - u - 1), 1.0);
                        prev.push(Some(p));
                    }
                }
                times.push(time);
            }
        }
        ShardPass {
            times,
            prev,
            queries,
            rt,
            cold,
        }
    }

    /// Rough resident-set estimate of this shard's sweep state.
    fn memory_bytes(&self) -> usize {
        // last-access table entries (u64 key + u32 value + overhead),
        // update lists, query list, and the sweep-time Fenwick (i64/slot).
        self.cold as usize * 32 + self.times.len() * (8 + 8 + 8) + self.queries.len() * 16
    }

    /// Sweeps this shard's updates across the *global* query list,
    /// accumulating the shard's distinct-block count for every window.
    fn sweep(&self, queries: &[(u64, u64)], answers: &[AtomicU64]) {
        let mut fen = OrdinalFenwick::new(self.times.len());
        let mut present = 0i64;
        let mut next = 0usize;
        for (qi, &(u, v)) in queries.iter().enumerate() {
            // Apply every update strictly before the query time v. A
            // block's older entry is evicted as its newer entry lands,
            // so exactly the *last* access ≤ sweep point is present.
            while next < self.times.len() && self.times[next] < v {
                fen.add(next, 1);
                present += 1;
                if let Some(p) = self.prev[next] {
                    fen.add(p as usize, -1);
                    present -= 1;
                }
                next += 1;
            }
            // Updates with time ≤ u occupy ordinals < rank_u (times are
            // sorted), so present entries beyond that prefix are exactly
            // the blocks whose last access falls inside (u, v).
            let rank_u = self.times.partition_point(|t| *t <= u);
            if next == rank_u {
                continue; // no update of this shard inside (u, v)
            }
            let within = present - fen.prefix(rank_u);
            debug_assert!(within >= 0);
            if within > 0 {
                answers[qi].fetch_add(within as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Fenwick tree over local update ordinals with signed counts.
struct OrdinalFenwick {
    tree: Vec<i64>,
}

impl OrdinalFenwick {
    fn new(len: usize) -> OrdinalFenwick {
        OrdinalFenwick {
            tree: vec![0; len + 1],
        }
    }

    /// Adds `delta` at ordinal `i`.
    fn add(&mut self, i: usize, delta: i64) {
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Sum over ordinals `0..k`.
    fn prefix(&self, k: usize) -> i64 {
        let mut idx = k.min(self.tree.len() - 1);
        let mut sum = 0;
        while idx > 0 {
            sum += self.tree[idx];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }
}

/// Parallel driver producing sequential-identical [`ExactProfile`]s.
///
/// ```
/// use rdx_groundtruth::{ExactProfile, ShardedExact};
/// use rdx_histogram::Binning;
/// use rdx_trace::{Granularity, Trace};
///
/// let t = Trace::from_addresses("cyc", (0..10_000u64).map(|i| (i % 700) * 8));
/// let seq = ExactProfile::measure(t.stream(), Granularity::WORD, Binning::log2());
/// let par = ShardedExact::new(4).measure(t.stream(), Granularity::WORD, Binning::log2());
/// assert_eq!(seq.rd, par.rd);
/// assert_eq!(seq.rt, par.rt);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedExact {
    shards: usize,
    chunk_capacity: usize,
}

impl ShardedExact {
    /// A driver with `shards` worker threads (≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> ShardedExact {
        assert!(shards > 0, "need at least one shard");
        ShardedExact {
            shards,
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
        }
    }

    /// A driver sized to the machine's available parallelism.
    #[must_use]
    pub fn auto() -> ShardedExact {
        ShardedExact::new(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
    }

    /// Overrides the streaming chunk capacity (accesses per chunk).
    #[must_use]
    pub fn with_chunk_capacity(mut self, capacity: usize) -> ShardedExact {
        assert!(capacity > 0, "chunk capacity must be positive");
        self.chunk_capacity = capacity;
        self
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs only the partition pass, returning each shard's *exactly
    /// shardable* piece: its reuse-time histogram and its cold
    /// (first-touch) count. Shard order is deterministic (the block
    /// hash), so the pieces merge back to the whole-trace reuse-time
    /// histogram bit-for-bit — the property the fleet-aggregation
    /// golden tests pin against `rdx_core::merge_batch`.
    #[must_use]
    pub fn rt_partials(
        &self,
        stream: impl AccessStream,
        granularity: Granularity,
        binning: Binning,
    ) -> Vec<(RtHistogram, u64)> {
        let (passes, _accesses) = self.partition(stream, granularity, binning);
        passes.into_iter().map(|p| (p.rt, p.cold)).collect()
    }

    /// Pass 1: partition. The caller's thread chunks the stream and
    /// broadcasts; shard workers filter and track their own blocks.
    /// Returns the per-shard passes and the total access count.
    fn partition(
        &self,
        stream: impl AccessStream,
        granularity: Granularity,
        binning: Binning,
    ) -> (Vec<ShardPass>, u64) {
        let shards = self.shards;
        let shards_u64 = shards as u64;
        let partition_span = rdx_metrics::span("partition");
        let mut chunker = Chunker::with_capacity(stream, self.chunk_capacity);
        let passes: Vec<ShardPass> = crossbeam::scope(|scope| {
            let mut senders = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for shard in 0..shards {
                let (tx, rx) = crossbeam::channel::bounded::<Arc<Chunk>>(CHUNKS_IN_FLIGHT);
                senders.push(tx);
                handles.push(scope.spawn(move |_| {
                    // Worker thread: its own span stack, so the timer
                    // records flat (one duration per shard per run).
                    let _shard_span = rdx_metrics::span("rdx.sharded.shard_partition");
                    ShardPass::consume(&rx, shard, shards_u64, granularity, binning)
                }));
            }
            while let Some(chunk) = chunker.next_chunk() {
                let chunk = Arc::new(chunk);
                for tx in &senders {
                    tx.send(Arc::clone(&chunk)).expect("shard worker alive");
                }
            }
            drop(senders);
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        .expect("shard scope panicked");
        let accesses = chunker.accesses_delivered();
        drop(partition_span);
        (passes, accesses)
    }

    /// Measures a stream exactly, in parallel. The result equals
    /// [`ExactProfile::measure`] bucket for bucket (see module docs).
    #[must_use]
    pub fn measure(
        &self,
        stream: impl AccessStream,
        granularity: Granularity,
        binning: Binning,
    ) -> ExactProfile {
        let _measure_span = rdx_metrics::span("rdx.sharded.measure");
        rdx_metrics::counter("rdx.sharded.measurements").incr();

        let (passes, accesses) = self.partition(stream, granularity, binning);
        rdx_metrics::counter("rdx.sharded.accesses").add(accesses);

        // Pass 2: order queries globally (times are unique, so the order
        // is deterministic) and let every shard sweep them in parallel.
        let sweep_span = rdx_metrics::span("sweep");
        let mut queries: Vec<(u64, u64)> = passes
            .iter()
            .flat_map(|p| p.queries.iter().copied())
            .collect();
        queries.sort_unstable_by_key(|&(_, v)| v);
        rdx_metrics::counter("rdx.sharded.queries").add(queries.len() as u64);
        let answers: Vec<AtomicU64> = std::iter::repeat_with(|| AtomicU64::new(0))
            .take(queries.len())
            .collect();
        crossbeam::scope(|scope| {
            let queries = &queries;
            let answers = &answers;
            for pass in &passes {
                scope.spawn(move |_| {
                    let _shard_span = rdx_metrics::span("rdx.sharded.shard_sweep");
                    pass.sweep(queries, answers);
                });
            }
        })
        .expect("sweep scope panicked");
        drop(sweep_span);

        // Pass 3: deterministic merge. One record() per access keeps
        // observation counts — and so histogram equality — exact.
        let _merge_span = rdx_metrics::span("merge");
        let mut rd = RdHistogram::new(binning);
        let mut rt = RtHistogram::new(binning);
        let mut distinct_blocks = 0u64;
        let mut tracker_bytes = 0usize;
        for pass in &passes {
            for _ in 0..pass.cold {
                rd.record(ReuseDistance::INFINITE, 1.0);
            }
            distinct_blocks += pass.cold;
            tracker_bytes += pass.memory_bytes();
            rt.merge(&pass.rt).expect("shards share one binning");
        }
        for answer in &answers {
            rd.record(ReuseDistance::finite(answer.load(Ordering::Relaxed)), 1.0);
        }
        ExactProfile {
            rd,
            rt,
            granularity,
            accesses,
            distinct_blocks,
            tracker_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdx_trace::Trace;

    fn pseudo_trace(n: u64, span: u64) -> Trace {
        // LCG-scrambled addresses with some locality structure.
        Trace::from_addresses(
            "sharded",
            (0..n).map(move |i| {
                let x = i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                ((x >> 33) % span) * 8
            }),
        )
    }

    fn assert_identical(trace: &Trace, shards: usize) {
        let seq = ExactProfile::measure(trace.stream(), Granularity::WORD, Binning::log2());
        let par = ShardedExact::new(shards)
            .with_chunk_capacity(97) // force many ragged chunks
            .measure(trace.stream(), Granularity::WORD, Binning::log2());
        assert_eq!(seq.rd, par.rd, "{shards} shards: rd histograms differ");
        assert_eq!(seq.rt, par.rt, "{shards} shards: rt histograms differ");
        assert_eq!(seq.accesses, par.accesses);
        assert_eq!(seq.distinct_blocks, par.distinct_blocks);
    }

    #[test]
    fn matches_sequential_for_any_shard_count() {
        let trace = pseudo_trace(5_000, 400);
        for shards in [1, 2, 3, 4, 7, 16] {
            assert_identical(&trace, shards);
        }
    }

    #[test]
    fn matches_sequential_on_cyclic_and_sawtooth_patterns() {
        let cyclic = Trace::from_addresses("cyc", (0..8_000u64).map(|i| (i % 350) * 64));
        assert_identical(&cyclic, 4);
        let saw = Trace::from_addresses(
            "saw",
            (0..8_000u64).map(|i| {
                let phase = i % 500;
                let pos = if (i / 500) % 2 == 0 {
                    phase
                } else {
                    499 - phase
                };
                pos * 64
            }),
        );
        assert_identical(&saw, 4);
    }

    #[test]
    fn single_block_trace() {
        let trace = Trace::from_addresses("one", std::iter::repeat_n(64u64, 1_000));
        assert_identical(&trace, 4);
    }

    #[test]
    fn empty_stream() {
        let p = ShardedExact::new(3).measure(
            Trace::new("e").stream(),
            Granularity::WORD,
            Binning::log2(),
        );
        assert_eq!(p.accesses, 0);
        assert_eq!(p.distinct_blocks, 0);
        assert!(p.rd.as_histogram().is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = pseudo_trace(20_000, 1_000);
        let engine = ShardedExact::new(8);
        let a = engine.measure(trace.stream(), Granularity::WORD, Binning::log2());
        let b = engine.measure(trace.stream(), Granularity::WORD, Binning::log2());
        assert_eq!(a.rd, b.rd);
        assert_eq!(a.rt, b.rt);
        assert_eq!(a.tracker_bytes, b.tracker_bytes);
    }

    #[test]
    fn shard_hash_spreads_strided_blocks() {
        let mut counts = vec![0u32; 8];
        for block in (0..8_000u64).map(|i| i * 64) {
            counts[shard_of(block, 8)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{c}");
        }
    }
}
