//! Order-statistic structures over access timestamps.
//!
//! Olken's algorithm needs a dynamic set of timestamps supporting three
//! operations: insert a timestamp larger than all present ones, remove an
//! arbitrary present timestamp, and count how many present timestamps exceed
//! a given one. Each structure here trades differently between speed and
//! memory — the comparison is itself one of the workspace's benchmarks.

/// A dynamic set of `u64` timestamps with order-statistic queries.
///
/// Insertions are always of a timestamp strictly greater than every
/// timestamp ever inserted (logical time only moves forward); this is a
/// contract, not a checked invariant, and implementations may exploit it.
pub trait DistanceStructure {
    /// Inserts a timestamp strictly greater than all previously inserted.
    fn insert_latest(&mut self, t: u64);

    /// Removes a timestamp. Returns true if it was present.
    fn remove(&mut self, t: u64) -> bool;

    /// Counts present timestamps strictly greater than `t`.
    ///
    /// Takes `&mut self` because self-adjusting implementations (splay)
    /// restructure on every query.
    fn count_greater(&mut self, t: u64) -> u64;

    /// Number of timestamps currently present.
    fn len(&self) -> u64;

    /// Returns true if the structure is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes used, for memory-bloat accounting.
    fn memory_bytes(&self) -> usize;
}

// ---------------------------------------------------------------------------
// Fenwick tree
// ---------------------------------------------------------------------------

/// A Fenwick (binary indexed) tree over timestamps.
///
/// Memory grows with the *trace length* rather than the footprint, which is
/// exactly the memory-bloat pathology of exhaustive measurement; it is
/// nevertheless the fastest structure here and the default for producing
/// ground truth.
#[derive(Debug, Clone, Default)]
pub struct FenwickStructure {
    /// tree[i] covers a range of timestamp slots; 1-based indexing.
    tree: Vec<i32>,
    present: u64,
}

impl FenwickStructure {
    /// Creates an empty structure.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn grow_for(&mut self, t: u64) {
        let needed = usize::try_from(t).expect("timestamp exceeds usize") + 2;
        if self.tree.len() >= needed {
            return;
        }
        let old = self.tree.len();
        let new_len = needed.next_power_of_two();
        self.tree.resize(new_len, 0);
        // A new node at a power-of-two index `p` covers positions 1..=p;
        // since every present item sits at a position below the old length
        // (≤ p), its correct initial value is the full present count. All
        // other new nodes cover only brand-new (empty) positions.
        if old > 0 {
            let mut p = old; // old length is always a power of two here
            while p < new_len {
                self.tree[p] = i32::try_from(self.present).expect("present fits i32");
                p *= 2;
            }
        }
    }

    fn add(&mut self, t: u64, delta: i32) {
        let mut i = t as usize + 1; // 1-based
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Present timestamps `<= t`.
    fn prefix(&self, t: u64) -> u64 {
        let mut i = (t as usize + 1).min(self.tree.len().saturating_sub(1));
        let mut sum = 0i64;
        while i > 0 {
            sum += i64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        sum as u64
    }

    fn contains(&self, t: u64) -> bool {
        if t as usize + 1 >= self.tree.len() {
            return false;
        }
        self.prefix(t) > if t == 0 { 0 } else { self.prefix(t - 1) }
    }
}

impl DistanceStructure for FenwickStructure {
    fn insert_latest(&mut self, t: u64) {
        self.grow_for(t);
        self.add(t, 1);
        self.present += 1;
    }

    fn remove(&mut self, t: u64) -> bool {
        if !self.contains(t) {
            return false;
        }
        self.add(t, -1);
        self.present -= 1;
        true
    }

    fn count_greater(&mut self, t: u64) -> u64 {
        self.present - self.prefix(t)
    }

    fn len(&self) -> u64 {
        self.present
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.tree.capacity() * std::mem::size_of::<i32>()
    }
}

// ---------------------------------------------------------------------------
// Treap
// ---------------------------------------------------------------------------

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct TreapNode {
    key: u64,
    prio: u64,
    left: u32,
    right: u32,
    size: u32,
}

/// A randomized order-statistic treap.
///
/// Memory is proportional to the number of *present* timestamps (one per
/// tracked block in Olken's algorithm), which models the per-block node
/// cost of instrumentation-based tools.
#[derive(Debug, Clone)]
pub struct TreapStructure {
    arena: Vec<TreapNode>,
    free: Vec<u32>,
    root: u32,
    rng_state: u64,
}

impl TreapStructure {
    /// Creates an empty treap (fixed internal seed; the structure is a
    /// deterministic function of the operation sequence).
    #[must_use]
    pub fn new() -> Self {
        TreapStructure {
            arena: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_prio(&mut self) -> u64 {
        // splitmix64
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.arena[n as usize].size
        }
    }

    fn update(&mut self, n: u32) {
        if n != NIL {
            let s = 1
                + self.size(self.arena[n as usize].left)
                + self.size(self.arena[n as usize].right);
            self.arena[n as usize].size = s;
        }
    }

    fn alloc(&mut self, key: u64) -> u32 {
        let prio = self.next_prio();
        let node = TreapNode {
            key,
            prio,
            left: NIL,
            right: NIL,
            size: 1,
        };
        if let Some(i) = self.free.pop() {
            self.arena[i as usize] = node;
            i
        } else {
            self.arena.push(node);
            (self.arena.len() - 1) as u32
        }
    }

    /// Merge two treaps where every key in `a` < every key in `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.arena[a as usize].prio >= self.arena[b as usize].prio {
            let r = self.arena[a as usize].right;
            let merged = self.merge(r, b);
            self.arena[a as usize].right = merged;
            self.update(a);
            a
        } else {
            let l = self.arena[b as usize].left;
            let merged = self.merge(a, l);
            self.arena[b as usize].left = merged;
            self.update(b);
            b
        }
    }

    /// Split into (< key, >= key).
    fn split(&mut self, n: u32, key: u64) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        if self.arena[n as usize].key < key {
            let r = self.arena[n as usize].right;
            let (a, b) = self.split(r, key);
            self.arena[n as usize].right = a;
            self.update(n);
            (n, b)
        } else {
            let l = self.arena[n as usize].left;
            let (a, b) = self.split(l, key);
            self.arena[n as usize].left = b;
            self.update(n);
            (a, n)
        }
    }
}

impl Default for TreapStructure {
    fn default() -> Self {
        Self::new()
    }
}

impl DistanceStructure for TreapStructure {
    fn insert_latest(&mut self, t: u64) {
        let node = self.alloc(t);
        // Contract: t exceeds all present keys, so a plain merge suffices.
        self.root = self.merge(self.root, node);
    }

    fn remove(&mut self, t: u64) -> bool {
        let (lt, ge) = self.split(self.root, t);
        let (eq, gt) = self.split(ge, t + 1);
        let found = eq != NIL;
        if found {
            // eq is a single node (keys are unique)
            debug_assert_eq!(self.arena[eq as usize].size, 1);
            self.free.push(eq);
        }
        self.root = self.merge(lt, gt);
        found
    }

    fn count_greater(&mut self, t: u64) -> u64 {
        let mut n = self.root;
        let mut count = 0u64;
        while n != NIL {
            let node = self.arena[n as usize];
            if node.key > t {
                count += 1 + u64::from(self.size(node.right));
                n = node.left;
            } else {
                n = node.right;
            }
        }
        count
    }

    fn len(&self) -> u64 {
        u64::from(self.size(self.root))
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.arena.capacity() * std::mem::size_of::<TreapNode>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

// ---------------------------------------------------------------------------
// Splay tree
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct SplayNode {
    key: u64,
    left: u32,
    right: u32,
    parent: u32,
    size: u32,
}

/// A bottom-up splay tree with subtree sizes — the structure used by
/// Olken's original algorithm and by Pin-based reuse-distance tools.
///
/// Self-adjustment makes repeated queries near recent timestamps cheap,
/// which matches the temporal locality of real traces.
#[derive(Debug, Clone)]
pub struct SplayStructure {
    arena: Vec<SplayNode>,
    free: Vec<u32>,
    root: u32,
    present: u64,
}

impl Default for SplayStructure {
    fn default() -> Self {
        Self::new()
    }
}

impl SplayStructure {
    /// Creates an empty splay tree.
    #[must_use]
    pub fn new() -> Self {
        SplayStructure {
            arena: Vec::new(),
            free: Vec::new(),
            root: NIL,
            present: 0,
        }
    }

    fn size(&self, n: u32) -> u32 {
        if n == NIL {
            0
        } else {
            self.arena[n as usize].size
        }
    }

    fn update(&mut self, n: u32) {
        if n != NIL {
            let s = 1
                + self.size(self.arena[n as usize].left)
                + self.size(self.arena[n as usize].right);
            self.arena[n as usize].size = s;
        }
    }

    fn alloc(&mut self, key: u64) -> u32 {
        let node = SplayNode {
            key,
            left: NIL,
            right: NIL,
            parent: NIL,
            size: 1,
        };
        if let Some(i) = self.free.pop() {
            self.arena[i as usize] = node;
            i
        } else {
            self.arena.push(node);
            (self.arena.len() - 1) as u32
        }
    }

    fn rotate(&mut self, x: u32) {
        let p = self.arena[x as usize].parent;
        debug_assert_ne!(p, NIL);
        let g = self.arena[p as usize].parent;
        let x_is_left = self.arena[p as usize].left == x;
        // move x's inner child to p
        let inner = if x_is_left {
            let r = self.arena[x as usize].right;
            self.arena[p as usize].left = r;
            r
        } else {
            let l = self.arena[x as usize].left;
            self.arena[p as usize].right = l;
            l
        };
        if inner != NIL {
            self.arena[inner as usize].parent = p;
        }
        // p becomes x's child
        if x_is_left {
            self.arena[x as usize].right = p;
        } else {
            self.arena[x as usize].left = p;
        }
        self.arena[p as usize].parent = x;
        // reattach to grandparent
        self.arena[x as usize].parent = g;
        if g == NIL {
            self.root = x;
        } else if self.arena[g as usize].left == p {
            self.arena[g as usize].left = x;
        } else {
            self.arena[g as usize].right = x;
        }
        self.update(p);
        self.update(x);
    }

    fn splay(&mut self, x: u32) {
        while self.arena[x as usize].parent != NIL {
            let p = self.arena[x as usize].parent;
            let g = self.arena[p as usize].parent;
            if g == NIL {
                self.rotate(x); // zig
            } else {
                let p_is_left = self.arena[g as usize].left == p;
                let x_is_left = self.arena[p as usize].left == x;
                if p_is_left == x_is_left {
                    self.rotate(p); // zig-zig
                    self.rotate(x);
                } else {
                    self.rotate(x); // zig-zag
                    self.rotate(x);
                }
            }
        }
    }

    /// Finds the node with exactly `key`, splaying the last node visited.
    fn find(&mut self, key: u64) -> Option<u32> {
        let mut n = self.root;
        let mut last = NIL;
        let mut found = None;
        while n != NIL {
            last = n;
            let k = self.arena[n as usize].key;
            if key == k {
                found = Some(n);
                break;
            }
            n = if key < k {
                self.arena[n as usize].left
            } else {
                self.arena[n as usize].right
            };
        }
        if let Some(f) = found {
            self.splay(f);
        } else if last != NIL {
            self.splay(last);
        }
        found
    }

    fn max_of(&mut self, mut n: u32) -> u32 {
        while self.arena[n as usize].right != NIL {
            n = self.arena[n as usize].right;
        }
        n
    }
}

impl DistanceStructure for SplayStructure {
    fn insert_latest(&mut self, t: u64) {
        let node = self.alloc(t);
        if self.root == NIL {
            self.root = node;
        } else {
            // Contract: t is the new maximum — attach as rightmost child.
            let r = self.max_of(self.root);
            self.arena[r as usize].right = node;
            self.arena[node as usize].parent = r;
            // fix sizes along the path handled by splaying the new node
            self.splay(node);
        }
        self.present += 1;
    }

    fn remove(&mut self, t: u64) -> bool {
        let Some(n) = self.find(t) else {
            return false;
        };
        // n is now the root
        let l = self.arena[n as usize].left;
        let r = self.arena[n as usize].right;
        if l != NIL {
            self.arena[l as usize].parent = NIL;
        }
        if r != NIL {
            self.arena[r as usize].parent = NIL;
        }
        self.free.push(n);
        self.present -= 1;
        self.root = if l == NIL {
            r
        } else {
            let m = self.max_of(l);
            self.splay_within(m, l);
            // m is now the root of the left tree and has no right child
            self.arena[m as usize].right = r;
            if r != NIL {
                self.arena[r as usize].parent = m;
            }
            self.update(m);
            m
        };
        true
    }

    fn count_greater(&mut self, t: u64) -> u64 {
        if self.root == NIL {
            return 0;
        }
        // Splay the queried key (or its neighbour) to the root, then read
        // off subtree sizes.
        let found = self.find(t);
        let root = self.root;
        let rk = self.arena[root as usize].key;
        let right_size = u64::from(self.size(self.arena[root as usize].right));
        match found {
            Some(_) => right_size,
            None if rk > t => right_size + 1,
            None => right_size,
        }
    }

    fn len(&self) -> u64 {
        self.present
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.arena.capacity() * std::mem::size_of::<SplayNode>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

impl SplayStructure {
    /// Splays `x` to the root of the subtree currently rooted at `sub`
    /// (whose parent is NIL).
    fn splay_within(&mut self, x: u32, sub: u32) {
        let _ = sub; // x's ancestor chain terminates at `sub`, whose parent is NIL
        while self.arena[x as usize].parent != NIL {
            let p = self.arena[x as usize].parent;
            let g = self.arena[p as usize].parent;
            if g == NIL {
                self.rotate(x);
            } else {
                let p_is_left = self.arena[g as usize].left == p;
                let x_is_left = self.arena[p as usize].left == x;
                if p_is_left == x_is_left {
                    self.rotate(p);
                    self.rotate(x);
                } else {
                    self.rotate(x);
                    self.rotate(x);
                }
            }
        }
    }
}

impl SplayStructure {
    /// Validates parent pointers, size fields and acyclicity, returning the
    /// number of reachable nodes. Test/debug helper.
    #[doc(hidden)]
    pub fn debug_validate(&self) -> u64 {
        fn walk(s: &SplayStructure, n: u32, parent: u32, depth: u32) -> u64 {
            assert!(depth < 10_000, "tree too deep: cycle suspected");
            if n == NIL {
                return 0;
            }
            let node = &s.arena[n as usize];
            assert_eq!(node.parent, parent, "parent pointer of key {}", node.key);
            let l = walk(s, node.left, n, depth + 1);
            let r = walk(s, node.right, n, depth + 1);
            assert_eq!(u64::from(node.size), l + r + 1, "size of key {}", node.key);
            l + r + 1
        }
        walk(self, self.root, NIL, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_structures() -> Vec<(&'static str, Box<dyn DistanceStructure>)> {
        vec![
            ("fenwick", Box::new(FenwickStructure::new())),
            ("treap", Box::new(TreapStructure::new())),
            ("splay", Box::new(SplayStructure::new())),
        ]
    }

    #[test]
    fn basic_operations_each_structure() {
        for (name, mut s) in all_structures() {
            assert!(s.is_empty(), "{name}");
            s.insert_latest(10);
            s.insert_latest(20);
            s.insert_latest(30);
            assert_eq!(s.len(), 3, "{name}");
            assert_eq!(s.count_greater(5), 3, "{name}");
            assert_eq!(s.count_greater(10), 2, "{name}");
            assert_eq!(s.count_greater(20), 1, "{name}");
            assert_eq!(s.count_greater(30), 0, "{name}");
            assert!(s.remove(20), "{name}");
            assert!(!s.remove(20), "{name}: double remove");
            assert_eq!(s.count_greater(10), 1, "{name}");
            assert_eq!(s.len(), 2, "{name}");
        }
    }

    #[test]
    fn remove_absent_returns_false() {
        for (name, mut s) in all_structures() {
            assert!(!s.remove(42), "{name}");
            s.insert_latest(1);
            assert!(!s.remove(0), "{name}");
            assert!(!s.remove(2), "{name}");
            assert_eq!(s.len(), 1, "{name}");
        }
    }

    #[test]
    fn count_greater_on_empty() {
        for (name, mut s) in all_structures() {
            assert_eq!(s.count_greater(0), 0, "{name}");
            assert_eq!(s.count_greater(u64::MAX - 1), 0, "{name}");
        }
    }

    #[test]
    fn olken_like_sequence() {
        // Simulate the exact op pattern Olken performs.
        for (name, mut s) in all_structures() {
            // access a@0 b@1 c@2 a@3: distance of a = count_greater(0) = 2
            s.insert_latest(0);
            s.insert_latest(1);
            s.insert_latest(2);
            assert_eq!(s.count_greater(0), 2, "{name}");
            assert!(s.remove(0), "{name}");
            s.insert_latest(3);
            // access b@4: count_greater(1) = 2 (timestamps 2 and 3)
            assert_eq!(s.count_greater(1), 2, "{name}");
        }
    }

    #[test]
    fn structures_agree_on_random_workload() {
        // Deterministic pseudo-random op sequence, mirrored into all three
        // structures plus a naive Vec oracle.
        let mut fen = FenwickStructure::new();
        let mut treap = TreapStructure::new();
        let mut splay = SplayStructure::new();
        let mut oracle: Vec<u64> = Vec::new();
        let mut state = 12345u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut next_t = 0u64;
        for _ in 0..2000 {
            match rand() % 3 {
                0 => {
                    fen.insert_latest(next_t);
                    treap.insert_latest(next_t);
                    splay.insert_latest(next_t);
                    oracle.push(next_t);
                    next_t += 1 + rand() % 5;
                }
                1 if !oracle.is_empty() => {
                    let victim = oracle[(rand() % oracle.len() as u64) as usize];
                    let o = oracle.iter().position(|&x| x == victim).map(|i| {
                        oracle.swap_remove(i);
                    });
                    assert!(o.is_some());
                    assert!(fen.remove(victim));
                    assert!(treap.remove(victim));
                    assert!(splay.remove(victim));
                }
                _ => {
                    let q = if oracle.is_empty() || rand() % 2 == 0 {
                        rand() % (next_t + 1)
                    } else {
                        oracle[(rand() % oracle.len() as u64) as usize]
                    };
                    let expect = oracle.iter().filter(|&&x| x > q).count() as u64;
                    assert_eq!(fen.count_greater(q), expect, "fenwick q={q}");
                    assert_eq!(treap.count_greater(q), expect, "treap q={q}");
                    assert_eq!(splay.count_greater(q), expect, "splay q={q}");
                    assert_eq!(fen.len(), oracle.len() as u64);
                    assert_eq!(treap.len(), oracle.len() as u64);
                    assert_eq!(splay.len(), oracle.len() as u64);
                }
            }
        }
    }

    #[test]
    fn default_constructed_structures_are_empty_and_usable() {
        // Regression test: a derived Default once left SplayStructure's root
        // pointing at arena slot 0, making the first node its own child.
        let mut fen = FenwickStructure::default();
        let mut treap = TreapStructure::default();
        let mut splay = SplayStructure::default();
        for s in [
            &mut fen as &mut dyn DistanceStructure,
            &mut treap,
            &mut splay,
        ] {
            assert!(s.is_empty());
            s.insert_latest(5);
            s.insert_latest(9);
            assert_eq!(s.count_greater(5), 1);
            assert!(s.remove(5));
            assert_eq!(s.len(), 1);
        }
        splay.debug_validate();
    }

    #[test]
    fn memory_accounting_nonzero_after_inserts() {
        for (name, mut s) in all_structures() {
            let before = s.memory_bytes();
            for t in 0..1000 {
                s.insert_latest(t);
            }
            assert!(s.memory_bytes() > before, "{name}");
        }
    }

    #[test]
    fn treap_reuses_freed_nodes() {
        let mut t = TreapStructure::new();
        for i in 0..100 {
            t.insert_latest(i);
        }
        for i in 0..100 {
            assert!(t.remove(i));
        }
        let cap_after_churn = t.memory_bytes();
        for i in 100..200 {
            t.insert_latest(i);
        }
        assert_eq!(
            t.memory_bytes(),
            cap_after_churn,
            "free list must be reused"
        );
    }

    #[test]
    fn splay_handles_ascending_then_interleaved_removal() {
        let mut s = SplayStructure::new();
        for t in 0..500u64 {
            s.insert_latest(t);
        }
        // remove evens
        for t in (0..500u64).step_by(2) {
            assert!(s.remove(t));
        }
        assert_eq!(s.len(), 250);
        // odds remain: count_greater(249) = number of odds > 249 = 125
        assert_eq!(s.count_greater(249), 125);
        assert_eq!(s.count_greater(499), 0);
    }
}
