//! Olken's exact reuse-distance algorithm.

use crate::fxhash::FxHashMap;
use crate::structure::{DistanceStructure, FenwickStructure};
use rdx_histogram::ReuseDistance;

/// Exact per-access reuse-distance measurement (Olken's algorithm).
///
/// For each access the tracker returns the number of distinct blocks
/// touched since the previous access to the same block, or
/// [`ReuseDistance::INFINITE`] for a block seen for the first time.
///
/// The tracker is generic over the order-statistic structure; the default
/// [`FenwickStructure`] is the fastest, while [`TreapStructure`] and
/// [`SplayStructure`] model the per-block memory behaviour of real
/// instrumentation tools (see [`DistanceStructure`]).
///
/// [`TreapStructure`]: crate::TreapStructure
/// [`SplayStructure`]: crate::SplayStructure
#[derive(Debug, Clone, Default)]
pub struct OlkenTracker<D = FenwickStructure> {
    structure: D,
    // Fx-hashed: one probe per access makes this the tracker's hottest
    // map, and the deterministic hasher keeps runs seed-independent.
    last_access: FxHashMap<u64, u64>,
    time: u64,
}

impl OlkenTracker<FenwickStructure> {
    /// Creates a tracker with the default (Fenwick) structure.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<D: DistanceStructure + Default> OlkenTracker<D> {
    /// Creates a tracker with a specific order-statistic structure.
    #[must_use]
    pub fn with_structure() -> Self {
        OlkenTracker {
            structure: D::default(),
            last_access: FxHashMap::default(),
            time: 0,
        }
    }
}

impl<D: DistanceStructure> OlkenTracker<D> {
    /// Processes an access to `block`, returning its exact reuse distance.
    pub fn access(&mut self, block: u64) -> ReuseDistance {
        let now = self.time;
        self.time += 1;
        let rd = match self.last_access.insert(block, now) {
            None => ReuseDistance::INFINITE,
            Some(prev) => {
                let distinct_since = self.structure.count_greater(prev);
                self.structure.remove(prev);
                ReuseDistance::finite(distinct_since)
            }
        };
        self.structure.insert_latest(now);
        rd
    }

    /// Number of accesses processed so far.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.time
    }

    /// Number of distinct blocks seen so far.
    #[must_use]
    pub fn distinct_blocks(&self) -> u64 {
        self.last_access.len() as u64
    }

    /// Approximate heap bytes used by the tracker — the "memory bloat" an
    /// exhaustive tool pays: one hash-map entry plus one tree node per
    /// distinct block (plus the structure's own bookkeeping).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        // HashMap entry ≈ key + value + bucket control byte, amortized over
        // the load factor; use the conventional 48-byte estimate per entry.
        std::mem::size_of::<Self>()
            + self.last_access.capacity() * 48
            + self.structure.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structure::{SplayStructure, TreapStructure};

    #[test]
    fn textbook_example() {
        // trace: a b c a  → a's reuse distance is 2 (b and c in between)
        let mut o = OlkenTracker::new();
        assert_eq!(o.access(0xa), ReuseDistance::INFINITE);
        assert_eq!(o.access(0xb), ReuseDistance::INFINITE);
        assert_eq!(o.access(0xc), ReuseDistance::INFINITE);
        assert_eq!(o.access(0xa), ReuseDistance::finite(2));
        assert_eq!(o.accesses(), 4);
        assert_eq!(o.distinct_blocks(), 3);
    }

    #[test]
    fn immediate_reuse_is_zero() {
        let mut o = OlkenTracker::new();
        o.access(1);
        assert_eq!(o.access(1), ReuseDistance::finite(0));
        assert_eq!(o.access(1), ReuseDistance::finite(0));
    }

    #[test]
    fn repeated_block_does_not_double_count() {
        // a b b a: distinct between the two a's is just {b} → distance 1
        let mut o = OlkenTracker::new();
        o.access(0xa);
        o.access(0xb);
        o.access(0xb);
        assert_eq!(o.access(0xa), ReuseDistance::finite(1));
    }

    #[test]
    fn cyclic_trace_distance() {
        // cycling over k blocks: steady-state distance k−1
        let k = 10u64;
        let mut o = OlkenTracker::new();
        for round in 0..5 {
            for b in 0..k {
                let rd = o.access(b);
                if round == 0 {
                    assert!(rd.is_infinite());
                } else {
                    assert_eq!(rd, ReuseDistance::finite(k - 1));
                }
            }
        }
    }

    #[test]
    fn all_structures_agree() {
        let trace: Vec<u64> = (0..500u64).map(|i| (i * i + i / 7) % 37).collect();
        let mut fen = OlkenTracker::<FenwickStructure>::with_structure();
        let mut treap = OlkenTracker::<TreapStructure>::with_structure();
        let mut splay = OlkenTracker::<SplayStructure>::with_structure();
        for &b in &trace {
            let d1 = fen.access(b);
            let d2 = treap.access(b);
            let d3 = splay.access(b);
            assert_eq!(d1, d2);
            assert_eq!(d1, d3);
        }
    }

    #[test]
    fn memory_grows_with_footprint_not_length() {
        let mut small = OlkenTracker::<TreapStructure>::with_structure();
        for i in 0..100_000u64 {
            small.access(i % 16);
        }
        let mut large = OlkenTracker::<TreapStructure>::with_structure();
        for i in 0..100_000u64 {
            large.access(i % 16_384);
        }
        assert!(large.memory_bytes() > 10 * small.memory_bytes());
    }
}
