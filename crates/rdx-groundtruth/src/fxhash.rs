//! A vendored FxHash-style hasher for the measurement hot maps.
//!
//! Every exact-measurement path in this crate keys hash maps by block
//! number — a dense, small-integer domain where SipHash's DoS resistance
//! buys nothing and its per-lookup cost dominates the tracker loop (one
//! map probe per access, hundreds of millions of probes per experiment).
//! This module vendors the multiply-rotate hash popularized by the Rust
//! compiler's `FxHashMap` (itself from Firefox): a handful of ALU ops
//! per word, no key-dependent branches, and — unlike `RandomState` — no
//! per-process random seed, so iteration-independent measurements stay
//! reproducible across runs by construction.
//!
//! Only the `Hasher` is custom; the map type is the standard library's
//! `HashMap`, so capacity/occupancy semantics (and therefore the
//! `memory_bytes` accounting built on `capacity()`) are unchanged.

use std::collections::HashMap; // rdx-lint-allow: hash-collections — std map with the deterministic Fx hasher below
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the FxHash scheme (a 64-bit truncation of π scaled —
/// an arbitrary odd constant with good bit dispersion).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash state: one word, folded once per written word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`] (zero-sized, no seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]: drop-in for the default map on
/// integer-keyed hot paths. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_one(x: u64) -> u64 {
        FxBuildHasher::default().hash_one(x)
    }

    #[test]
    fn deterministic_across_instances() {
        // No random state: two independently built hashers agree — the
        // property the default SipHash map deliberately does not have.
        for x in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(hash_one(x), hash_one(x));
        }
        assert_eq!(
            FxBuildHasher::default().hash_one("blocks"),
            FxBuildHasher::default().hash_one("blocks"),
        );
    }

    #[test]
    fn consecutive_keys_disperse() {
        // Block numbers are dense. Multiplication by the odd SEED is a
        // bijection on u64, so full hashes of distinct keys never
        // collide; and because SEED is odd, the low `k` bits (which the
        // std HashMap turns into bucket indices) are also a bijection
        // mod 2^k — consecutive keys land in all-distinct buckets.
        let mut buckets: Vec<u64> = (0..1024u64).map(|i| hash_one(i) & 1023).collect();
        buckets.sort_unstable();
        buckets.dedup();
        assert_eq!(
            buckets.len(),
            1024,
            "low-bit bucket indices of consecutive keys must not collide"
        );
        let mut full: Vec<u64> = (0..4096u64).map(hash_one).collect();
        full.sort_unstable();
        full.dedup();
        assert_eq!(full.len(), 4096);
    }

    #[test]
    fn zero_is_not_a_fixed_point_after_mixing() {
        let mut h = FxHasher::default();
        h.write_u64(0);
        // hash(0) = (0 rot 5 ^ 0) * SEED = 0 — a known FxHash quirk; the
        // map still works because a second write (or any nonzero key)
        // mixes. Assert the quirk so a future "fix" is a conscious one.
        assert_eq!(h.finish(), 0);
        h.write_u64(0);
        assert_eq!(h.finish(), 0);
        let mut h2 = FxHasher::default();
        h2.write_u64(1);
        assert_ne!(h2.finish(), 0);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.insert(0, 99), Some(0));
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        // write() folds little-endian 8-byte words exactly like write_u64.
        let mut a = FxHasher::default();
        a.write(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0123_4567_89ab_cdef);
        assert_eq!(a.finish(), b.finish());
    }
}
