//! Property tests: structures against a naive oracle, Olken against brute
//! force, footprint formula against direct windowed measurement.

use proptest::prelude::*;
use rdx_groundtruth::footprint::direct_average_footprint;
use rdx_groundtruth::{
    brute_force_rd, DistanceStructure, FenwickStructure, FootprintCurve, OlkenTracker,
    SplayStructure, TreapStructure,
};
use rdx_trace::{Granularity, Trace};

#[derive(Debug, Clone)]
enum Op {
    Insert,
    RemoveNth(usize),
    CountGreater(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            2 => Just(Op::Insert),
            1 => any::<usize>().prop_map(Op::RemoveNth),
            2 => (0u64..500).prop_map(Op::CountGreater),
        ],
        1..120,
    )
}

proptest! {
    /// All three order-statistic structures agree with a Vec oracle under
    /// arbitrary interleavings of insert/remove/count.
    #[test]
    fn structures_match_oracle(ops in arb_ops()) {
        let mut fen = FenwickStructure::new();
        let mut treap = TreapStructure::new();
        let mut splay = SplayStructure::new();
        let mut oracle: Vec<u64> = Vec::new();
        let mut t = 0u64;
        for op in ops {
            match op {
                Op::Insert => {
                    fen.insert_latest(t);
                    treap.insert_latest(t);
                    splay.insert_latest(t);
                    oracle.push(t);
                    t += 3;
                }
                Op::RemoveNth(i) if !oracle.is_empty() => {
                    let v = oracle.swap_remove(i % oracle.len());
                    prop_assert!(fen.remove(v));
                    prop_assert!(treap.remove(v));
                    prop_assert!(splay.remove(v));
                }
                Op::RemoveNth(_) => {}
                Op::CountGreater(q) => {
                    let expect = oracle.iter().filter(|&&x| x > q).count() as u64;
                    prop_assert_eq!(fen.count_greater(q), expect);
                    prop_assert_eq!(treap.count_greater(q), expect);
                    prop_assert_eq!(splay.count_greater(q), expect);
                }
            }
            prop_assert_eq!(fen.len(), oracle.len() as u64);
            prop_assert_eq!(treap.len(), oracle.len() as u64);
            prop_assert_eq!(splay.len(), oracle.len() as u64);
        }
    }

    /// Olken with the default structure matches brute force; cold count
    /// equals distinct blocks.
    #[test]
    fn olken_brute_force(blocks in prop::collection::vec(0u64..30, 1..200)) {
        let expect = brute_force_rd(&blocks);
        let mut olken = OlkenTracker::new();
        let mut cold = 0;
        for (i, &b) in blocks.iter().enumerate() {
            let d = olken.access(b);
            prop_assert_eq!(d, expect[i]);
            if d.is_infinite() {
                cold += 1;
            }
        }
        prop_assert_eq!(cold, olken.distinct_blocks());
    }

    /// The footprint curve is monotone, bounded by m, and matches direct
    /// measurement at sampled window sizes.
    #[test]
    fn footprint_properties(blocks in prop::collection::vec(0u64..20, 2..120)) {
        let trace = Trace::from_addresses("f", blocks.iter().copied());
        let fp = FootprintCurve::measure(trace.stream(), Granularity::BYTE);
        let n = blocks.len() as u64;
        let mut last = 0.0;
        for w in 0..=n {
            let v = fp.fp(w);
            prop_assert!(v >= last - 1e-9, "monotone at {}", w);
            prop_assert!(v <= fp.distinct_blocks() as f64 + 1e-9);
            last = v;
        }
        for w in [1u64, n / 2, n] {
            if w >= 1 {
                let direct = direct_average_footprint(&blocks, w as usize);
                prop_assert!((fp.fp(w) - direct).abs() < 1e-6, "w={}", w);
            }
        }
    }
}
