//! The acceptance bar for the sharded engine: on **every** workload in
//! the registry, the parallel sharded ground truth must produce
//! histograms with *identical counts in every bucket* to the sequential
//! Olken measurement — same binning, same observation counts, same cold
//! weight — plus matching access/distinct-block totals.

use rdx_groundtruth::{ExactProfile, ShardedExact};
use rdx_histogram::Binning;
use rdx_trace::Granularity;
use rdx_workloads::{suite, Params};

fn small_params() -> Params {
    Params::default().with_accesses(30_000).with_elements(1_500)
}

#[test]
fn sharded_matches_sequential_on_full_registry() {
    let params = small_params();
    let engine = ShardedExact::new(4).with_chunk_capacity(1 << 12);
    for w in suite() {
        let seq = ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2());
        let par = engine.measure(w.stream(&params), Granularity::WORD, Binning::log2());
        assert_eq!(seq.rd, par.rd, "{}: rd histogram mismatch", w.name);
        assert_eq!(seq.rt, par.rt, "{}: rt histogram mismatch", w.name);
        assert_eq!(seq.accesses, par.accesses, "{}: access count", w.name);
        assert_eq!(
            seq.distinct_blocks, par.distinct_blocks,
            "{}: distinct blocks",
            w.name
        );
    }
}

#[test]
fn sharded_matches_sequential_at_line_granularity_and_linear_binning() {
    let params = small_params();
    let engine = ShardedExact::new(3);
    for name in ["zipf", "stream_triad", "lru_adversary"] {
        let w = rdx_workloads::by_name(name).expect("registry workload");
        let seq = ExactProfile::measure(
            w.stream(&params),
            Granularity::CACHE_LINE,
            Binning::linear(1),
        );
        let par = engine.measure(
            w.stream(&params),
            Granularity::CACHE_LINE,
            Binning::linear(1),
        );
        assert_eq!(seq.rd, par.rd, "{name}: rd histogram mismatch");
        assert_eq!(seq.rt, par.rt, "{name}: rt histogram mismatch");
    }
}
