//! Shared experiment plumbing for the table/figure binaries.
//!
//! Every experiment binary in `src/bin/` regenerates one table or figure of
//! the paper (see `DESIGN.md` for the index). They share workload sizing,
//! profiling configs, a parallel sweep driver, and plain-text table output
//! through this crate.
//!
//! Scale knobs (all experiments honour them):
//!
//! * `RDX_ACCESSES` — accesses per workload (default 4 000 000).
//! * `RDX_ELEMENTS` — footprint in 8-byte elements (default 60 000).
//! * `RDX_PERIOD` — sampling period for accuracy experiments
//!   (default 2048; the overhead experiments always use the paper's 64 Ki
//!   operating point).
//! * `RDX_JOBS` — worker threads for parallel sweeps (default: the
//!   machine's available parallelism).
//!
//! The defaults keep the full suite under a minute; the paper-scale
//! configuration (`RDX_ACCESSES=134217728 RDX_PERIOD=65536`) reproduces the
//! headline operating point exactly at ~100× the runtime.

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use rdx_core::{profile_batch, BatchTask, RdxConfig, RdxProfile};
use rdx_workloads::{suite, Params, WorkloadSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Workload sizing for experiments, honouring the env overrides.
#[must_use]
pub fn experiment_params() -> Params {
    let mut p = Params::default().with_accesses(4_000_000);
    if let Some(v) = env_u64("RDX_ACCESSES") {
        p = p.with_accesses(v);
    }
    if let Some(v) = env_u64("RDX_ELEMENTS") {
        p = p.with_elements(v);
    }
    p
}

/// Profiler config for accuracy experiments (dense sampling so that the
/// default short runs still collect a few hundred pairs).
#[must_use]
pub fn accuracy_config() -> RdxConfig {
    let period = env_u64("RDX_PERIOD").unwrap_or(2048);
    RdxConfig::default().with_period(period)
}

/// Profiler config at the paper's headline operating point (period 64 Ki).
#[must_use]
pub fn paper_config() -> RdxConfig {
    RdxConfig::default()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Worker-thread count for parallel sweeps: `RDX_JOBS` if set (≥ 1),
/// otherwise the machine's available parallelism.
#[must_use]
pub fn jobs() -> usize {
    env_u64("RDX_JOBS").map_or_else(rdx_core::default_jobs, |v| {
        usize::try_from(v.max(1)).unwrap_or(1)
    })
}

/// Runs `f` for every workload in the suite on a bounded pool of
/// [`jobs()`](jobs) threads, returning `(workload, result)` rows in
/// canonical suite order.
pub fn per_workload<T, F>(f: F) -> Vec<(&'static WorkloadSpec, T)>
where
    T: Send,
    F: Fn(&'static WorkloadSpec) -> T + Sync,
{
    per_workload_with_jobs(f, jobs())
}

/// [`per_workload`] with an explicit worker-thread cap.
pub fn per_workload_with_jobs<T, F>(f: F, jobs: usize) -> Vec<(&'static WorkloadSpec, T)>
where
    T: Send,
    F: Fn(&'static WorkloadSpec) -> T + Sync,
{
    let workloads = suite();
    let n = workloads.len();
    let jobs = jobs.clamp(1, n.max(1));
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..jobs {
            let results = &results;
            let f = &f;
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&workloads[i]);
                results.lock().push((i, r));
            });
        }
    })
    .expect("workload thread panicked");
    let mut rows = results.into_inner();
    rows.sort_by_key(|&(i, _)| i);
    rows.into_iter().map(|(i, r)| (&workloads[i], r)).collect()
}

/// Profiles every workload in the suite under `config` on at most `jobs`
/// threads via [`rdx_core::profile_batch`]; rows are in canonical suite
/// order and identical to a sequential run regardless of `jobs`.
#[must_use]
pub fn par_profile_suite(
    config: RdxConfig,
    params: &Params,
    jobs: usize,
) -> Vec<(&'static WorkloadSpec, RdxProfile)> {
    let params = *params;
    let tasks: Vec<_> = suite()
        .iter()
        .map(|w| BatchTask {
            config,
            make_stream: move || w.stream(&params),
        })
        .collect();
    suite().iter().zip(profile_batch(tasks, jobs)).collect()
}

/// Geometric mean of positive values (0 if empty or any non-positive).
#[must_use]
pub fn geo_mean(values: &[f64]) -> f64 {
    rdx_histogram::accuracy::geometric_mean(values).unwrap_or(0.0)
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", out.trim_end());
    };
    line(headers.to_vec());
    line(widths.iter().map(|_| "---").collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_workload_covers_suite_in_order() {
        let rows = per_workload(|w| w.name.len());
        assert_eq!(rows.len(), suite().len());
        for (i, (w, len)) in rows.iter().enumerate() {
            assert_eq!(w.name, suite()[i].name);
            assert_eq!(*len, w.name.len());
        }
    }

    #[test]
    fn per_workload_with_jobs_is_deterministic() {
        let one = per_workload_with_jobs(|w| w.name.to_string(), 1);
        let many = per_workload_with_jobs(|w| w.name.to_string(), 7);
        assert_eq!(one.len(), many.len());
        for ((wa, a), (wb, b)) in one.iter().zip(&many) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_profile_suite_matches_sequential() {
        let params = Params::default().with_accesses(10_000).with_elements(800);
        let config = RdxConfig::default().with_period(512);
        let seq = par_profile_suite(config, &params, 1);
        let par = par_profile_suite(config, &params, 4);
        assert_eq!(seq.len(), suite().len());
        for ((wa, a), (wb, b)) in seq.iter().zip(&par) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(a.rd, b.rd, "{}: rd mismatch across jobs", wa.name);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0512), "5.1%");
    }

    #[test]
    fn default_params() {
        let p = experiment_params();
        assert!(p.accesses >= 1000);
        assert!(p.elements >= 1000);
    }
}
