//! Shared experiment plumbing for the table/figure binaries.
//!
//! Every experiment binary in `src/bin/` regenerates one table or figure of
//! the paper (see `DESIGN.md` for the index). They share workload sizing,
//! profiling configs, a parallel sweep driver, and plain-text table output
//! through this crate.
//!
//! Scale knobs (all experiments honour them):
//!
//! * `RDX_ACCESSES` — accesses per workload (default 4 000 000).
//! * `RDX_ELEMENTS` — footprint in 8-byte elements (default 60 000).
//! * `RDX_PERIOD` — sampling period for accuracy experiments
//!   (default 2048; the overhead experiments always use the paper's 64 Ki
//!   operating point).
//! * `RDX_JOBS` — worker threads for parallel sweeps (default: the
//!   machine's available parallelism).
//!
//! The defaults keep the full suite under a minute; the paper-scale
//! configuration (`RDX_ACCESSES=134217728 RDX_PERIOD=65536`) reproduces the
//! headline operating point exactly at ~100× the runtime.

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use rdx_core::{profile_batch, BatchTask, RdxConfig, RdxProfile};
use rdx_workloads::{suite, Params, WorkloadSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Workload sizing for experiments, honouring the env overrides.
#[must_use]
pub fn experiment_params() -> Params {
    let mut p = Params::default().with_accesses(4_000_000);
    if let Some(v) = env_u64("RDX_ACCESSES") {
        p = p.with_accesses(v);
    }
    if let Some(v) = env_u64("RDX_ELEMENTS") {
        p = p.with_elements(v);
    }
    p
}

/// Profiler config for accuracy experiments (dense sampling so that the
/// default short runs still collect a few hundred pairs).
#[must_use]
pub fn accuracy_config() -> RdxConfig {
    let period = env_u64("RDX_PERIOD").unwrap_or(2048);
    RdxConfig::default().with_period(period)
}

/// Profiler config at the paper's headline operating point (period 64 Ki).
#[must_use]
pub fn paper_config() -> RdxConfig {
    RdxConfig::default()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Worker-thread count for parallel sweeps: `RDX_JOBS` if set (≥ 1),
/// otherwise the machine's available parallelism.
#[must_use]
pub fn jobs() -> usize {
    env_u64("RDX_JOBS").map_or_else(rdx_core::default_jobs, |v| {
        usize::try_from(v.max(1)).unwrap_or(1)
    })
}

/// Runs `f` for every workload in the suite on a bounded pool of
/// [`jobs()`](jobs) threads, returning `(workload, result)` rows in
/// canonical suite order.
pub fn per_workload<T, F>(f: F) -> Vec<(&'static WorkloadSpec, T)>
where
    T: Send,
    F: Fn(&'static WorkloadSpec) -> T + Sync,
{
    per_workload_with_jobs(f, jobs())
}

/// [`per_workload`] with an explicit worker-thread cap.
pub fn per_workload_with_jobs<T, F>(f: F, jobs: usize) -> Vec<(&'static WorkloadSpec, T)>
where
    T: Send,
    F: Fn(&'static WorkloadSpec) -> T + Sync,
{
    let workloads = suite();
    let n = workloads.len();
    let jobs = jobs.clamp(1, n.max(1));
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..jobs {
            let results = &results;
            let f = &f;
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&workloads[i]);
                results.lock().push((i, r));
            });
        }
    })
    .expect("workload thread panicked");
    let mut rows = results.into_inner();
    rows.sort_by_key(|&(i, _)| i);
    rows.into_iter().map(|(i, r)| (&workloads[i], r)).collect()
}

/// Profiles every workload in the suite under `config` on at most `jobs`
/// threads via [`rdx_core::profile_batch`]; rows are in canonical suite
/// order and identical to a sequential run regardless of `jobs`.
#[must_use]
pub fn par_profile_suite(
    config: RdxConfig,
    params: &Params,
    jobs: usize,
) -> Vec<(&'static WorkloadSpec, RdxProfile)> {
    let params = *params;
    let tasks: Vec<_> = suite()
        .iter()
        .map(|w| BatchTask {
            config,
            make_stream: move || w.stream(&params),
        })
        .collect();
    suite().iter().zip(profile_batch(tasks, jobs)).collect()
}

/// Geometric mean of positive values (0 if empty or any non-positive).
#[must_use]
pub fn geo_mean(values: &[f64]) -> f64 {
    rdx_histogram::accuracy::geometric_mean(values).unwrap_or(0.0)
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", out.trim_end());
    };
    line(headers.to_vec());
    line(widths.iter().map(|_| "---").collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Minimum wall time of `reps` runs of `f` (seconds, > 0) and the last
/// result — the standard best-of-N timing loop for the throughput
/// experiments.
pub fn time_min<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64().max(1e-9));
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

/// Timed repetitions for benchmark loops: `RDX_REPS` (≥ 1, default 3).
#[must_use]
pub fn reps() -> u32 {
    std::env::var("RDX_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Options shared by the benchmark binaries that support regression
/// checking (`exp_throughput`, `exp_decode`): `--check` compares fresh
/// numbers against the recorded baseline instead of rewriting it, and
/// `--tol <0..1>` overrides the allowed relative regression.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BenchArgs {
    /// Run in regression-check mode.
    pub check: bool,
    /// Explicit tolerance override (fraction of the recorded value).
    pub tol: Option<f64>,
}

/// Parses this process's command-line arguments into [`BenchArgs`].
///
/// # Errors
///
/// Returns a usage message for unknown flags, a missing or unparseable
/// `--tol` value, or a tolerance outside `[0, 1)`.
pub fn bench_args() -> Result<BenchArgs, String> {
    parse_bench_args(std::env::args().skip(1))
}

/// [`bench_args`] over an explicit argument iterator (testable form).
///
/// # Errors
///
/// Same conditions as [`bench_args`].
pub fn parse_bench_args(args: impl Iterator<Item = String>) -> Result<BenchArgs, String> {
    let mut out = BenchArgs::default();
    let mut it = args;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => out.check = true,
            "--tol" => {
                let value = it.next().ok_or("--tol needs a value")?;
                let tol: f64 = value
                    .parse()
                    .map_err(|_| format!("--tol must be a number in [0, 1) (got '{value}')"))?;
                if !(0.0..1.0).contains(&tol) {
                    return Err(format!("--tol must be in [0, 1) (got {tol})"));
                }
                out.tol = Some(tol);
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}' (expected [--check] [--tol <0..1>])"
                ))
            }
        }
    }
    Ok(out)
}

/// The `RDX_KERNEL` environment override for what "auto" resolves to in
/// the kernel microbenchmarks. CI sets `RDX_KERNEL=scalar` to prove the
/// regression gate actually fails when the fast kernels are disabled.
///
/// # Panics
///
/// Panics when the variable is set to something other than
/// `auto|scalar|swar|simd` — a typo must not silently bench the default.
#[must_use]
pub fn kernel_override() -> Option<rdx_trace::KernelChoice> {
    let value = std::env::var("RDX_KERNEL").ok()?;
    Some(
        rdx_trace::KernelChoice::parse(&value).unwrap_or_else(|| {
            panic!("RDX_KERNEL must be auto, scalar, swar or simd (got '{value}')")
        }),
    )
}

/// Reads the recorded benchmark baseline for `--check` mode:
/// `RDX_BENCH_BASELINE` if set, else `BENCH_rdx.json`.
///
/// # Errors
///
/// Propagates the [`std::io::Error`] from reading the file.
pub fn read_bench_baseline() -> std::io::Result<String> {
    let path = std::env::var("RDX_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_rdx.json".into());
    std::fs::read_to_string(path)
}

/// Resolves the `--check` tolerance: an explicit `--tol` wins, then the
/// recorded section's `check_tolerance` field, then 0.25.
#[must_use]
pub fn resolve_tolerance(args_tol: Option<f64>, baseline: &str, section: &str) -> f64 {
    args_tol
        .or_else(|| json_number(baseline, &[section, "check_tolerance"]))
        .unwrap_or(0.25)
}

/// One regression check: passes when `fresh >= recorded × (1 − tol)` —
/// only a drop below the recorded value by more than the tolerance
/// band fails; being faster than recorded always passes. Prints the
/// verdict either way.
#[must_use]
pub fn check_metric(label: &str, fresh: f64, recorded: f64, tol: f64) -> bool {
    let floor = recorded * (1.0 - tol);
    let ok = fresh >= floor;
    println!(
        "check {label}: fresh {fresh:.3} vs recorded {recorded:.3} \
         (floor {floor:.3}, tolerance {}) ... {}",
        pct(tol),
        if ok { "ok" } else { "REGRESSION" }
    );
    ok
}

/// Walks `path` through nested JSON objects starting at `text` and
/// returns the raw text of the value it lands on. `None` when any step
/// is not an object or the key is absent.
#[must_use]
pub fn json_lookup(text: &str, path: &[&str]) -> Option<String> {
    let mut cur = text.trim().to_string();
    for key in path {
        cur = parse_top_level(&cur)?
            .into_iter()
            .find(|(k, _)| k == key)?
            .1;
    }
    Some(cur)
}

/// [`json_lookup`] specialised to a bare numeric leaf.
#[must_use]
pub fn json_number(text: &str, path: &[&str]) -> Option<f64> {
    json_lookup(text, path)?.parse().ok()
}

/// Rewrites one top-level section of the benchmark results file
/// (`BENCH_rdx.json`, path override `RDX_BENCH_OUT`), preserving every
/// other section so the experiment binaries can each own one key.
/// Returns the path written.
///
/// # Errors
///
/// Propagates the [`std::io::Error`] from writing the file.
pub fn update_bench_json(section: &str, body: &str) -> std::io::Result<String> {
    update_bench_json_at(&bench_out_path("BENCH_rdx.json"), section, body)
}

/// The benchmark results path: `RDX_BENCH_OUT` if set, else `default`.
#[must_use]
pub fn bench_out_path(default: &str) -> String {
    std::env::var("RDX_BENCH_OUT").unwrap_or_else(|_| default.into())
}

/// [`update_bench_json`] against an explicit path (check mode writes
/// its fresh numbers to a separate artifact file, not the baseline).
///
/// # Errors
///
/// Propagates the [`std::io::Error`] from writing the file.
pub fn update_bench_json_at(path: &str, section: &str, body: &str) -> std::io::Result<String> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    std::fs::write(path, merge_json_section(&existing, section, body))?;
    Ok(path.to_string())
}

/// [`update_bench_json`], but any top-level key of the *recorded*
/// section listed in `keep_keys` that the new `body` does not produce
/// is carried over instead of destroyed — so a partial re-run (or a
/// hand-tuned `check_tolerance`) survives the merge.
///
/// # Errors
///
/// Propagates the [`std::io::Error`] from writing the file.
pub fn update_bench_json_keeping(
    section: &str,
    body: &str,
    keep_keys: &[&str],
) -> std::io::Result<String> {
    let out = bench_out_path("BENCH_rdx.json");
    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    let body = keep_section_keys(&existing, section, body, keep_keys);
    std::fs::write(&out, merge_json_section(&existing, section, &body))?;
    Ok(out)
}

/// Returns `body` with every `keep_keys` entry that exists at the top
/// level of `existing`'s `section` but not in `body` appended to it.
/// Falls back to `body` verbatim when either side fails to parse as an
/// object or nothing needs keeping.
#[must_use]
pub fn keep_section_keys(existing: &str, section: &str, body: &str, keep_keys: &[&str]) -> String {
    let kept = json_lookup(existing, &[section])
        .and_then(|old| Some((parse_top_level(&old)?, parse_top_level(body)?)))
        .map(|(old_entries, mut new_entries)| {
            let mut added = false;
            for &key in keep_keys {
                if new_entries.iter().any(|(k, _)| k == key) {
                    continue;
                }
                if let Some(entry) = old_entries.iter().find(|(k, _)| k == key) {
                    new_entries.push(entry.clone());
                    added = true;
                }
            }
            (new_entries, added)
        });
    match kept {
        Some((entries, true)) => {
            let mut s = String::from("{\n");
            for (i, (key, value)) in entries.iter().enumerate() {
                let comma = if i + 1 == entries.len() { "" } else { "," };
                s.push_str(&format!("    \"{key}\": {value}{comma}\n"));
            }
            s.push_str("  }");
            s
        }
        _ => body.trim().to_string(),
    }
}

/// Returns `existing` (a JSON object, possibly empty or unparseable —
/// then treated as `{}`) with the top-level key `section` replaced by,
/// or appended as, `body` (a complete JSON value). The workspace
/// deliberately vendors no JSON crate, so this is a minimal structural
/// scan: it understands strings (with escapes) and balanced `{}`/`[]`,
/// which is all the hand-rolled benchmark output uses.
#[must_use]
pub fn merge_json_section(existing: &str, section: &str, body: &str) -> String {
    let mut entries = parse_top_level(existing).unwrap_or_default();
    let body = body.trim().to_string();
    if let Some(entry) = entries.iter_mut().find(|(k, _)| k == section) {
        entry.1 = body;
    } else {
        entries.push((section.to_string(), body));
    }
    let mut s = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    s.push_str("}\n");
    s
}

/// Splits the top level of a JSON object into `(key, raw value text)`
/// pairs. `None` when `existing` is not a single object.
fn parse_top_level(existing: &str) -> Option<Vec<(String, String)>> {
    let bytes = existing.as_bytes();
    let mut i = 0;
    skip_ws(bytes, &mut i);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut entries = Vec::new();
    loop {
        skip_ws(bytes, &mut i);
        match bytes.get(i)? {
            b'}' => return Some(entries),
            b'"' => {
                let key = read_string(existing, &mut i)?;
                skip_ws(bytes, &mut i);
                if bytes.get(i) != Some(&b':') {
                    return None;
                }
                i += 1;
                skip_ws(bytes, &mut i);
                let start = i;
                read_value(existing, &mut i)?;
                entries.push((key, existing.get(start..i)?.trim().to_string()));
                skip_ws(bytes, &mut i);
                if bytes.get(i) == Some(&b',') {
                    i += 1;
                }
            }
            _ => return None,
        }
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes.get(*i).is_some_and(u8::is_ascii_whitespace) {
        *i += 1;
    }
}

/// Reads the quoted string starting at `*i` (which must be `"`),
/// honouring backslash escapes; leaves `*i` just past the close quote.
fn read_string(s: &str, i: &mut usize) -> Option<String> {
    let bytes = s.as_bytes();
    let start = *i + 1;
    *i = start;
    while let Some(&b) = bytes.get(*i) {
        match b {
            b'\\' => *i += 2,
            b'"' => {
                let out = s.get(start..*i)?.to_string();
                *i += 1;
                return Some(out);
            }
            _ => *i += 1,
        }
    }
    None
}

/// Advances `*i` past one JSON value: a string, a balanced `{}`/`[]`
/// composite (string-aware), or a bare scalar.
fn read_value(s: &str, i: &mut usize) -> Option<()> {
    let bytes = s.as_bytes();
    match bytes.get(*i)? {
        b'"' => {
            read_string(s, i)?;
            Some(())
        }
        b'{' | b'[' => {
            let mut depth = 0usize;
            while let Some(&b) = bytes.get(*i) {
                match b {
                    b'"' => {
                        read_string(s, i)?;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth = depth.checked_sub(1)?;
                        if depth == 0 {
                            *i += 1;
                            return Some(());
                        }
                    }
                    _ => {}
                }
                *i += 1;
            }
            None
        }
        _ => {
            // Bare scalar: number / true / false / null.
            while bytes
                .get(*i)
                .is_some_and(|&b| !b.is_ascii_whitespace() && b != b',' && b != b'}' && b != b']')
            {
                *i += 1;
            }
            Some(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_workload_covers_suite_in_order() {
        let rows = per_workload(|w| w.name.len());
        assert_eq!(rows.len(), suite().len());
        for (i, (w, len)) in rows.iter().enumerate() {
            assert_eq!(w.name, suite()[i].name);
            assert_eq!(*len, w.name.len());
        }
    }

    #[test]
    fn per_workload_with_jobs_is_deterministic() {
        let one = per_workload_with_jobs(|w| w.name.to_string(), 1);
        let many = per_workload_with_jobs(|w| w.name.to_string(), 7);
        assert_eq!(one.len(), many.len());
        for ((wa, a), (wb, b)) in one.iter().zip(&many) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_profile_suite_matches_sequential() {
        let params = Params::default().with_accesses(10_000).with_elements(800);
        let config = RdxConfig::default().with_period(512);
        let seq = par_profile_suite(config, &params, 1);
        let par = par_profile_suite(config, &params, 4);
        assert_eq!(seq.len(), suite().len());
        for ((wa, a), (wb, b)) in seq.iter().zip(&par) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(a.rd, b.rd, "{}: rd mismatch across jobs", wa.name);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0512), "5.1%");
    }

    #[test]
    fn default_params() {
        let p = experiment_params();
        assert!(p.accesses >= 1000);
        assert!(p.elements >= 1000);
    }

    #[test]
    fn merge_inserts_into_empty_or_garbage() {
        for existing in ["", "not json at all", "[1,2]"] {
            let merged = merge_json_section(existing, "decode", "{\"x\": 1}");
            assert_eq!(
                merged, "{\n  \"decode\": {\"x\": 1}\n}\n",
                "from {existing:?}"
            );
        }
    }

    #[test]
    fn merge_replaces_section_and_preserves_others() {
        let first = merge_json_section("", "throughput", "{\"max\": 5.7, \"rows\": [1, 2]}");
        let both = merge_json_section(&first, "decode", "{\"speedup\": 3.2}");
        assert!(both.contains("\"throughput\": {\"max\": 5.7, \"rows\": [1, 2]}"));
        assert!(both.contains("\"decode\": {\"speedup\": 3.2}"));
        let replaced = merge_json_section(&both, "throughput", "{\"max\": 9.9}");
        assert!(replaced.contains("\"throughput\": {\"max\": 9.9}"));
        assert!(!replaced.contains("5.7"));
        assert!(replaced.contains("\"decode\": {\"speedup\": 3.2}"));
    }

    #[test]
    fn merge_handles_nesting_strings_and_scalars() {
        let tricky = concat!(
            "{\n",
            "  \"a\": {\"s\": \"br{ace\\\" ]\", \"arr\": [{\"k\": [1, 2]}, 3]},\n",
            "  \"b\": true,\n",
            "  \"c\": -1.5e3\n",
            "}\n"
        );
        let merged = merge_json_section(tricky, "b", "false");
        assert!(merged.contains("\"a\": {\"s\": \"br{ace\\\" ]\", \"arr\": [{\"k\": [1, 2]}, 3]}"));
        assert!(merged.contains("\"b\": false"));
        assert!(merged.contains("\"c\": -1.5e3"));
        // Merging is idempotent-stable: a second merge of the same
        // section parses its own output.
        let again = merge_json_section(&merged, "b", "false");
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_migrates_legacy_flat_file_by_keeping_keys() {
        // The pre-sectioned BENCH_rdx.json was one flat object; merging
        // a new section must not destroy the flat keys.
        let legacy =
            "{\n  \"accesses\": 4000000,\n  \"workloads\": [\n    {\"name\": \"x\"}\n  ]\n}\n";
        let merged = merge_json_section(legacy, "decode", "{\"ok\": 1}");
        assert!(merged.contains("\"accesses\": 4000000"));
        assert!(merged.contains("{\"name\": \"x\"}"));
        assert!(merged.contains("\"decode\": {\"ok\": 1}"));
    }

    #[test]
    fn time_min_returns_positive_and_result() {
        let (secs, out) = time_min(2, || 41 + 1);
        assert!(secs > 0.0);
        assert_eq!(out, 42);
    }

    fn args(list: &[&str]) -> Result<BenchArgs, String> {
        parse_bench_args(list.iter().map(ToString::to_string))
    }

    #[test]
    fn bench_args_parse_and_validate() {
        assert_eq!(args(&[]).unwrap(), BenchArgs::default());
        assert_eq!(
            args(&["--check"]).unwrap(),
            BenchArgs {
                check: true,
                tol: None
            }
        );
        let both = args(&["--check", "--tol", "0.1"]).unwrap();
        assert!(both.check);
        assert_eq!(both.tol, Some(0.1));
        assert!(args(&["--tol"]).unwrap_err().contains("needs a value"));
        assert!(args(&["--tol", "nope"]).unwrap_err().contains("number"));
        assert!(args(&["--tol", "1.5"]).unwrap_err().contains("[0, 1)"));
        assert!(args(&["--frobnicate"]).unwrap_err().contains("unknown"));
    }

    const BASELINE: &str = concat!(
        "{\n",
        "  \"decode\": {\n",
        "    \"kernel\": \"swar\",\n",
        "    \"kernel_speedup\": 3.25,\n",
        "    \"check_tolerance\": 0.4,\n",
        "    \"decode_only\": {\"bulk_speedup\": 4.962}\n",
        "  }\n",
        "}\n"
    );

    #[test]
    fn json_lookup_walks_nested_objects() {
        assert_eq!(
            json_lookup(BASELINE, &["decode", "kernel"]).as_deref(),
            Some("\"swar\"")
        );
        assert_eq!(
            json_number(BASELINE, &["decode", "kernel_speedup"]),
            Some(3.25)
        );
        assert_eq!(
            json_number(BASELINE, &["decode", "decode_only", "bulk_speedup"]),
            Some(4.962)
        );
        assert_eq!(json_number(BASELINE, &["decode", "missing"]), None);
        assert_eq!(json_number(BASELINE, &["nope", "kernel_speedup"]), None);
        // Quoted strings are not numbers.
        assert_eq!(json_number(BASELINE, &["decode", "kernel"]), None);
    }

    #[test]
    fn resolve_tolerance_prefers_flag_then_recorded_then_default() {
        assert_eq!(resolve_tolerance(Some(0.1), BASELINE, "decode"), 0.1);
        assert_eq!(resolve_tolerance(None, BASELINE, "decode"), 0.4);
        assert_eq!(resolve_tolerance(None, BASELINE, "throughput"), 0.25);
        assert_eq!(resolve_tolerance(None, "", "decode"), 0.25);
    }

    #[test]
    fn check_metric_fails_only_below_the_band() {
        assert!(check_metric("m", 3.2, 3.25, 0.25)); // small dip: inside band
        assert!(check_metric("m", 9.9, 3.25, 0.25)); // faster always passes
        assert!(!check_metric("m", 1.0, 3.25, 0.25)); // collapse: below floor
        assert!(check_metric("m", 3.25 * 0.75, 3.25, 0.25)); // exactly at floor
    }

    #[test]
    fn keep_section_keys_restores_recorded_fields_missing_from_the_new_body() {
        // A decode-only re-run that (like an older binary) renders no
        // kernel/tolerance fields must not destroy the recorded ones.
        let body = "{\n    \"accesses\": 9,\n    \"decode_only\": {\"bulk_speedup\": 5.0}\n  }";
        let kept = keep_section_keys(
            BASELINE,
            "decode",
            body,
            &["kernel", "kernel_speedup", "check_tolerance"],
        );
        let merged = merge_json_section(BASELINE, "decode", &kept);
        assert_eq!(json_number(&merged, &["decode", "accesses"]), Some(9.0));
        assert_eq!(
            json_number(&merged, &["decode", "decode_only", "bulk_speedup"]),
            Some(5.0)
        );
        assert_eq!(
            json_lookup(&merged, &["decode", "kernel"]).as_deref(),
            Some("\"swar\"")
        );
        assert_eq!(
            json_number(&merged, &["decode", "kernel_speedup"]),
            Some(3.25)
        );
        assert_eq!(
            json_number(&merged, &["decode", "check_tolerance"]),
            Some(0.4)
        );
    }

    #[test]
    fn keep_section_keys_never_overrides_fresh_values() {
        let body = "{\n    \"kernel\": \"scalar\",\n    \"kernel_speedup\": 1.0\n  }";
        let kept = keep_section_keys(BASELINE, "decode", body, &["kernel", "kernel_speedup"]);
        assert_eq!(kept, body.trim());
        // No recorded section at all: body passes through verbatim.
        assert_eq!(
            keep_section_keys("", "decode", body, &["kernel"]),
            body.trim()
        );
        // Non-object body: untouched.
        assert_eq!(
            keep_section_keys(BASELINE, "decode", "42", &["kernel"]),
            "42"
        );
    }
}
