//! Shared experiment plumbing for the table/figure binaries.
//!
//! Every experiment binary in `src/bin/` regenerates one table or figure of
//! the paper (see `DESIGN.md` for the index). They share workload sizing,
//! profiling configs, a parallel sweep driver, and plain-text table output
//! through this crate.
//!
//! Scale knobs (all experiments honour them):
//!
//! * `RDX_ACCESSES` — accesses per workload (default 4 000 000).
//! * `RDX_ELEMENTS` — footprint in 8-byte elements (default 60 000).
//! * `RDX_PERIOD` — sampling period for accuracy experiments
//!   (default 2048; the overhead experiments always use the paper's 64 Ki
//!   operating point).
//! * `RDX_JOBS` — worker threads for parallel sweeps (default: the
//!   machine's available parallelism).
//!
//! The defaults keep the full suite under a minute; the paper-scale
//! configuration (`RDX_ACCESSES=134217728 RDX_PERIOD=65536`) reproduces the
//! headline operating point exactly at ~100× the runtime.

#![forbid(unsafe_code)]

use parking_lot::Mutex;
use rdx_core::{profile_batch, BatchTask, RdxConfig, RdxProfile};
use rdx_workloads::{suite, Params, WorkloadSpec};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Workload sizing for experiments, honouring the env overrides.
#[must_use]
pub fn experiment_params() -> Params {
    let mut p = Params::default().with_accesses(4_000_000);
    if let Some(v) = env_u64("RDX_ACCESSES") {
        p = p.with_accesses(v);
    }
    if let Some(v) = env_u64("RDX_ELEMENTS") {
        p = p.with_elements(v);
    }
    p
}

/// Profiler config for accuracy experiments (dense sampling so that the
/// default short runs still collect a few hundred pairs).
#[must_use]
pub fn accuracy_config() -> RdxConfig {
    let period = env_u64("RDX_PERIOD").unwrap_or(2048);
    RdxConfig::default().with_period(period)
}

/// Profiler config at the paper's headline operating point (period 64 Ki).
#[must_use]
pub fn paper_config() -> RdxConfig {
    RdxConfig::default()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// Worker-thread count for parallel sweeps: `RDX_JOBS` if set (≥ 1),
/// otherwise the machine's available parallelism.
#[must_use]
pub fn jobs() -> usize {
    env_u64("RDX_JOBS").map_or_else(rdx_core::default_jobs, |v| {
        usize::try_from(v.max(1)).unwrap_or(1)
    })
}

/// Runs `f` for every workload in the suite on a bounded pool of
/// [`jobs()`](jobs) threads, returning `(workload, result)` rows in
/// canonical suite order.
pub fn per_workload<T, F>(f: F) -> Vec<(&'static WorkloadSpec, T)>
where
    T: Send,
    F: Fn(&'static WorkloadSpec) -> T + Sync,
{
    per_workload_with_jobs(f, jobs())
}

/// [`per_workload`] with an explicit worker-thread cap.
pub fn per_workload_with_jobs<T, F>(f: F, jobs: usize) -> Vec<(&'static WorkloadSpec, T)>
where
    T: Send,
    F: Fn(&'static WorkloadSpec) -> T + Sync,
{
    let workloads = suite();
    let n = workloads.len();
    let jobs = jobs.clamp(1, n.max(1));
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..jobs {
            let results = &results;
            let f = &f;
            let cursor = &cursor;
            scope.spawn(move |_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&workloads[i]);
                results.lock().push((i, r));
            });
        }
    })
    .expect("workload thread panicked");
    let mut rows = results.into_inner();
    rows.sort_by_key(|&(i, _)| i);
    rows.into_iter().map(|(i, r)| (&workloads[i], r)).collect()
}

/// Profiles every workload in the suite under `config` on at most `jobs`
/// threads via [`rdx_core::profile_batch`]; rows are in canonical suite
/// order and identical to a sequential run regardless of `jobs`.
#[must_use]
pub fn par_profile_suite(
    config: RdxConfig,
    params: &Params,
    jobs: usize,
) -> Vec<(&'static WorkloadSpec, RdxProfile)> {
    let params = *params;
    let tasks: Vec<_> = suite()
        .iter()
        .map(|w| BatchTask {
            config,
            make_stream: move || w.stream(&params),
        })
        .collect();
    suite().iter().zip(profile_batch(tasks, jobs)).collect()
}

/// Geometric mean of positive values (0 if empty or any non-positive).
#[must_use]
pub fn geo_mean(values: &[f64]) -> f64 {
    rdx_histogram::accuracy::geometric_mean(values).unwrap_or(0.0)
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", out.trim_end());
    };
    line(headers.to_vec());
    line(widths.iter().map(|_| "---").collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// Formats a ratio as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Minimum wall time of `reps` runs of `f` (seconds, > 0) and the last
/// result — the standard best-of-N timing loop for the throughput
/// experiments.
pub fn time_min<T>(reps: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = std::time::Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64().max(1e-9));
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

/// Timed repetitions for benchmark loops: `RDX_REPS` (≥ 1, default 3).
#[must_use]
pub fn reps() -> u32 {
    std::env::var("RDX_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1)
}

/// Rewrites one top-level section of the benchmark results file
/// (`BENCH_rdx.json`, path override `RDX_BENCH_OUT`), preserving every
/// other section so the experiment binaries can each own one key.
/// Returns the path written.
///
/// # Errors
///
/// Propagates the [`std::io::Error`] from writing the file.
pub fn update_bench_json(section: &str, body: &str) -> std::io::Result<String> {
    let out = std::env::var("RDX_BENCH_OUT").unwrap_or_else(|_| "BENCH_rdx.json".into());
    let existing = std::fs::read_to_string(&out).unwrap_or_default();
    std::fs::write(&out, merge_json_section(&existing, section, body))?;
    Ok(out)
}

/// Returns `existing` (a JSON object, possibly empty or unparseable —
/// then treated as `{}`) with the top-level key `section` replaced by,
/// or appended as, `body` (a complete JSON value). The workspace
/// deliberately vendors no JSON crate, so this is a minimal structural
/// scan: it understands strings (with escapes) and balanced `{}`/`[]`,
/// which is all the hand-rolled benchmark output uses.
#[must_use]
pub fn merge_json_section(existing: &str, section: &str, body: &str) -> String {
    let mut entries = parse_top_level(existing).unwrap_or_default();
    let body = body.trim().to_string();
    if let Some(entry) = entries.iter_mut().find(|(k, _)| k == section) {
        entry.1 = body;
    } else {
        entries.push((section.to_string(), body));
    }
    let mut s = String::from("{\n");
    for (i, (key, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    s.push_str("}\n");
    s
}

/// Splits the top level of a JSON object into `(key, raw value text)`
/// pairs. `None` when `existing` is not a single object.
fn parse_top_level(existing: &str) -> Option<Vec<(String, String)>> {
    let bytes = existing.as_bytes();
    let mut i = 0;
    skip_ws(bytes, &mut i);
    if bytes.get(i) != Some(&b'{') {
        return None;
    }
    i += 1;
    let mut entries = Vec::new();
    loop {
        skip_ws(bytes, &mut i);
        match bytes.get(i)? {
            b'}' => return Some(entries),
            b'"' => {
                let key = read_string(existing, &mut i)?;
                skip_ws(bytes, &mut i);
                if bytes.get(i) != Some(&b':') {
                    return None;
                }
                i += 1;
                skip_ws(bytes, &mut i);
                let start = i;
                read_value(existing, &mut i)?;
                entries.push((key, existing.get(start..i)?.trim().to_string()));
                skip_ws(bytes, &mut i);
                if bytes.get(i) == Some(&b',') {
                    i += 1;
                }
            }
            _ => return None,
        }
    }
}

fn skip_ws(bytes: &[u8], i: &mut usize) {
    while bytes.get(*i).is_some_and(u8::is_ascii_whitespace) {
        *i += 1;
    }
}

/// Reads the quoted string starting at `*i` (which must be `"`),
/// honouring backslash escapes; leaves `*i` just past the close quote.
fn read_string(s: &str, i: &mut usize) -> Option<String> {
    let bytes = s.as_bytes();
    let start = *i + 1;
    *i = start;
    while let Some(&b) = bytes.get(*i) {
        match b {
            b'\\' => *i += 2,
            b'"' => {
                let out = s.get(start..*i)?.to_string();
                *i += 1;
                return Some(out);
            }
            _ => *i += 1,
        }
    }
    None
}

/// Advances `*i` past one JSON value: a string, a balanced `{}`/`[]`
/// composite (string-aware), or a bare scalar.
fn read_value(s: &str, i: &mut usize) -> Option<()> {
    let bytes = s.as_bytes();
    match bytes.get(*i)? {
        b'"' => {
            read_string(s, i)?;
            Some(())
        }
        b'{' | b'[' => {
            let mut depth = 0usize;
            while let Some(&b) = bytes.get(*i) {
                match b {
                    b'"' => {
                        read_string(s, i)?;
                        continue;
                    }
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth = depth.checked_sub(1)?;
                        if depth == 0 {
                            *i += 1;
                            return Some(());
                        }
                    }
                    _ => {}
                }
                *i += 1;
            }
            None
        }
        _ => {
            // Bare scalar: number / true / false / null.
            while bytes
                .get(*i)
                .is_some_and(|&b| !b.is_ascii_whitespace() && b != b',' && b != b'}' && b != b']')
            {
                *i += 1;
            }
            Some(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_workload_covers_suite_in_order() {
        let rows = per_workload(|w| w.name.len());
        assert_eq!(rows.len(), suite().len());
        for (i, (w, len)) in rows.iter().enumerate() {
            assert_eq!(w.name, suite()[i].name);
            assert_eq!(*len, w.name.len());
        }
    }

    #[test]
    fn per_workload_with_jobs_is_deterministic() {
        let one = per_workload_with_jobs(|w| w.name.to_string(), 1);
        let many = per_workload_with_jobs(|w| w.name.to_string(), 7);
        assert_eq!(one.len(), many.len());
        for ((wa, a), (wb, b)) in one.iter().zip(&many) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn par_profile_suite_matches_sequential() {
        let params = Params::default().with_accesses(10_000).with_elements(800);
        let config = RdxConfig::default().with_period(512);
        let seq = par_profile_suite(config, &params, 1);
        let par = par_profile_suite(config, &params, 4);
        assert_eq!(seq.len(), suite().len());
        for ((wa, a), (wb, b)) in seq.iter().zip(&par) {
            assert_eq!(wa.name, wb.name);
            assert_eq!(a.rd, b.rd, "{}: rd mismatch across jobs", wa.name);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0512), "5.1%");
    }

    #[test]
    fn default_params() {
        let p = experiment_params();
        assert!(p.accesses >= 1000);
        assert!(p.elements >= 1000);
    }

    #[test]
    fn merge_inserts_into_empty_or_garbage() {
        for existing in ["", "not json at all", "[1,2]"] {
            let merged = merge_json_section(existing, "decode", "{\"x\": 1}");
            assert_eq!(
                merged, "{\n  \"decode\": {\"x\": 1}\n}\n",
                "from {existing:?}"
            );
        }
    }

    #[test]
    fn merge_replaces_section_and_preserves_others() {
        let first = merge_json_section("", "throughput", "{\"max\": 5.7, \"rows\": [1, 2]}");
        let both = merge_json_section(&first, "decode", "{\"speedup\": 3.2}");
        assert!(both.contains("\"throughput\": {\"max\": 5.7, \"rows\": [1, 2]}"));
        assert!(both.contains("\"decode\": {\"speedup\": 3.2}"));
        let replaced = merge_json_section(&both, "throughput", "{\"max\": 9.9}");
        assert!(replaced.contains("\"throughput\": {\"max\": 9.9}"));
        assert!(!replaced.contains("5.7"));
        assert!(replaced.contains("\"decode\": {\"speedup\": 3.2}"));
    }

    #[test]
    fn merge_handles_nesting_strings_and_scalars() {
        let tricky = concat!(
            "{\n",
            "  \"a\": {\"s\": \"br{ace\\\" ]\", \"arr\": [{\"k\": [1, 2]}, 3]},\n",
            "  \"b\": true,\n",
            "  \"c\": -1.5e3\n",
            "}\n"
        );
        let merged = merge_json_section(tricky, "b", "false");
        assert!(merged.contains("\"a\": {\"s\": \"br{ace\\\" ]\", \"arr\": [{\"k\": [1, 2]}, 3]}"));
        assert!(merged.contains("\"b\": false"));
        assert!(merged.contains("\"c\": -1.5e3"));
        // Merging is idempotent-stable: a second merge of the same
        // section parses its own output.
        let again = merge_json_section(&merged, "b", "false");
        assert_eq!(merged, again);
    }

    #[test]
    fn merge_migrates_legacy_flat_file_by_keeping_keys() {
        // The pre-sectioned BENCH_rdx.json was one flat object; merging
        // a new section must not destroy the flat keys.
        let legacy =
            "{\n  \"accesses\": 4000000,\n  \"workloads\": [\n    {\"name\": \"x\"}\n  ]\n}\n";
        let merged = merge_json_section(legacy, "decode", "{\"ok\": 1}");
        assert!(merged.contains("\"accesses\": 4000000"));
        assert!(merged.contains("{\"name\": \"x\"}"));
        assert!(merged.contains("\"decode\": {\"ok\": 1}"));
    }

    #[test]
    fn time_min_returns_positive_and_result() {
        let (secs, out) = time_min(2, || 41 + 1);
        assert!(secs > 0.0);
        assert_eq!(out, 42);
    }
}
