//! T2 — overhead contrast: RDX vs exhaustive instrumentation vs SHARDS.
//!
//! The paper's framing: exhaustive tools cost orders of magnitude in time
//! and bloat memory with per-block tracking state; RDX costs ≈5 % time and
//! a fixed few MiB. SHARDS cuts instrumentation *memory* but still
//! observes every access inline.

use memsim::CostModel;
use rdx_baselines::{FullInstrumentation, Shards};
use rdx_bench::{experiment_params, pct, per_workload, print_table};
use rdx_core::RdxRunner;
use rdx_trace::{Granularity, TraceStats};

fn main() {
    let params = experiment_params();
    let config = rdx_bench::paper_config();
    let cost = CostModel::default();
    println!(
        "T2: time/memory cost of reuse-distance tools ({} accesses)\n",
        params.accesses
    );
    let rows = per_workload(|w| {
        let stats = TraceStats::measure(w.stream(&params), Granularity::WORD);
        let app_bytes = stats.footprint_bytes().max(1);
        let rdx = RdxRunner::new(config).profile(w.stream(&params));
        let full = FullInstrumentation::new().profile(w.stream(&params));
        let shards = Shards::new(0.01).profile(w.stream(&params));
        vec![
            w.name.to_string(),
            format!("{:.1}%", rdx.time_overhead * 100.0),
            pct(rdx.memory_overhead(app_bytes)),
            format!(
                "{:.0}x",
                full.slowdown(cost.cycles_per_access, cost.cycles_per_instrumented_access)
            ),
            pct(full.tool_bytes as f64 / app_bytes as f64),
            format!(
                "{:.0}x",
                shards.slowdown(cost.cycles_per_access, cost.cycles_per_instrumented_access)
            ),
            pct(shards.tool_bytes as f64 / app_bytes as f64),
        ]
    });
    print_table(
        &[
            "workload",
            "rdx time",
            "rdx mem",
            "full time",
            "full mem",
            "shards time",
            "shards mem",
        ],
        &rows.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
    );
    println!("\npaper claim: instrumentation costs orders of magnitude; RDX ≈5%/7%.");
    println!("(RDX mem uses the small accuracy-scale footprint here; F7 uses the");
    println!(" paper-scale 32 MiB footprint where the ratio lands near 7%.)");
}
