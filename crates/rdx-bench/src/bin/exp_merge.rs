//! Fleet aggregation: merge-kernel contrast and tree-reduction scaling.
//!
//! **Kernel rates.** A cache-resident tile of dense rows (sized to fit
//! L1, the shape a freshly decoded shard profile has while it is being
//! folded) is reduced by each available merge kernel driven directly
//! through [`rdx_core::merge_kernel`], in leaf-width groups of
//! [`GROUP`] rows per call — exactly the inner loop of the tree
//! reduction. Keeping the tile in L1 makes the contrast measure
//! instruction throughput (the thing the kernels differ in) instead of
//! the host's L2 bandwidth, which caps every kernel equally. Rates are
//! histograms/sec; `kernel_speedup` is auto-vs-scalar, an in-process
//! ratio immune to host speed — the quantity the CI regression gate
//! checks.
//!
//! **Reduction shapes.** A [`FLEET`]-histogram fleet is folded three
//! ways: chained pairwise [`Histogram::merge`] (the pre-aggregator
//! baseline), the fixed-shape tree reduction at 1 job, and the tree at
//! the batch-pool job count. Every timed closure clones the fleet (the
//! tree consumes its inputs), so the common clone cost understates the
//! ratios but never favours a shape. Weights are integer-valued, so
//! every shape must produce the *same bits* — asserted, including an
//! untimed 4-job run — and the tree's advantage is pure traversal
//! (multi-source kernel calls + parallel leaves).
//!
//! Results land in the `"merge"` section of `BENCH_rdx.json` (path
//! override `RDX_BENCH_OUT`; other sections preserved). `RDX_REPS`
//! (default 3) controls the best-of-N timing.
//!
//! `--check [--tol <0..1>]` switches to regression-check mode: only the
//! kernel contrast runs, fresh `kernel_speedup` is compared against the
//! recorded baseline (`BENCH_rdx.json`, override `RDX_BENCH_BASELINE`;
//! fail only below recorded × (1 − tol)), and fresh numbers go to
//! `BENCH_fresh.json` (override `RDX_BENCH_OUT`). `RDX_KERNEL` forces
//! what "auto" resolves to — CI sets `RDX_KERNEL=scalar` to prove the
//! gate fails when the wide-add kernels are disabled.

use rdx_bench::{
    bench_args, bench_out_path, check_metric, json_number, kernel_override, print_table,
    read_bench_baseline, reps, resolve_tolerance, time_min, update_bench_json_at,
    update_bench_json_keeping,
};
use rdx_core::{
    default_jobs, merge_histogram_batch, merge_kernel, merge_kernels, resolve_merge, KernelChoice,
    KernelKind,
};
use rdx_histogram::{Binning, Histogram};
use std::fmt::Write as _;

/// Rows in the kernel-contrast tile. `TILE_ROWS * TILE_BUCKETS`
/// doubles are ~16 KiB — resident in L1 on anything this runs on.
const TILE_ROWS: usize = 16;
/// Buckets per tile row (dense linear binning).
const TILE_BUCKETS: usize = 128;
/// Tile reductions per timed repetition (amortizes timer overhead).
const KERNEL_ITERS: usize = 768;
/// Source rows per kernel call — the tree reduction's leaf width
/// (`merge.rs` LEAF), so the measured traversal is the production one.
const GROUP: usize = 8;

/// Histograms in the reduction-shape fleet.
const FLEET: usize = 256;
/// Occupied buckets per fleet histogram.
const BUCKETS: usize = 256;

/// Deterministic integer-valued bucket weights: exactly representable
/// in `f64`, and small enough that any sum over the fleet is exact —
/// so every reduction shape and kernel must agree bit for bit.
fn dense_rows(seed: u64, rows: usize, buckets: usize) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..rows)
        .map(|_| (0..buckets).map(|_| (next() % 1000) as f64).collect())
        .collect()
}

/// The fleet as real histograms (linear width-1 binning: bucket `j`
/// covers value `j`), for the reduction-shape contrast.
fn fleet_histograms(rows: &[Vec<f64>]) -> Vec<Histogram> {
    rows.iter()
        .map(|r| Histogram::from_parts(Binning::linear(1), r.clone(), 7.0, BUCKETS as u64))
        .collect()
}

/// Histograms/sec for each kernel in `kinds`, reducing the tile in
/// [`GROUP`]-row calls.
///
/// The kernels are timed *interleaved* — one pass of every kernel per
/// round, best-of over `rounds` — so a burst of host noise lands on
/// all of them instead of biasing whichever kernel was being timed
/// when it hit. That keeps the speedup *ratio* stable even when
/// absolute rates wobble.
fn kernel_rates(kinds: &[KernelKind], rows: &[Vec<f64>], rounds: u32) -> Vec<f64> {
    let srcs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
    // One destination allocated outside the timing: re-accumulating into
    // it is the same work per iteration (weights just grow, staying far
    // from overflow), and a per-iteration malloc+zero would dilute the
    // kernel contrast.
    let mut dst = vec![0.0f64; TILE_BUCKETS];
    let mut best = vec![f64::INFINITY; kinds.len()];
    for _ in 0..rounds.max(1) {
        for (slot, &kind) in best.iter_mut().zip(kinds) {
            let kernel = merge_kernel(kind);
            let (secs, sink) = time_min(1, || {
                let mut acc = 0.0f64;
                for _ in 0..KERNEL_ITERS {
                    for group in srcs.chunks(GROUP) {
                        kernel.accumulate(&mut dst, group);
                    }
                    acc += dst[TILE_BUCKETS - 1];
                }
                acc
            });
            assert!(sink.is_finite());
            *slot = slot.min(secs);
        }
    }
    best.iter()
        .map(|&secs| (TILE_ROWS * KERNEL_ITERS) as f64 / secs)
        .collect()
}

/// One auto-vs-scalar kernel measurement (the `--check` quantity).
struct KernelBench {
    auto_name: &'static str,
    scalar_hps: f64,
    auto_hps: f64,
}

impl KernelBench {
    fn kernel_speedup(&self) -> f64 {
        self.auto_hps / self.scalar_hps
    }
}

fn kernel_bench(rows: &[Vec<f64>], rounds: u32) -> KernelBench {
    let auto_choice = kernel_override().unwrap_or(KernelChoice::Auto);
    let auto_kind = resolve_merge(auto_choice);
    let rates = kernel_rates(&[KernelKind::Scalar, auto_kind], rows, rounds);
    KernelBench {
        auto_name: auto_kind.name(),
        scalar_hps: rates[0],
        auto_hps: rates[1],
    }
}

fn print_kernel_bench(bench: &KernelBench, per_kind: &[(KernelKind, f64)]) {
    println!(
        "\nmerge kernels ({TILE_ROWS} rows x {TILE_BUCKETS} buckets in L1, \
         {GROUP} rows per call, auto resolves to '{}'):",
        bench.auto_name
    );
    print_table(
        &["kernel", "hist/s", "vs scalar"],
        &per_kind
            .iter()
            .map(|&(kind, hps)| {
                vec![
                    kind.name().to_string(),
                    format!("{hps:.3e}"),
                    format!("{:.2}x", hps / bench.scalar_hps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "kernel_speedup (auto vs scalar): {:.2}x",
        bench.kernel_speedup()
    );
}

/// `--check`: rerun only the kernel contrast, gate on the recorded
/// `kernel_speedup`, and write fresh numbers to a separate artifact.
fn check_mode(tol_flag: Option<f64>, reps: u32) -> i32 {
    let baseline = match read_bench_baseline() {
        Ok(text) => text,
        Err(e) => {
            eprintln!("exp_merge --check: cannot read recorded baseline: {e}");
            return 2;
        }
    };
    let Some(recorded) = json_number(&baseline, &["merge", "kernel_speedup"]) else {
        eprintln!(
            "exp_merge --check: baseline has no merge.kernel_speedup \
             (run exp_merge once without --check to record it)"
        );
        return 2;
    };
    let tol = resolve_tolerance(tol_flag, &baseline, "merge");
    let rows = dense_rows(0x5eed, TILE_ROWS, TILE_BUCKETS);
    let bench = kernel_bench(&rows, reps);
    let per_kind = vec![
        (KernelKind::Scalar, bench.scalar_hps),
        (
            resolve_merge(kernel_override().unwrap_or(KernelChoice::Auto)),
            bench.auto_hps,
        ),
    ];
    print_kernel_bench(&bench, &per_kind);
    let ok = check_metric(
        "merge.kernel_speedup",
        bench.kernel_speedup(),
        recorded,
        tol,
    );
    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "    \"check_tolerance\": {tol:.3},");
    let _ = writeln!(body, "    \"check_passed\": {ok},");
    let _ = writeln!(body, "    \"kernel\": \"{}\",", bench.auto_name);
    let _ = writeln!(
        body,
        "    \"kernel_scalar_hists_per_sec\": {:.1},",
        bench.scalar_hps
    );
    let _ = writeln!(body, "    \"kernel_hists_per_sec\": {:.1},", bench.auto_hps);
    let _ = writeln!(
        body,
        "    \"kernel_speedup\": {:.3}",
        bench.kernel_speedup()
    );
    let _ = write!(body, "  }}");
    let out = update_bench_json_at(&bench_out_path("BENCH_fresh.json"), "merge", &body)
        .unwrap_or_else(|e| panic!("writing fresh check numbers: {e}"));
    println!("wrote {out} (section \"merge\", check mode)");
    i32::from(!ok)
}

fn main() {
    let args = bench_args().unwrap_or_else(|e| {
        eprintln!("exp_merge: {e}");
        std::process::exit(2);
    });
    let reps = reps();
    if args.check {
        std::process::exit(check_mode(args.tol, reps));
    }
    println!(
        "Fleet aggregation: merge kernels ({TILE_ROWS}x{TILE_BUCKETS} tile) and \
         tree reduction ({FLEET} histograms x {BUCKETS} buckets), best of {reps}"
    );

    let tile = dense_rows(0x5eed, TILE_ROWS, TILE_BUCKETS);
    let hists = fleet_histograms(&dense_rows(0xf1ee7, FLEET, BUCKETS));

    // Every available kernel, head to head on the same tile, timed
    // interleaved so host noise cannot bias one kernel's rounds.
    let kinds: Vec<KernelKind> = merge_kernels()
        .iter()
        .filter(|e| e.available)
        .map(|e| e.kind)
        .collect();
    let rates = kernel_rates(&kinds, &tile, reps);
    let per_kind: Vec<(KernelKind, f64)> = kinds.iter().copied().zip(rates).collect();
    let auto_choice = kernel_override().unwrap_or(KernelChoice::Auto);
    let auto_kind = resolve_merge(auto_choice);
    let scalar_hps = per_kind
        .iter()
        .find(|&&(k, _)| k == KernelKind::Scalar)
        .map_or(0.0, |&(_, h)| h);
    let auto_hps = per_kind
        .iter()
        .find(|&&(k, _)| k == auto_kind)
        .map_or(scalar_hps, |&(_, h)| h);
    let bench = KernelBench {
        auto_name: auto_kind.name(),
        scalar_hps,
        auto_hps,
    };
    print_kernel_bench(&bench, &per_kind);

    // Reduction shapes: chained pairwise merges vs the fixed-shape tree
    // at 1 job and at the batch-pool width. The tree consumes its
    // inputs, so every closure pays the same fleet clone. Integer
    // weights make every shape exact, so all results must carry
    // identical bits.
    let jobs = default_jobs();
    let (seq_s, want) = time_min(reps, || {
        let mut fleet = hists.clone();
        let (acc, rest) = fleet.split_first_mut().expect("non-empty fleet");
        for h in rest {
            acc.merge(h).expect("one shared binning");
        }
        acc.clone()
    });
    let tree = |jobs: usize| {
        time_min(reps, || {
            merge_histogram_batch(hists.clone(), jobs, auto_choice)
                .expect("one shared binning")
                .expect("non-empty fleet")
        })
    };
    let (tree1_s, tree1) = tree(1);
    let (treej_s, treej) = tree(jobs);
    assert_eq!(tree1, want, "tree(1 job) deviates from chained merges");
    assert_eq!(
        treej, want,
        "tree({jobs} jobs) deviates from chained merges"
    );
    let wide = merge_histogram_batch(hists.clone(), 4, auto_choice)
        .expect("one shared binning")
        .expect("non-empty fleet");
    assert_eq!(wide, want, "tree(4 jobs) deviates from chained merges");
    let (seq_hps, tree1_hps, treej_hps) = (
        FLEET as f64 / seq_s,
        FLEET as f64 / tree1_s,
        FLEET as f64 / treej_s,
    );
    println!("\nreduction shapes (results verified bit-identical, incl. 4 jobs):");
    print_table(
        &["reduction", "hist/s", "vs chained"],
        &[
            vec![
                "chained pairwise".into(),
                format!("{seq_hps:.3e}"),
                "1.00x".into(),
            ],
            vec![
                "tree, 1 job".into(),
                format!("{tree1_hps:.3e}"),
                format!("{:.2}x", tree1_hps / seq_hps),
            ],
            vec![
                format!("tree, {jobs} jobs"),
                format!("{treej_hps:.3e}"),
                format!("{:.2}x", treej_hps / seq_hps),
            ],
        ],
    );

    // A hand-tuned check_tolerance in the recorded file survives
    // re-runs; the gate falls back to its default when absent.
    let out = update_bench_json_keeping(
        "merge",
        &render_section(&bench, &per_kind, jobs, (seq_hps, tree1_hps, treej_hps)),
        &["check_tolerance"],
    )
    .unwrap_or_else(|e| panic!("writing benchmark results: {e}"));
    println!("wrote {out} (section \"merge\")");
}

/// Hand-rolled JSON for the `"merge"` section (no JSON crate in the
/// workspace); every value is a finite number or a kernel identifier.
fn render_section(
    bench: &KernelBench,
    per_kind: &[(KernelKind, f64)],
    jobs: usize,
    (seq_hps, tree1_hps, treej_hps): (f64, f64, f64),
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"tile_rows\": {TILE_ROWS},");
    let _ = writeln!(s, "    \"tile_buckets\": {TILE_BUCKETS},");
    let _ = writeln!(s, "    \"fleet_histograms\": {FLEET},");
    let _ = writeln!(s, "    \"fleet_buckets\": {BUCKETS},");
    let _ = writeln!(s, "    \"kernel\": \"{}\",", bench.auto_name);
    let _ = writeln!(
        s,
        "    \"kernel_scalar_hists_per_sec\": {:.1},",
        bench.scalar_hps
    );
    let _ = writeln!(s, "    \"kernel_hists_per_sec\": {:.1},", bench.auto_hps);
    let _ = writeln!(s, "    \"kernel_speedup\": {:.3},", bench.kernel_speedup());
    let _ = writeln!(s, "    \"kernels\": [");
    for (i, &(kind, hps)) in per_kind.iter().enumerate() {
        let comma = if i + 1 == per_kind.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{\"kind\": \"{}\", \"hists_per_sec\": {hps:.1}, \
             \"vs_scalar\": {:.3}}}{comma}",
            kind.name(),
            hps / bench.scalar_hps
        );
    }
    let _ = writeln!(s, "    ],");
    let _ = writeln!(s, "    \"reduction\": {{");
    let _ = writeln!(s, "      \"jobs\": {jobs},");
    let _ = writeln!(s, "      \"chained_hists_per_sec\": {seq_hps:.1},");
    let _ = writeln!(s, "      \"tree_1job_hists_per_sec\": {tree1_hps:.1},");
    let _ = writeln!(s, "      \"tree_jobs_hists_per_sec\": {treej_hps:.1},");
    let _ = writeln!(s, "      \"tree_speedup\": {:.3}", treej_hps / seq_hps);
    let _ = writeln!(s, "    }}");
    let _ = write!(s, "  }}");
    s
}
