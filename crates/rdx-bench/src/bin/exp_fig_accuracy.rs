//! F5 — per-benchmark accuracy of RDX against exhaustive ground truth
//! (the paper's headline ">90% typical" figure).
//!
//! Accuracy is histogram intersection between normalized reuse-distance
//! histograms; the reuse-time column isolates measurement error from
//! conversion error.

use rdx_bench::{
    accuracy_config, experiment_params, geo_mean, jobs, par_profile_suite, pct, per_workload,
    print_table,
};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;

fn main() {
    let params = experiment_params();
    let config = accuracy_config();
    println!(
        "F5: RDX accuracy vs ground truth ({} accesses, period {}, {} jobs)\n",
        params.accesses,
        config.machine.sampling.period,
        jobs()
    );
    let exacts = per_workload(|w| {
        ExactProfile::measure(w.stream(&params), Granularity::WORD, config.binning)
    });
    let ests = par_profile_suite(config, &params, jobs());
    let rows: Vec<_> = exacts
        .iter()
        .zip(&ests)
        .map(|((w, exact), (_, est))| {
            let rd_acc = histogram_intersection(est.rd.as_histogram(), exact.rd.as_histogram())
                .expect("same binning");
            let rt_acc = histogram_intersection(est.rt.as_histogram(), exact.rt.as_histogram())
                .expect("same binning");
            (*w, (rd_acc, rt_acc, est.traps, est.samples))
        })
        .collect();
    let rd_accs: Vec<f64> = rows.iter().map(|(_, r)| r.0).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, (rd, rt, traps, samples))| {
            vec![
                w.name.to_string(),
                pct(*rd),
                pct(*rt),
                traps.to_string(),
                samples.to_string(),
            ]
        })
        .collect();
    print_table(
        &["workload", "rd accuracy", "rt accuracy", "traps", "samples"],
        &table,
    );
    println!("\ngeo-mean rd accuracy: {}", pct(geo_mean(&rd_accs)));
    println!(
        "workloads ≥ 90%: {} / {}",
        rd_accs.iter().filter(|a| **a >= 0.90).count(),
        rd_accs.len()
    );
    println!("paper claim: \"typically more than 90% accuracy\"");
}
