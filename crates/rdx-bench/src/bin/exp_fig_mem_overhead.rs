//! F7 — RDX memory overhead (paper: ≈7 % mean).
//!
//! Profiler memory is the fixed runtime footprint (perf ring buffers,
//! signal stacks — 2 MiB calibrated) plus dynamic state (pair vectors and
//! histograms); the application footprint is measured from the trace. The
//! paper's SPEC workloads carry tens-of-MiB footprints, so this experiment
//! defaults to a 4 Mi-element (32 MiB) footprint rather than the accuracy
//! experiments' small one (override with `RDX_ELEMENTS`).

use rdx_bench::{experiment_params, pct, per_workload, print_table};
use rdx_core::RdxRunner;
use rdx_histogram::stats::Summary;
use rdx_trace::{Granularity, TraceStats};

fn main() {
    let mut params = experiment_params();
    if std::env::var("RDX_ELEMENTS").is_err() {
        params = params.with_elements(4 * 1024 * 1024 - 77); // ≈32 MiB, non-pow2
    }
    let config = rdx_bench::paper_config();
    println!(
        "F7: RDX memory overhead ({} accesses, {} elements)\n",
        params.accesses, params.elements
    );
    let rows = per_workload(|w| {
        let stats = TraceStats::measure(w.stream(&params), Granularity::WORD);
        let est = RdxRunner::new(config).profile(w.stream(&params));
        let app_bytes = stats.footprint_bytes().max(1);
        (
            est.profiler_bytes,
            app_bytes,
            est.memory_overhead(app_bytes),
        )
    });
    let ratios: Vec<f64> = rows.iter().map(|(_, r)| r.2).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, (tool, app, ratio))| {
            vec![
                w.name.to_string(),
                format!("{:.0} KiB", *tool as f64 / 1024.0),
                format!("{:.1} MiB", *app as f64 / (1024.0 * 1024.0)),
                pct(*ratio),
            ]
        })
        .collect();
    print_table(
        &["workload", "profiler mem", "app footprint", "mem overhead"],
        &table,
    );
    let s = Summary::of(&ratios).expect("non-empty suite");
    let mut sorted = ratios.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    println!(
        "\nmedian {}  mean {}  min {}  max {}",
        pct(median),
        pct(s.mean),
        pct(s.min),
        pct(s.max)
    );
    println!("paper claim: \"negligible memory (7%) overhead\"");
    println!("(the mean is dominated by kernels whose *algorithmic* footprint is");
    println!(" tiny — fifo_queue's 24 KiB ring makes any fixed runtime look huge;");
    println!(" the paper's SPEC subjects all have MiB-to-GiB footprints, for which");
    println!(" the median row here is the representative number)");
}
