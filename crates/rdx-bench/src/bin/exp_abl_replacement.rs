//! A2 — watchpoint replacement policy ablation: drop-new (with aging, the
//! default), FIFO evict-oldest, and random eviction.
//!
//! FIFO imposes a hard observability horizon of registers x period, so
//! long-reuse kernels collapse under it; drop-new observes any interval
//! exactly at the cost of biased start thinning.

use rdx_bench::{
    accuracy_config, experiment_params, geo_mean, jobs, par_profile_suite, pct, per_workload,
    print_table,
};
use rdx_core::ReplacementPolicy;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;
use std::collections::HashMap;

fn main() {
    let params = experiment_params();
    let base = accuracy_config();
    println!(
        "A2: accuracy vs replacement policy ({} accesses, period {})\n",
        params.accesses, base.machine.sampling.period
    );
    let exacts: HashMap<&str, _> =
        per_workload(|w| ExactProfile::measure(w.stream(&params), Granularity::WORD, base.binning))
            .into_iter()
            .map(|(w, e)| (w.name, e))
            .collect();
    let policies = [
        ("drop-new+aging", ReplacementPolicy::DropNew),
        ("evict-oldest", ReplacementPolicy::EvictOldest),
        ("evict-random", ReplacementPolicy::EvictRandom),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let config = base.with_replacement(policy);
        let results: Vec<_> = par_profile_suite(config, &params, jobs())
            .into_iter()
            .map(|(w, est)| {
                let acc =
                    histogram_intersection(est.rd.as_histogram(), exacts[w.name].rd.as_histogram())
                        .expect("same binning");
                (acc.max(1e-9), est.traps, est.evictions)
            })
            .collect();
        let accs: Vec<f64> = results.iter().map(|r| r.0).collect();
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let traps: u64 = results.iter().map(|r| r.1).sum();
        let evics: u64 = results.iter().map(|r| r.2).sum();
        rows.push(vec![
            name.to_string(),
            pct(geo_mean(&accs)),
            pct(min),
            traps.to_string(),
            evics.to_string(),
        ]);
    }
    print_table(
        &["policy", "geo-mean acc", "worst acc", "traps", "evictions"],
        &rows,
    );
}
