//! A1 — how accuracy scales with the number of hardware debug registers
//! (x86 has 4; the sweep shows what 1, 2, 8 or 16 would buy).

use rdx_bench::{accuracy_config, experiment_params, geo_mean, pct, per_workload, print_table};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;
use std::collections::HashMap;

fn main() {
    let params = experiment_params();
    let base = accuracy_config();
    println!(
        "A1: accuracy vs debug-register count ({} accesses, period {})\n",
        params.accesses, base.machine.sampling.period
    );
    let exacts: HashMap<&str, _> =
        per_workload(|w| ExactProfile::measure(w.stream(&params), Granularity::WORD, base.binning))
            .into_iter()
            .map(|(w, e)| (w.name, e))
            .collect();
    let mut rows = Vec::new();
    for registers in [1usize, 2, 4, 8, 16] {
        let config = base.with_registers(registers);
        let results = per_workload(|w| {
            let est = RdxRunner::new(config).profile(w.stream(&params));
            let acc =
                histogram_intersection(est.rd.as_histogram(), exacts[w.name].rd.as_histogram())
                    .expect("same binning");
            (acc.max(1e-9), est.traps)
        });
        let accs: Vec<f64> = results.iter().map(|(_, r)| r.0).collect();
        let traps: u64 = results.iter().map(|(_, r)| r.1).sum();
        rows.push(vec![
            registers.to_string(),
            pct(geo_mean(&accs)),
            (traps / results.len() as u64).to_string(),
        ]);
    }
    print_table(&["registers", "geo-mean accuracy", "traps/workload"], &rows);
    println!("\nx86 exposes 4 debug registers (DR0-DR3) — the paper's constraint.");
}
