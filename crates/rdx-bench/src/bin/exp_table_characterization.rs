//! T3 — memory-performance characterization of long-running workloads via
//! RDX profiles (the paper's SPEC CPU2017 characterization): predicted
//! per-level miss ratios from the estimated histogram, cross-validated
//! against a set-associative cache simulation and the exact histogram.

use rdx_bench::{accuracy_config, experiment_params, pct, per_workload, print_table};
use rdx_cache::{hierarchy, predict, SetAssociativeCache};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_trace::Granularity;

fn main() {
    let params = experiment_params();
    let config = accuracy_config();
    println!(
        "T3: per-level miss ratios, RDX-predicted vs exact-predicted vs simulated\n({} accesses; L1 32KiB / L2 1MiB / LLC 32MiB)\n",
        params.accesses
    );
    let levels = hierarchy();
    let rows = per_workload(|w| {
        let est = RdxRunner::new(config).profile(w.stream(&params));
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, config.binning);
        let pred_rdx = predict::miss_ratios(&est.rd, &levels, 8);
        let pred_exact = predict::miss_ratios(&exact.rd, &levels, 8);
        // simulate the real (line-granular, set-associative) LLC
        let mut llc = SetAssociativeCache::new(levels[2]);
        let sim = llc.simulate(w.stream(&params));
        vec![
            w.name.to_string(),
            pct(pred_rdx[0].miss_ratio),
            pct(pred_exact[0].miss_ratio),
            pct(pred_rdx[1].miss_ratio),
            pct(pred_exact[1].miss_ratio),
            pct(pred_rdx[2].miss_ratio),
            pct(pred_exact[2].miss_ratio),
            pct(sim.miss_ratio()),
        ]
    });
    print_table(
        &[
            "workload",
            "L1 rdx",
            "L1 exact",
            "L2 rdx",
            "L2 exact",
            "LLC rdx",
            "LLC exact",
            "LLC sim",
        ],
        &rows.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
    );
    println!("\nPredictions assume fully-associative LRU at word granularity; the");
    println!("simulated LLC uses 64B lines and 16-way sets, so it benefits from");
    println!("spatial locality (streaming kernels) and suffers conflicts.");
}
