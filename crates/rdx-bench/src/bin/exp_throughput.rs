//! Throughput contrast: chunk-scanning fast path vs per-access slow loop.
//!
//! For every registry workload at the paper's 64 Ki operating point, the
//! trace is materialized once and profiled twice — through the zero-copy
//! chunk fast path (`trace.stream()`) and through the same stream with
//! its chunk capability hidden (`Opaque`), which forces the machine to
//! single-step every access. Both runs produce bit-identical profiles
//! (asserted here; the binary fails loudly on divergence), so the only
//! difference is accesses per second.
//!
//! Besides the table, results land in the `"throughput"` section of
//! `BENCH_rdx.json` (path override: `RDX_BENCH_OUT`; other sections,
//! e.g. `exp_decode`'s `"decode"`, are preserved) for CI artifact
//! upload. `RDX_ACCESSES` scales the run; `RDX_REPS` (default 3)
//! controls how many timed repetitions the minimum is taken over.

use rdx_bench::{experiment_params, paper_config, print_table, reps, time_min, update_bench_json};
use rdx_core::{RdxProfile, RdxRunner};
use rdx_trace::{Opaque, Trace};
use rdx_workloads::suite;
use std::fmt::Write as _;

struct Row {
    name: &'static str,
    fast_aps: f64,
    slow_aps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fast_aps / self.slow_aps
    }
}

fn assert_identical(name: &str, fast: &RdxProfile, slow: &RdxProfile) {
    assert_eq!(fast.rd, slow.rd, "{name}: rd histogram diverged");
    assert_eq!(fast.rt, slow.rt, "{name}: rt histogram diverged");
    assert_eq!(fast.samples, slow.samples, "{name}: sample count diverged");
    assert_eq!(fast.traps, slow.traps, "{name}: trap count diverged");
    assert_eq!(
        fast.m_estimate.to_bits(),
        slow.m_estimate.to_bits(),
        "{name}: m_estimate diverged"
    );
}

fn main() {
    let params = experiment_params();
    let config = paper_config();
    let period = config.machine.sampling.period;
    let reps = reps();
    println!(
        "Throughput: bulk-scan fast path vs per-access loop \
         ({} accesses, period {}, best of {})\n",
        params.accesses, period, reps
    );

    let mut rows: Vec<Row> = Vec::new();
    for w in suite() {
        let trace = Trace::from_stream(w.name, w.stream(&params));
        let n = trace.len() as f64;
        let runner = RdxRunner::new(config);
        let (fast_s, fast) = time_min(reps, || runner.profile(trace.stream()));
        let (slow_s, slow) = time_min(reps, || runner.profile(Opaque::new(trace.stream())));
        assert_identical(w.name, &fast, &slow);
        rows.push(Row {
            name: w.name,
            fast_aps: n / fast_s,
            slow_aps: n / slow_s,
        });
    }

    print_table(
        &["workload", "fast acc/s", "slow acc/s", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.3e}", r.fast_aps),
                    format!("{:.3e}", r.slow_aps),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let max = rows.iter().map(Row::speedup).fold(0.0f64, f64::max);
    println!("\nmax speedup: {max:.2}x (profiles verified bit-identical)");

    let out = update_bench_json(
        "throughput",
        &render_section(&rows, params.accesses, period, max),
    )
    .unwrap_or_else(|e| panic!("writing benchmark results: {e}"));
    println!("wrote {out} (section \"throughput\")");
}

/// Hand-rolled JSON (the workspace deliberately vendors no JSON crate):
/// every value written is a finite number or a registry identifier, so
/// no string escaping is needed. The object becomes the `"throughput"`
/// section of `BENCH_rdx.json`.
fn render_section(rows: &[Row], accesses: u64, period: u64, max: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"accesses\": {accesses},");
    let _ = writeln!(s, "    \"period\": {period},");
    let _ = writeln!(s, "    \"max_speedup\": {max:.3},");
    let _ = writeln!(s, "    \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"fast_accesses_per_sec\": {:.1}, \
             \"slow_accesses_per_sec\": {:.1}, \"speedup\": {:.3}}}{comma}",
            r.name,
            r.fast_aps,
            r.slow_aps,
            r.speedup()
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}
