//! Throughput contrast: chunk-scanning fast path vs per-access slow loop.
//!
//! For every registry workload at the paper's 64 Ki operating point, the
//! trace is materialized once and profiled twice — through the zero-copy
//! chunk fast path (`trace.stream()`) and through the same stream with
//! its chunk capability hidden (`Opaque`), which forces the machine to
//! single-step every access. Both runs produce bit-identical profiles
//! (asserted here; the binary fails loudly on divergence), so the only
//! difference is accesses per second.
//!
//! A second contrast isolates the needle scanner itself: the same quiet
//! run is swept by every registered scan kernel ([`memsim::kernels`]),
//! and the auto-dispatched kernel's throughput over the scalar oracle's
//! becomes `kernel_speedup` — an in-process ratio that is immune to
//! host speed, which is what the CI regression gate checks.
//!
//! Besides the table, results land in the `"throughput"` section of
//! `BENCH_rdx.json` (path override: `RDX_BENCH_OUT`; other sections,
//! e.g. `exp_decode`'s `"decode"`, are preserved) for CI artifact
//! upload. `RDX_ACCESSES` scales the run; `RDX_REPS` (default 3)
//! controls how many timed repetitions the minimum is taken over.
//!
//! `--check [--tol <0..1>]` switches to regression-check mode: only the
//! scan-kernel microbenchmark runs, its fresh `kernel_speedup` is
//! compared against the recorded baseline (`BENCH_rdx.json`, override
//! `RDX_BENCH_BASELINE`; fail only below recorded × (1 − tol)), and the
//! fresh numbers go to `BENCH_fresh.json` (override `RDX_BENCH_OUT`)
//! for artifact upload. `RDX_KERNEL` forces what "auto" resolves to —
//! CI sets `RDX_KERNEL=scalar` to prove the gate fails when the fast
//! kernels are disabled.

use memsim::kernels::{resolve_scan, run_scan, scan_kernels};
use memsim::{KernelChoice, KernelKind, NeedleSet};
use rdx_bench::{
    bench_args, bench_out_path, check_metric, experiment_params, json_number, kernel_override,
    paper_config, print_table, read_bench_baseline, reps, resolve_tolerance, time_min,
    update_bench_json_at, update_bench_json_keeping,
};
use rdx_core::{RdxProfile, RdxRunner};
use rdx_trace::{Access, Opaque, Trace};
use rdx_workloads::suite;
use std::fmt::Write as _;

struct Row {
    name: &'static str,
    fast_aps: f64,
    slow_aps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.fast_aps / self.slow_aps
    }
}

fn assert_identical(name: &str, fast: &RdxProfile, slow: &RdxProfile) {
    assert_eq!(fast.rd, slow.rd, "{name}: rd histogram diverged");
    assert_eq!(fast.rt, slow.rt, "{name}: rt histogram diverged");
    assert_eq!(fast.samples, slow.samples, "{name}: sample count diverged");
    assert_eq!(fast.traps, slow.traps, "{name}: trap count diverged");
    assert_eq!(
        fast.m_estimate.to_bits(),
        slow.m_estimate.to_bits(),
        "{name}: m_estimate diverged"
    );
}

/// One scan-kernel measurement: the resolved auto kernel, every
/// registered kernel's quiet-run throughput, and the auto-vs-scalar
/// ratio the regression gate pins.
struct ScanBench {
    auto_kind: KernelKind,
    accesses: u64,
    per_kernel: Vec<(&'static str, f64)>,
    scalar_aps: f64,
    auto_aps: f64,
}

impl ScanBench {
    fn kernel_speedup(&self) -> f64 {
        self.auto_aps / self.scalar_aps
    }
}

/// Accesses per scan pass: one plausible PMU overflow gap's worth.
const SCAN_RUN: usize = 1 << 16;

/// Times every registered scan kernel over the hot case — a quiet run
/// (no needle hits) swept end to end, exactly what the machine fast
/// path does between PMU overflows.
fn scan_kernel_bench(total_accesses: u64, reps: u32) -> ScanBench {
    // Four read-write 8-byte needles (the paper's DR0–DR3 at maximal
    // width) parked far above the run so no access hits — the machine
    // fast path's hot case between PMU overflows.
    let needles = NeedleSet::from_ranges(&[
        (0x7fff_0000, 8, false),
        (0x7fff_1000, 8, false),
        (0x7fff_2000, 8, false),
        (0x7fff_3000, 8, false),
    ]);
    let run: Vec<Access> = (0..SCAN_RUN as u64)
        .map(|i| {
            if i % 5 == 0 {
                Access::store(i * 8)
            } else {
                Access::load(i * 8)
            }
        })
        .collect();
    let passes = (total_accesses as usize / SCAN_RUN).max(1);
    let accesses = (SCAN_RUN * passes) as u64;

    let auto_choice = kernel_override().unwrap_or(KernelChoice::Auto);
    let auto_kind = resolve_scan(auto_choice);
    let mut per_kernel = Vec::new();
    let aps_of = |kind: KernelKind| {
        let (secs, sink) = time_min(reps, || {
            let mut sink = 0u64;
            for _ in 0..passes {
                let out = run_scan(kind, &needles, &run);
                sink = sink
                    .wrapping_add(out.stores_before)
                    .wrapping_add(out.first_match.map_or(0, |i| i as u64));
            }
            sink
        });
        std::hint::black_box(sink);
        accesses as f64 / secs
    };
    for entry in scan_kernels() {
        per_kernel.push((entry.kind.name(), aps_of(entry.kind)));
    }
    let lookup = |kind: KernelKind| {
        per_kernel
            .iter()
            .find(|&&(name, _)| name == kind.name())
            .map_or(0.0, |&(_, aps)| aps)
    };
    ScanBench {
        auto_kind,
        accesses,
        scalar_aps: lookup(KernelKind::Scalar),
        auto_aps: lookup(auto_kind),
        per_kernel,
    }
}

fn print_scan_bench(bench: &ScanBench) {
    println!(
        "\nscan kernels (quiet run, {} accesses, auto resolves to '{}'):",
        bench.accesses,
        bench.auto_kind.name()
    );
    print_table(
        &["kernel", "acc/s", "vs scalar"],
        &bench
            .per_kernel
            .iter()
            .map(|&(name, aps)| {
                vec![
                    name.to_string(),
                    format!("{aps:.3e}"),
                    format!("{:.2}x", aps / bench.scalar_aps),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "kernel_speedup (auto vs scalar): {:.2}x",
        bench.kernel_speedup()
    );
}

/// `--check`: rerun only the scan-kernel microbenchmark, gate on the
/// recorded `kernel_speedup` ratio, and write the fresh numbers to a
/// separate artifact file. Returns the process exit code.
fn check_mode(tol_flag: Option<f64>, accesses: u64, reps: u32) -> i32 {
    let baseline = match read_bench_baseline() {
        Ok(text) => text,
        Err(e) => {
            eprintln!("exp_throughput --check: cannot read recorded baseline: {e}");
            return 2;
        }
    };
    let Some(recorded) = json_number(&baseline, &["throughput", "scan_kernel", "kernel_speedup"])
    else {
        eprintln!(
            "exp_throughput --check: baseline has no throughput.scan_kernel.kernel_speedup \
             (run exp_throughput once without --check to record it)"
        );
        return 2;
    };
    let tol = resolve_tolerance(tol_flag, &baseline, "throughput");
    let bench = scan_kernel_bench(accesses, reps);
    print_scan_bench(&bench);
    let ok = check_metric(
        "throughput.scan_kernel.kernel_speedup",
        bench.kernel_speedup(),
        recorded,
        tol,
    );
    let out = update_bench_json_at(
        &bench_out_path("BENCH_fresh.json"),
        "throughput",
        &render_check_section(&bench, tol, ok),
    )
    .unwrap_or_else(|e| panic!("writing fresh check numbers: {e}"));
    println!("wrote {out} (section \"throughput\", check mode)");
    i32::from(!ok)
}

fn main() {
    let args = bench_args().unwrap_or_else(|e| {
        eprintln!("exp_throughput: {e}");
        std::process::exit(2);
    });
    let params = experiment_params();
    let config = paper_config();
    let period = config.machine.sampling.period;
    let reps = reps();
    if args.check {
        std::process::exit(check_mode(args.tol, params.accesses, reps));
    }
    println!(
        "Throughput: bulk-scan fast path vs per-access loop \
         ({} accesses, period {}, best of {})\n",
        params.accesses, period, reps
    );

    let mut rows: Vec<Row> = Vec::new();
    for w in suite() {
        let trace = Trace::from_stream(w.name, w.stream(&params));
        let n = trace.len() as f64;
        let runner = RdxRunner::new(config);
        let (fast_s, fast) = time_min(reps, || runner.profile(trace.stream()));
        let (slow_s, slow) = time_min(reps, || runner.profile(Opaque::new(trace.stream())));
        assert_identical(w.name, &fast, &slow);
        rows.push(Row {
            name: w.name,
            fast_aps: n / fast_s,
            slow_aps: n / slow_s,
        });
    }

    print_table(
        &["workload", "fast acc/s", "slow acc/s", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.3e}", r.fast_aps),
                    format!("{:.3e}", r.slow_aps),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let max = rows.iter().map(Row::speedup).fold(0.0f64, f64::max);
    println!("\nmax speedup: {max:.2}x (profiles verified bit-identical)");

    let bench = scan_kernel_bench(params.accesses, reps);
    print_scan_bench(&bench);

    // A hand-tuned check_tolerance in the recorded file survives
    // re-runs; the gate falls back to 0.25 when absent.
    let out = update_bench_json_keeping(
        "throughput",
        &render_section(&rows, &bench, params.accesses, period, max),
        &["check_tolerance"],
    )
    .unwrap_or_else(|e| panic!("writing benchmark results: {e}"));
    println!("wrote {out} (section \"throughput\")");
}

/// The `"scan_kernel"` subobject shared by both output modes.
fn render_scan_kernel(bench: &ScanBench, indent: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "{indent}  \"kernel\": \"{}\",", bench.auto_kind.name());
    let _ = writeln!(s, "{indent}  \"accesses\": {},", bench.accesses);
    for &(name, aps) in &bench.per_kernel {
        let _ = writeln!(s, "{indent}  \"{name}_accesses_per_sec\": {aps:.1},");
    }
    let _ = writeln!(
        s,
        "{indent}  \"kernel_speedup\": {:.3}",
        bench.kernel_speedup()
    );
    let _ = write!(s, "{indent}}}");
    s
}

/// The fresh-numbers artifact written by `--check`.
fn render_check_section(bench: &ScanBench, tol: f64, ok: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"check_tolerance\": {tol:.3},");
    let _ = writeln!(s, "    \"check_passed\": {ok},");
    let _ = writeln!(
        s,
        "    \"scan_kernel\": {}",
        render_scan_kernel(bench, "    ")
    );
    let _ = write!(s, "  }}");
    s
}

/// Hand-rolled JSON (the workspace deliberately vendors no JSON crate):
/// every value written is a finite number or a registry identifier, so
/// no string escaping is needed. The object becomes the `"throughput"`
/// section of `BENCH_rdx.json`.
fn render_section(rows: &[Row], bench: &ScanBench, accesses: u64, period: u64, max: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"accesses\": {accesses},");
    let _ = writeln!(s, "    \"period\": {period},");
    let _ = writeln!(s, "    \"max_speedup\": {max:.3},");
    let _ = writeln!(
        s,
        "    \"scan_kernel\": {},",
        render_scan_kernel(bench, "    ")
    );
    let _ = writeln!(s, "    \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"fast_accesses_per_sec\": {:.1}, \
             \"slow_accesses_per_sec\": {:.1}, \"speedup\": {:.3}}}{comma}",
            r.name,
            r.fast_aps,
            r.slow_aps,
            r.speedup()
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = write!(s, "  }}");
    s
}
