//! S1 — self-overhead of the rdx-metrics observability layer.
//!
//! Profiles the whole workload registry and reports wall time per
//! access. Build and run twice to compare collection cost against the
//! no-op baseline:
//!
//! ```text
//! cargo run --release -p rdx-bench --bin exp_metrics_overhead
//! cargo run --release -p rdx-bench --bin exp_metrics_overhead --features metrics
//! ```
//!
//! The probes are relaxed atomic increments and a handful of clock
//! reads per profile, against a hot loop that does real work per
//! access — the enabled build should sit within noise of the no-op
//! build. With metrics enabled the run also prints the registry
//! snapshot so the span totals can be eyeballed against the wall time.

use rdx_bench::per_workload;
use rdx_core::RdxRunner;
use rdx_workloads::Params;
use std::time::Instant;

/// Timed repetitions; the minimum round filters scheduler noise.
const ROUNDS: usize = 5;

fn main() {
    let params = Params::default().with_accesses(1_000_000);
    let config = rdx_bench::paper_config();
    println!(
        "S1: profiling wall time per access, metrics {} ({} accesses/workload, {ROUNDS} rounds)\n",
        if rdx_metrics::enabled() {
            "ENABLED"
        } else {
            "disabled (no-op probes)"
        },
        params.accesses,
    );

    let mut per_round_ns_per_access = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        rdx_metrics::reset();
        let start = Instant::now();
        let rows = per_workload(|w| RdxRunner::new(config).profile(w.stream(&params)).accesses);
        let elapsed = start.elapsed();
        let accesses: u64 = rows.iter().map(|(_, n)| n).sum();
        let ns_per_access = elapsed.as_nanos() as f64 / accesses as f64;
        per_round_ns_per_access.push(ns_per_access);
        println!(
            "round {round}: {accesses} accesses in {:.3} s  ({ns_per_access:.2} ns/access)",
            elapsed.as_secs_f64()
        );
    }
    let min = per_round_ns_per_access
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let mean: f64 =
        per_round_ns_per_access.iter().sum::<f64>() / per_round_ns_per_access.len() as f64;
    println!("\nmin {min:.2} ns/access   mean {mean:.2} ns/access");

    if rdx_metrics::enabled() {
        println!("\nregistry after the last round:");
        println!("{}", rdx_metrics::snapshot().to_json());
    }
}
