//! A5 — measurement granularity: 8-byte watchpoints trap on same-word
//! reuse, so profiling at cache-line (64B) granularity undercounts
//! same-line/different-word reuses. This quantifies the approximation the
//! paper accepts when reporting line-granular histograms.

use rdx_bench::{accuracy_config, experiment_params, geo_mean, pct, per_workload, print_table};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;

fn main() {
    let params = experiment_params();
    let base = accuracy_config();
    println!(
        "A5: accuracy at word vs cache-line reporting granularity\n({} accesses; watchpoints are at most 8B wide either way)\n",
        params.accesses
    );
    let rows = per_workload(|w| {
        let word_exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, base.binning);
        let line_exact =
            ExactProfile::measure(w.stream(&params), Granularity::CACHE_LINE, base.binning);
        let est = RdxRunner::new(base).profile(w.stream(&params));
        let word_acc = histogram_intersection(est.rd.as_histogram(), word_exact.rd.as_histogram())
            .expect("same binning");
        // The same estimated histogram judged against line-granular truth:
        // the error RDX incurs if its word-granular profile is read as a
        // line-granular one.
        let line_acc = histogram_intersection(est.rd.as_histogram(), line_exact.rd.as_histogram())
            .expect("same binning");
        (word_acc.max(1e-9), line_acc.max(1e-9))
    });
    let words: Vec<f64> = rows.iter().map(|(_, r)| r.0).collect();
    let lines: Vec<f64> = rows.iter().map(|(_, r)| r.1).collect();
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, (a, b))| vec![w.name.to_string(), pct(*a), pct(*b)])
        .collect();
    table.push(vec![
        "geo-mean".into(),
        pct(geo_mean(&words)),
        pct(geo_mean(&lines)),
    ]);
    print_table(&["workload", "vs word truth", "vs line truth"], &table);
}
