//! E1 — extension: windowed (phase-aware) profiling on phase-changing
//! workloads, versus the single global profile.
//!
//! Global footprint conversion assumes a homogeneous reuse distribution;
//! windowed profiling converts each window against phase-local statistics
//! and merges, which should recover accuracy on `phased`-style workloads
//! while leaving homogeneous ones unchanged.

use rdx_bench::{accuracy_config, experiment_params, pct, print_table};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;
use rdx_workloads::by_name;

const SELECTED: &[&str] = &[
    "phased",
    "sort_merge",
    "gauss_hotset",
    "zipf",
    "matmul_naive",
];

fn main() {
    let params = experiment_params();
    let config = accuracy_config();
    let windows = 8u64;
    let window_len = params.accesses / windows;
    println!(
        "E1: global vs windowed ({} windows of {}) profiling accuracy\n",
        windows, window_len
    );
    let mut rows = Vec::new();
    for name in SELECTED {
        let w = by_name(name).expect("selected workload exists");
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, config.binning);
        let runner = RdxRunner::new(config);
        let global = runner.profile(w.stream(&params));
        let windowed = runner.profile_windows(w.stream(&params), window_len);
        let g_acc = histogram_intersection(global.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        let w_acc =
            histogram_intersection(windowed.merged_rd.as_histogram(), exact.rd.as_histogram())
                .expect("same binning");
        let changes = windowed.phase_changes(0.4).len();
        rows.push(vec![
            w.name.to_string(),
            pct(g_acc),
            pct(w_acc),
            changes.to_string(),
        ]);
    }
    print_table(
        &["workload", "global acc", "windowed acc", "phase changes"],
        &rows,
    );
    println!("\nWindowed conversion is phase-local: it should lift `phased` without");
    println!("hurting homogeneous workloads (each window still needs enough pairs).");
}
