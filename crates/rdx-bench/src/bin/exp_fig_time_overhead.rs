//! F6 — RDX time overhead at the paper's operating point (period 64 Ki).
//!
//! Overhead is profiling cycles over base application cycles from the
//! calibrated cost model (see `memsim::cost`); the paper reports ≈5 % mean.

use rdx_bench::{experiment_params, pct, per_workload, print_table};
use rdx_core::RdxRunner;
use rdx_histogram::stats::Summary;

fn main() {
    let params = experiment_params();
    let config = rdx_bench::paper_config();
    println!(
        "F6: RDX time overhead at period {} ({} accesses)\n",
        config.machine.sampling.period, params.accesses
    );
    let rows = per_workload(|w| {
        let est = RdxRunner::new(config).profile(w.stream(&params));
        (est.time_overhead, est.samples, est.traps)
    });
    let overheads: Vec<f64> = rows.iter().map(|(_, r)| r.0).collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, (ovh, samples, traps))| {
            vec![
                w.name.to_string(),
                pct(*ovh),
                samples.to_string(),
                traps.to_string(),
            ]
        })
        .collect();
    print_table(&["workload", "time overhead", "samples", "traps"], &table);
    let s = Summary::of(&overheads).expect("non-empty suite");
    println!(
        "\nmean {}  min {}  max {}",
        pct(s.mean),
        pct(s.min),
        pct(s.max)
    );
    println!("paper claim: \"negligible time (5%) overhead\"");
}
