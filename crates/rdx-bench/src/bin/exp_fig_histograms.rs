//! F8 — side-by-side reuse-distance histograms (RDX vs ground truth) for
//! six representative workloads; prints the per-bucket series the paper
//! plots.

use rdx_bench::{accuracy_config, experiment_params};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::Histogram;
use rdx_trace::Granularity;
use rdx_workloads::by_name;

const SELECTED: &[&str] = &[
    "stream_triad",
    "pointer_chase",
    "zipf",
    "matmul_blocked",
    "stencil2d",
    "gauss_hotset",
];

fn series(h: &Histogram) -> Vec<(String, f64)> {
    let n = h.normalized();
    let mut out: Vec<(String, f64)> = n
        .buckets()
        .map(|b| (format!("[{},{})", b.range.lo, b.range.hi), b.weight))
        .collect();
    if n.infinite_weight() > 0.0 {
        out.push(("cold".into(), n.infinite_weight()));
    }
    out
}

fn main() {
    let params = experiment_params();
    let config = accuracy_config();
    println!(
        "F8: reuse-distance histograms, RDX vs ground truth ({} accesses)\n",
        params.accesses
    );
    for name in SELECTED {
        let w = by_name(name).expect("selected workload exists");
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, config.binning);
        let est = RdxRunner::new(config).profile(w.stream(&params));
        println!("== {} ==", w.name);
        println!("{:>24} {:>10} {:>10}", "bucket", "exact", "rdx");
        let ex = series(exact.rd.as_histogram());
        let es = series(est.rd.as_histogram());
        // union of bucket labels, exact's order first
        let mut labels: Vec<String> = ex.iter().map(|(l, _)| l.clone()).collect();
        for (l, _) in &es {
            if !labels.contains(l) {
                labels.push(l.clone());
            }
        }
        for label in labels {
            let a = ex
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0.0, |(_, v)| *v);
            let b = es
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0.0, |(_, v)| *v);
            println!("{label:>24} {a:>10.4} {b:>10.4}");
        }
        println!();
    }
}
