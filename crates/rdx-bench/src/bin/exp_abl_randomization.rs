//! A3 — period randomization on/off: a fixed sampling period can resonate
//! with loop trip counts and sample the same loop position forever; the
//! jitter RDX inherits from PMU practice breaks the lock-step.

use rdx_bench::{accuracy_config, experiment_params, pct, print_table};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;
use rdx_workloads::by_name;

/// Loop-heavy kernels where resonance is plausible.
const SELECTED: &[&str] = &[
    "stream_triad",
    "strided",
    "fifo_queue",
    "matmul_naive",
    "stencil2d",
    "sort_merge",
];

fn main() {
    let params = experiment_params();
    let base = accuracy_config();
    println!(
        "A3: accuracy with and without period randomization (period {})\n",
        base.machine.sampling.period
    );
    let mut rows = Vec::new();
    for name in SELECTED {
        let w = by_name(name).expect("selected workload exists");
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, base.binning);
        let with_jitter = RdxRunner::new(base).profile(w.stream(&params));
        let mut fixed = base;
        fixed.machine.sampling.jitter = 0;
        let without = RdxRunner::new(fixed).profile(w.stream(&params));
        let acc = |p: &rdx_core::RdxProfile| {
            histogram_intersection(p.rd.as_histogram(), exact.rd.as_histogram())
                .expect("same binning")
        };
        rows.push(vec![
            w.name.to_string(),
            pct(acc(&with_jitter)),
            pct(acc(&without)),
            with_jitter.traps.to_string(),
            without.traps.to_string(),
        ]);
    }
    print_table(
        &[
            "workload",
            "jittered acc",
            "fixed acc",
            "traps (jit)",
            "traps (fix)",
        ],
        &rows,
    );
}
