//! A4 — conversion-method and estimator comparison: RDX's footprint
//! conversion vs naive time-as-distance, and the counter-only / SHARDS
//! baselines, all against exhaustive ground truth.

use rdx_baselines::{CounterOnly, Shards};
use rdx_bench::{accuracy_config, experiment_params, geo_mean, pct, per_workload, print_table};
use rdx_core::{ConversionMethod, RdxRunner};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_trace::Granularity;

fn main() {
    let params = experiment_params();
    let base = accuracy_config();
    println!(
        "A4: estimator comparison ({} accesses, period {})\n",
        params.accesses, base.machine.sampling.period
    );
    let rows = per_workload(|w| {
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, base.binning);
        let acc = |h: &rdx_histogram::Histogram| {
            histogram_intersection(h, exact.rd.as_histogram()).expect("same binning")
        };
        let fp = RdxRunner::new(base).profile(w.stream(&params));
        let naive = RdxRunner::new(base.with_conversion(ConversionMethod::TimeAsDistance))
            .profile(w.stream(&params));
        let mut counter = CounterOnly::new(base.machine.sampling.period);
        counter.granularity = Granularity::WORD;
        let co = counter.profile(w.stream(&params));
        let mut shards = Shards::new(0.01);
        shards.granularity = Granularity::WORD;
        let sh = shards.profile(w.stream(&params));
        (
            acc(fp.rd.as_histogram()).max(1e-9),
            acc(naive.rd.as_histogram()).max(1e-9),
            acc(co.rd.as_histogram()).max(1e-9),
            acc(sh.rd.as_histogram()).max(1e-9),
        )
    });
    let col =
        |i: usize| -> Vec<f64> { rows.iter().map(|(_, r)| [r.0, r.1, r.2, r.3][i]).collect() };
    let mut table: Vec<Vec<String>> = rows
        .iter()
        .map(|(w, (a, b, c, d))| vec![w.name.to_string(), pct(*a), pct(*b), pct(*c), pct(*d)])
        .collect();
    table.push(vec![
        "geo-mean".into(),
        pct(geo_mean(&col(0))),
        pct(geo_mean(&col(1))),
        pct(geo_mean(&col(2))),
        pct(geo_mean(&col(3))),
    ]);
    print_table(
        &[
            "workload",
            "rdx (footprint)",
            "rdx (time-as-dist)",
            "counter-only",
            "shards 1%",
        ],
        &table,
    );
    println!("\nSHARDS is accurate but instruments every access; counter-only is");
    println!("featherlight but inaccurate; RDX holds accuracy at sampling cost.");
}
