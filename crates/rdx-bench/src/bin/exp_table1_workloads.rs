//! T1 — the workload suite table (substitutes the paper's SPEC CPU2017
//! benchmark table): per-kernel access counts, footprints, store ratios,
//! mean reuse distance and cold fraction, plus the SPEC analog mapping.

use rdx_bench::{experiment_params, pct, per_workload, print_table};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::Binning;
use rdx_trace::{Granularity, TraceStats};

fn main() {
    let params = experiment_params();
    println!(
        "T1: workload suite ({} accesses, {} elements, seed {})\n",
        params.accesses, params.elements, params.seed
    );
    let rows = per_workload(|w| {
        let stats = TraceStats::measure(w.stream(&params), Granularity::WORD);
        let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2());
        let mean_rd = exact
            .rd
            .as_histogram()
            .finite_mean()
            .map_or_else(|| "-".into(), |m| format!("{m:.0}"));
        vec![
            w.name.to_string(),
            w.spec_analog.to_string(),
            stats.accesses.to_string(),
            stats.distinct_blocks.to_string(),
            format!("{:.0} KiB", stats.footprint_bytes() as f64 / 1024.0),
            pct(stats.store_ratio()),
            mean_rd,
            pct(exact.cold_fraction()),
        ]
    });
    print_table(
        &[
            "workload",
            "spec analog",
            "accesses",
            "distinct",
            "footprint",
            "stores",
            "mean RD",
            "cold",
        ],
        &rows.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
    );
}
