//! F9 — sensitivity to the sampling period: accuracy and overhead as the
//! period sweeps from dense (512) to the paper's 64 Ki operating point.
//!
//! The crossover story: overhead falls linearly with the period while
//! accuracy degrades only once too few pairs are collected for the run
//! length — long-running applications (the paper's SPEC setting) can have
//! both, short runs must pick.

use rdx_bench::{experiment_params, geo_mean, jobs, pct, per_workload, print_table};
use rdx_core::{profile_batch, BatchTask, RdxConfig};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::Binning;
use rdx_trace::Granularity;
use rdx_workloads::suite;
use std::collections::HashMap;

fn main() {
    let params = experiment_params();
    println!(
        "F9: accuracy & overhead vs sampling period ({} accesses)\n",
        params.accesses
    );
    // ground truth once per workload
    let exacts: HashMap<&str, _> = per_workload(|w| {
        ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2())
    })
    .into_iter()
    .map(|(w, e)| (w.name, e))
    .collect();

    // The whole period × workload grid is one batch: the runner keeps every
    // core busy across period boundaries instead of barriering per period.
    let periods = [512u64, 1024, 2048, 4096, 8192, 16384, 32768, 65536];
    let tasks: Vec<_> = periods
        .iter()
        .flat_map(|&period| {
            suite().iter().map(move |w| BatchTask {
                config: RdxConfig::default().with_period(period),
                make_stream: move || w.stream(&params),
            })
        })
        .collect();
    let profiles = profile_batch(tasks, jobs());

    let mut rows = Vec::new();
    for (chunk, &period) in profiles.chunks(suite().len()).zip(&periods) {
        let results: Vec<_> = suite()
            .iter()
            .zip(chunk)
            .map(|(w, est)| {
                let acc =
                    histogram_intersection(est.rd.as_histogram(), exacts[w.name].rd.as_histogram())
                        .expect("same binning");
                (acc, est.time_overhead, est.traps)
            })
            .collect();
        let accs: Vec<f64> = results.iter().map(|r| r.0.max(1e-9)).collect();
        let overheads: Vec<f64> = results.iter().map(|r| r.1).collect();
        let traps: u64 = results.iter().map(|r| r.2).sum();
        rows.push(vec![
            period.to_string(),
            pct(geo_mean(&accs)),
            pct(overheads.iter().sum::<f64>() / overheads.len() as f64),
            (traps / results.len() as u64).to_string(),
        ]);
    }
    print_table(
        &[
            "period",
            "geo-mean accuracy",
            "mean overhead",
            "traps/workload",
        ],
        &rows,
    );
    println!("\nAt the paper's scale (hours-long SPEC runs, ~10^12 accesses), period");
    println!("64Ki collects millions of pairs: the top-right corner of this table.");
}
