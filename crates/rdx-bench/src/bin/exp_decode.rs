//! Ingestion contrast: per-access varint decode vs bulk chunk decode vs
//! pipelined decode-ahead, measured two ways.
//!
//! **Decode-only.** Every registry workload is serialized to RDXT bytes
//! once; the whole set is then drained three ways without profiling —
//! the scalar `try_next` loop, `decode_chunk` into a reusable buffer,
//! and a `PipelinedReader` consumed through the chunk API — giving the
//! raw decoder throughput each ingestion path can feed the machine.
//!
//! **End-to-end.** Each serialized workload is profiled at the paper's
//! 64 Ki operating point three ways: the pre-chunk-decoder baseline
//! (`Opaque`-wrapped reader, so the machine single-steps and the reader
//! decodes one varint per access — exactly what `rdx profile <file>` did
//! before bulk ingestion), the bulk chunk decoder, and the pipelined
//! decode-ahead reader. All three profiles are asserted bit-identical;
//! the speedups are the whole point of the ingestion pipeline.
//!
//! **Decode kernels.** The bulk drain is additionally timed with the
//! varint decode kernel pinned to the scalar oracle and to whatever
//! auto dispatch selects ([`rdx_trace::kernels`]); their ratio is
//! `kernel_speedup`, an in-process number immune to host speed — the
//! quantity the CI regression gate checks.
//!
//! Results land in the `"decode"` section of `BENCH_rdx.json` (path
//! override `RDX_BENCH_OUT`; other sections, e.g. `exp_throughput`'s
//! `"throughput"`, are preserved). `RDX_ACCESSES` scales the run;
//! `RDX_REPS` (default 3) controls the best-of-N timing.
//!
//! `--check [--tol <0..1>]` switches to regression-check mode: only the
//! decode-kernel contrast runs, fresh `kernel_speedup` is compared
//! against the recorded baseline (`BENCH_rdx.json`, override
//! `RDX_BENCH_BASELINE`; fail only below recorded × (1 − tol)), and
//! fresh numbers go to `BENCH_fresh.json` (override `RDX_BENCH_OUT`).
//! `RDX_KERNEL` forces what "auto" resolves to — CI sets
//! `RDX_KERNEL=scalar` to prove the gate fails when the fast kernels
//! are disabled.

use rdx_bench::{
    bench_args, bench_out_path, check_metric, experiment_params, geo_mean, json_number,
    kernel_override, paper_config, print_table, read_bench_baseline, reps, resolve_tolerance,
    time_min, update_bench_json_at, update_bench_json_keeping,
};
use rdx_core::{IngestOptions, RdxProfile, RdxRunner, RdxtInput};
use rdx_trace::{
    io, kernels::resolve_decode, AccessStream, Bytes, Chunk, KernelChoice, Opaque, PipelineOptions,
    PipelinedReader, Trace, TraceReader, DEFAULT_CHUNK_CAPACITY,
};
use rdx_workloads::suite;
use std::fmt::Write as _;

struct Row {
    name: &'static str,
    baseline_aps: f64,
    bulk_aps: f64,
    pipelined_aps: f64,
}

impl Row {
    fn bulk_speedup(&self) -> f64 {
        self.bulk_aps / self.baseline_aps
    }

    fn pipelined_speedup(&self) -> f64 {
        self.pipelined_aps / self.baseline_aps
    }
}

fn assert_identical(name: &str, what: &str, a: &RdxProfile, b: &RdxProfile) {
    assert_eq!(a.rd, b.rd, "{name}: rd histogram diverged ({what})");
    assert_eq!(a.rt, b.rt, "{name}: rt histogram diverged ({what})");
    assert_eq!(
        a.samples, b.samples,
        "{name}: sample count diverged ({what})"
    );
    assert_eq!(a.traps, b.traps, "{name}: trap count diverged ({what})");
    assert_eq!(
        a.m_estimate.to_bits(),
        b.m_estimate.to_bits(),
        "{name}: m_estimate diverged ({what})"
    );
}

/// One decode-kernel measurement: the resolved auto kernel and the
/// bulk drain's throughput with the kernel pinned scalar vs auto.
struct KernelBench {
    auto_name: &'static str,
    scalar_aps: f64,
    auto_aps: f64,
}

impl KernelBench {
    fn kernel_speedup(&self) -> f64 {
        self.auto_aps / self.scalar_aps
    }
}

/// Times the bulk chunk drain over the serialized suite with the varint
/// decode kernel pinned to the scalar oracle and to what auto dispatch
/// picks (`RDX_KERNEL` overrides the auto choice).
fn decode_kernel_bench(blobs: &[(&'static str, u64, Bytes)], total: u64, reps: u32) -> KernelBench {
    let auto_choice = kernel_override().unwrap_or(KernelChoice::Auto);
    let drain = |kernel: KernelChoice| {
        let (secs, n) = time_min(reps, || {
            let mut n = 0u64;
            let mut chunk = Chunk::default();
            for (name, _, raw) in blobs {
                let mut r = TraceReader::new(raw.clone())
                    .expect("valid trace bytes")
                    .with_kernel(kernel);
                loop {
                    match r.decode_chunk(&mut chunk, DEFAULT_CHUNK_CAPACITY) {
                        Ok(0) => break,
                        Ok(k) => n += k as u64,
                        Err(e) => panic!("{name}: clean trace failed to decode: {e}"),
                    }
                }
            }
            n
        });
        assert_eq!(n, total, "kernel '{}' drain lost records", kernel.name());
        total as f64 / secs
    };
    KernelBench {
        auto_name: resolve_decode(auto_choice).name(),
        scalar_aps: drain(KernelChoice::Scalar),
        auto_aps: drain(auto_choice),
    }
}

fn print_kernel_bench(bench: &KernelBench, total: u64) {
    println!(
        "\ndecode kernels (bulk drain, {total} accesses, auto resolves to '{}'):",
        bench.auto_name
    );
    print_table(
        &["kernel", "acc/s", "vs scalar"],
        &[
            vec![
                "scalar".into(),
                format!("{:.3e}", bench.scalar_aps),
                "1.00x".into(),
            ],
            vec![
                bench.auto_name.into(),
                format!("{:.3e}", bench.auto_aps),
                format!("{:.2}x", bench.kernel_speedup()),
            ],
        ],
    );
    println!(
        "kernel_speedup (auto vs scalar): {:.2}x",
        bench.kernel_speedup()
    );
}

/// Serializes every registry workload once; the timed loops share
/// these buffers (`Bytes` clones are refcounted, not copies).
fn serialize_suite(params: &rdx_workloads::Params) -> Vec<(&'static str, u64, Bytes)> {
    suite()
        .iter()
        .map(|w| {
            let trace = Trace::from_stream(w.name, w.stream(params));
            (w.name, trace.len() as u64, io::to_bytes(&trace))
        })
        .collect()
}

/// `--check`: rerun only the decode-kernel contrast, gate on the
/// recorded `kernel_speedup` ratio, and write the fresh numbers to a
/// separate artifact file. Returns the process exit code.
fn check_mode(tol_flag: Option<f64>, params: &rdx_workloads::Params, reps: u32) -> i32 {
    let baseline = match read_bench_baseline() {
        Ok(text) => text,
        Err(e) => {
            eprintln!("exp_decode --check: cannot read recorded baseline: {e}");
            return 2;
        }
    };
    let Some(recorded) = json_number(&baseline, &["decode", "kernel_speedup"]) else {
        eprintln!(
            "exp_decode --check: baseline has no decode.kernel_speedup \
             (run exp_decode once without --check to record it)"
        );
        return 2;
    };
    let tol = resolve_tolerance(tol_flag, &baseline, "decode");
    let blobs = serialize_suite(params);
    let total: u64 = blobs.iter().map(|&(_, n, _)| n).sum();
    let bench = decode_kernel_bench(&blobs, total, reps);
    print_kernel_bench(&bench, total);
    let ok = check_metric(
        "decode.kernel_speedup",
        bench.kernel_speedup(),
        recorded,
        tol,
    );
    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "    \"check_tolerance\": {tol:.3},");
    let _ = writeln!(body, "    \"check_passed\": {ok},");
    let _ = writeln!(body, "    \"kernel\": \"{}\",", bench.auto_name);
    let _ = writeln!(
        body,
        "    \"kernel_scalar_accesses_per_sec\": {:.1},",
        bench.scalar_aps
    );
    let _ = writeln!(
        body,
        "    \"kernel_accesses_per_sec\": {:.1},",
        bench.auto_aps
    );
    let _ = writeln!(
        body,
        "    \"kernel_speedup\": {:.3}",
        bench.kernel_speedup()
    );
    let _ = write!(body, "  }}");
    let out = update_bench_json_at(&bench_out_path("BENCH_fresh.json"), "decode", &body)
        .unwrap_or_else(|e| panic!("writing fresh check numbers: {e}"));
    println!("wrote {out} (section \"decode\", check mode)");
    i32::from(!ok)
}

fn main() {
    let args = bench_args().unwrap_or_else(|e| {
        eprintln!("exp_decode: {e}");
        std::process::exit(2);
    });
    let params = experiment_params();
    let config = paper_config();
    let period = config.machine.sampling.period;
    let reps = reps();
    if args.check {
        std::process::exit(check_mode(args.tol, &params, reps));
    }
    println!(
        "Ingestion: per-access decode vs bulk chunks vs pipelined decode-ahead \
         ({} accesses/workload, period {period}, best of {reps})\n",
        params.accesses
    );

    let blobs = serialize_suite(&params);
    let total: u64 = blobs.iter().map(|&(_, n, _)| n).sum();

    // Decode-only throughput over the whole serialized suite.
    let (scalar_s, scalar_n) = time_min(reps, || {
        let mut n = 0u64;
        for (_, _, raw) in &blobs {
            let mut r = TraceReader::new(raw.clone()).expect("valid trace bytes");
            while r.next_access().is_some() {
                n += 1;
            }
        }
        n
    });
    let (bulk_s, bulk_n) = time_min(reps, || {
        let mut n = 0u64;
        let mut chunk = Chunk::default();
        for (name, _, raw) in &blobs {
            let mut r = TraceReader::new(raw.clone()).expect("valid trace bytes");
            loop {
                match r.decode_chunk(&mut chunk, DEFAULT_CHUNK_CAPACITY) {
                    Ok(0) => break,
                    Ok(k) => n += k as u64,
                    Err(e) => panic!("{name}: clean trace failed to decode: {e}"),
                }
            }
        }
        n
    });
    let (pipe_s, pipe_n) = time_min(reps, || {
        let mut n = 0u64;
        for (name, _, raw) in &blobs {
            let r = TraceReader::new(raw.clone()).expect("valid trace bytes");
            let mut p = PipelinedReader::with_options(r, PipelineOptions::default());
            while let Some(c) = p.next_chunk() {
                let len = c.len();
                n += len as u64;
                p.consume_chunk(len);
            }
            p.finish()
                .unwrap_or_else(|e| panic!("{name}: clean trace failed to decode: {e}"));
        }
        n
    });
    assert_eq!(scalar_n, total, "scalar drain lost records");
    assert_eq!(bulk_n, total, "bulk drain lost records");
    assert_eq!(pipe_n, total, "pipelined drain lost records");
    let kernel_bench = decode_kernel_bench(&blobs, total, reps);
    let (scalar_aps, bulk_only_aps, pipe_only_aps) = (
        total as f64 / scalar_s,
        total as f64 / bulk_s,
        total as f64 / pipe_s,
    );
    println!("decode-only ({total} accesses over the serialized suite):");
    print_table(
        &["path", "acc/s", "speedup"],
        &[
            vec![
                "per-access".into(),
                format!("{scalar_aps:.3e}"),
                "1.00x".into(),
            ],
            vec![
                "bulk chunks".into(),
                format!("{bulk_only_aps:.3e}"),
                format!("{:.2}x", bulk_only_aps / scalar_aps),
            ],
            vec![
                "pipelined".into(),
                format!("{pipe_only_aps:.3e}"),
                format!("{:.2}x", pipe_only_aps / scalar_aps),
            ],
        ],
    );

    // End-to-end file-backed profiling at the paper operating point.
    let runner = RdxRunner::new(config);
    let mut rows: Vec<Row> = Vec::new();
    for (name, n, raw) in &blobs {
        let n = *n as f64;
        let (base_s, baseline) = time_min(reps, || {
            let r = TraceReader::new(raw.clone()).expect("valid trace bytes");
            runner.profile(Opaque::new(r))
        });
        let (bulk_s, bulk) = time_min(reps, || {
            let input = RdxtInput::from_bytes(*name, raw.clone()).expect("valid trace bytes");
            let (p, verdict) =
                runner.profile_rdxt(input, &IngestOptions::default().with_pipelined(false));
            assert!(verdict.is_ok(), "{name}: clean decode expected");
            p
        });
        let (pipe_s, pipelined) = time_min(reps, || {
            let input = RdxtInput::from_bytes(*name, raw.clone()).expect("valid trace bytes");
            let (p, verdict) = runner.profile_rdxt(input, &IngestOptions::default());
            assert!(verdict.is_ok(), "{name}: clean decode expected");
            p
        });
        assert_identical(name, "bulk vs baseline", &bulk, &baseline);
        assert_identical(name, "pipelined vs baseline", &pipelined, &baseline);
        rows.push(Row {
            name,
            baseline_aps: n / base_s,
            bulk_aps: n / bulk_s,
            pipelined_aps: n / pipe_s,
        });
    }

    println!("\nend-to-end file-backed profiling (period {period}):");
    print_table(
        &[
            "workload",
            "baseline acc/s",
            "bulk acc/s",
            "pipelined acc/s",
            "bulk speedup",
            "pipelined speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.to_string(),
                    format!("{:.3e}", r.baseline_aps),
                    format!("{:.3e}", r.bulk_aps),
                    format!("{:.3e}", r.pipelined_aps),
                    format!("{:.2}x", r.bulk_speedup()),
                    format!("{:.2}x", r.pipelined_speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    print_kernel_bench(&kernel_bench, total);

    let bulk_speedups: Vec<f64> = rows.iter().map(Row::bulk_speedup).collect();
    let pipe_speedups: Vec<f64> = rows.iter().map(Row::pipelined_speedup).collect();
    let (geo_bulk, geo_pipe) = (geo_mean(&bulk_speedups), geo_mean(&pipe_speedups));
    let max_pipe = pipe_speedups.iter().fold(0.0f64, |a, &b| a.max(b));
    println!(
        "\ngeo-mean end-to-end speedup: bulk {geo_bulk:.2}x, pipelined {geo_pipe:.2}x \
         (max {max_pipe:.2}x; profiles verified bit-identical)"
    );

    // A hand-tuned check_tolerance in the recorded file survives
    // re-runs; the gate falls back to 0.25 when absent.
    let out = update_bench_json_keeping(
        "decode",
        &render_section(
            &rows,
            &kernel_bench,
            total,
            period,
            (scalar_aps, bulk_only_aps, pipe_only_aps),
            (geo_bulk, geo_pipe, max_pipe),
        ),
        &["check_tolerance"],
    )
    .unwrap_or_else(|e| panic!("writing benchmark results: {e}"));
    println!("wrote {out} (section \"decode\")");
}

/// Hand-rolled JSON for the `"decode"` section (no JSON crate in the
/// workspace); every value is a finite number or a registry identifier.
fn render_section(
    rows: &[Row],
    kernel_bench: &KernelBench,
    total: u64,
    period: u64,
    (scalar_aps, bulk_aps, pipe_aps): (f64, f64, f64),
    (geo_bulk, geo_pipe, max_pipe): (f64, f64, f64),
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "    \"accesses\": {total},");
    let _ = writeln!(s, "    \"period\": {period},");
    let _ = writeln!(s, "    \"kernel\": \"{}\",", kernel_bench.auto_name);
    let _ = writeln!(
        s,
        "    \"kernel_scalar_accesses_per_sec\": {:.1},",
        kernel_bench.scalar_aps
    );
    let _ = writeln!(
        s,
        "    \"kernel_accesses_per_sec\": {:.1},",
        kernel_bench.auto_aps
    );
    let _ = writeln!(
        s,
        "    \"kernel_speedup\": {:.3},",
        kernel_bench.kernel_speedup()
    );
    let _ = writeln!(s, "    \"decode_only\": {{");
    let _ = writeln!(s, "      \"scalar_accesses_per_sec\": {scalar_aps:.1},");
    let _ = writeln!(s, "      \"bulk_accesses_per_sec\": {bulk_aps:.1},");
    let _ = writeln!(s, "      \"pipelined_accesses_per_sec\": {pipe_aps:.1},");
    let _ = writeln!(s, "      \"bulk_speedup\": {:.3},", bulk_aps / scalar_aps);
    let _ = writeln!(
        s,
        "      \"pipelined_speedup\": {:.3}",
        pipe_aps / scalar_aps
    );
    let _ = writeln!(s, "    }},");
    let _ = writeln!(s, "    \"end_to_end\": {{");
    let _ = writeln!(s, "      \"geo_mean_bulk_speedup\": {geo_bulk:.3},");
    let _ = writeln!(s, "      \"geo_mean_pipelined_speedup\": {geo_pipe:.3},");
    let _ = writeln!(s, "      \"max_pipelined_speedup\": {max_pipe:.3},");
    let _ = writeln!(s, "      \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "        {{\"name\": \"{}\", \"baseline_accesses_per_sec\": {:.1}, \
             \"bulk_accesses_per_sec\": {:.1}, \"pipelined_accesses_per_sec\": {:.1}, \
             \"bulk_speedup\": {:.3}, \"pipelined_speedup\": {:.3}}}{comma}",
            r.name,
            r.baseline_aps,
            r.bulk_aps,
            r.pipelined_aps,
            r.bulk_speedup(),
            r.pipelined_speedup()
        );
    }
    let _ = writeln!(s, "      ]");
    let _ = writeln!(s, "    }}");
    let _ = write!(s, "  }}");
    s
}
