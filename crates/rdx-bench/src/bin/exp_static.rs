//! P4 — three-way accuracy oracle: static estimation (`rdx-static`) vs.
//! RDX sampling vs. exact Olken ground truth, per affine kernel.
//!
//! The static column executes **zero** accesses — it is a closed-form
//! function of each kernel's loop structure — yet lands in the same
//! log-bucketed histograms as the dynamic paths, so all three are
//! directly comparable with histogram intersection. The miss-ratio-curve
//! column reports the max deviation of the static estimate from ground
//! truth over an LRU capacity sweep — the quantity
//! `rdx-cache::predict` consumers actually feel.
//!
//! Every non-affine registry kernel must be rejected with a typed
//! `NotAffine` error; a static "estimate" for one would be a wrong
//! answer, and this binary fails if a rejection goes missing.
//!
//! Results are recorded under the `"static"` section of `BENCH_rdx.json`
//! (path override `RDX_BENCH_OUT`). `--check [--tol <0..1>]` switches to
//! regression-check mode: gate on the recorded
//! `static.geo_mean_static_accuracy` (baseline `BENCH_rdx.json`,
//! override `RDX_BENCH_BASELINE`), writing fresh numbers to
//! `BENCH_fresh.json` instead of touching the baseline.
//!
//! The default footprint is 12 288 elements (override `RDX_ELEMENTS`) so
//! that the largest affine period (matmul at n = 64 → ~1.05 M accesses)
//! completes within the default 4 M-access budget.

use rdx_bench::{
    accuracy_config, bench_args, bench_out_path, check_metric, experiment_params, geo_mean,
    json_number, pct, print_table, read_bench_baseline, resolve_tolerance, update_bench_json_at,
    update_bench_json_keeping,
};
use rdx_core::RdxRunner;
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, MissRatioCurve, RdHistogram};
use rdx_static::{StaticError, StaticProfile};
use rdx_trace::Granularity;
use rdx_workloads::{by_name, Params};
use std::fmt::Write as _;

/// One affine kernel's three-way comparison.
struct Row {
    name: &'static str,
    stat: StaticProfile,
    static_acc: f64,
    sampled_acc: f64,
    mrc_dev: f64,
}

fn static_params() -> Params {
    let mut p = experiment_params();
    if std::env::var("RDX_ELEMENTS").is_err() {
        p = p.with_elements(12_288);
    }
    p
}

/// Max |static − exact| LRU miss ratio over a doubling capacity sweep.
fn mrc_max_deviation(a: &RdHistogram, b: &RdHistogram, max_cap: u64) -> f64 {
    let ma = MissRatioCurve::from_rd_histogram(a);
    let mb = MissRatioCurve::from_rd_histogram(b);
    let mut cap = 1u64;
    let mut worst = 0.0f64;
    while cap <= max_cap {
        worst = worst.max((ma.miss_ratio(cap) - mb.miss_ratio(cap)).abs());
        cap = (cap * 2).max(cap + 1);
    }
    worst
}

/// Runs the three-way comparison for every affine kernel. Panics if a
/// static footprint disagrees with the exact distinct-block count — the
/// structural identity the proptests pin at small scale must hold at
/// experiment scale too.
fn measure(params: &Params) -> Vec<Row> {
    let config = accuracy_config();
    rdx_static::affine_kernels()
        .iter()
        .map(|&name| {
            let stat = rdx_static::estimate(name, params)
                .unwrap_or_else(|e| panic!("{name} must have a static model: {e}"));
            let w = by_name(name).expect("affine kernels are registry members");
            let exact = ExactProfile::measure(w.stream(params), Granularity::WORD, Binning::log2());
            let sampled = RdxRunner::new(config).profile(w.stream(params));
            // The footprint identity needs one full period; a truncated
            // run has not yet touched everything.
            if params.accesses >= stat.period {
                assert_eq!(
                    stat.footprint, exact.distinct_blocks,
                    "{name}: static footprint vs exact distinct blocks"
                );
            } else {
                eprintln!(
                    "note: {name}: {} accesses < period {} — footprint identity skipped \
                     (raise RDX_ACCESSES or lower RDX_ELEMENTS)",
                    params.accesses, stat.period
                );
            }
            let static_acc =
                histogram_intersection(stat.rd.as_histogram(), exact.rd.as_histogram())
                    .expect("same binning");
            let sampled_acc =
                histogram_intersection(sampled.rd.as_histogram(), exact.rd.as_histogram())
                    .expect("same binning");
            let mrc_dev = mrc_max_deviation(&stat.rd, &exact.rd, 2 * params.elements);
            Row {
                name,
                stat,
                static_acc,
                sampled_acc,
                mrc_dev,
            }
        })
        .collect()
}

/// Every non-affine registry kernel must be refused with a typed error.
/// Returns how many rejections were verified.
fn verify_rejections(params: &Params) -> usize {
    let non_affine = rdx_static::non_affine_kernels();
    for &name in &non_affine {
        match rdx_static::estimate(name, params) {
            Err(StaticError::NotAffine { kernel, reason }) => {
                assert_eq!(kernel, name);
                assert!(!reason.is_empty(), "{name}: rejection must carry a reason");
            }
            other => panic!("{name}: expected a typed NotAffine rejection, got {other:?}"),
        }
    }
    non_affine.len()
}

fn print_rows(rows: &[Row], params: &Params) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                pct(r.static_acc),
                pct(r.sampled_acc),
                format!("{:.4}", r.mrc_dev),
                r.stat.classes.to_string(),
                r.stat.period.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "kernel",
            "static acc",
            "sampled acc",
            "static mrc dev",
            "classes",
            "period",
        ],
        &table,
    );
    let static_accs: Vec<f64> = rows.iter().map(|r| r.static_acc).collect();
    let sampled_accs: Vec<f64> = rows.iter().map(|r| r.sampled_acc).collect();
    println!(
        "\ngeo-mean static accuracy : {} (zero accesses executed)",
        pct(geo_mean(&static_accs))
    );
    println!(
        "geo-mean sampled accuracy: {} ({} accesses sampled per kernel)",
        pct(geo_mean(&sampled_accs)),
        params.accesses
    );
}

fn body_json(rows: &[Row], params: &Params, rejected: usize, tol: f64) -> String {
    let static_accs: Vec<f64> = rows.iter().map(|r| r.static_acc).collect();
    let sampled_accs: Vec<f64> = rows.iter().map(|r| r.sampled_acc).collect();
    let worst_dev = rows.iter().map(|r| r.mrc_dev).fold(0.0f64, f64::max);
    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(body, "    \"accesses\": {},", params.accesses);
    let _ = writeln!(body, "    \"elements\": {},", params.elements);
    let _ = writeln!(body, "    \"check_tolerance\": {tol:.3},");
    let _ = writeln!(
        body,
        "    \"geo_mean_static_accuracy\": {:.4},",
        geo_mean(&static_accs)
    );
    let _ = writeln!(
        body,
        "    \"geo_mean_sampled_accuracy\": {:.4},",
        geo_mean(&sampled_accs)
    );
    let _ = writeln!(body, "    \"max_mrc_deviation\": {worst_dev:.4},");
    let _ = writeln!(body, "    \"rejected_non_affine\": {rejected},");
    let _ = writeln!(body, "    \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            body,
            "      {{\"name\": \"{}\", \"static_accuracy\": {:.4}, \
             \"sampled_accuracy\": {:.4}, \"mrc_deviation\": {:.4}, \
             \"classes\": {}, \"period\": {}, \"footprint\": {}}}{comma}",
            r.name,
            r.static_acc,
            r.sampled_acc,
            r.mrc_dev,
            r.stat.classes,
            r.stat.period,
            r.stat.footprint
        );
    }
    let _ = writeln!(body, "    ]");
    let _ = write!(body, "  }}");
    body
}

/// `--check`: rerun the comparison, gate on the recorded geo-mean static
/// accuracy, and write fresh numbers to a separate artifact file.
fn check_mode(tol_flag: Option<f64>, params: &Params) -> i32 {
    let baseline = match read_bench_baseline() {
        Ok(text) => text,
        Err(e) => {
            eprintln!("exp_static --check: cannot read recorded baseline: {e}");
            return 2;
        }
    };
    let Some(recorded) = json_number(&baseline, &["static", "geo_mean_static_accuracy"]) else {
        eprintln!(
            "exp_static --check: baseline has no static.geo_mean_static_accuracy \
             (run exp_static once without --check to record it)"
        );
        return 2;
    };
    let tol = resolve_tolerance(tol_flag, &baseline, "static");
    let rows = measure(params);
    let rejected = verify_rejections(params);
    print_rows(&rows, params);
    let static_accs: Vec<f64> = rows.iter().map(|r| r.static_acc).collect();
    let ok = check_metric(
        "static.geo_mean_static_accuracy",
        geo_mean(&static_accs),
        recorded,
        tol,
    );
    let body = body_json(&rows, params, rejected, tol);
    let out = update_bench_json_at(&bench_out_path("BENCH_fresh.json"), "static", &body)
        .unwrap_or_else(|e| panic!("writing fresh check numbers: {e}"));
    println!("wrote {out} (section \"static\", check mode)");
    i32::from(!ok)
}

fn main() {
    let args = bench_args().unwrap_or_else(|e| {
        eprintln!("exp_static: {e}");
        std::process::exit(2);
    });
    let params = static_params();
    if args.check {
        std::process::exit(check_mode(args.tol, &params));
    }
    println!(
        "P4: static vs sampled vs exact Olken ({} accesses, {} elements)\n",
        params.accesses, params.elements
    );
    let rows = measure(&params);
    let rejected = verify_rejections(&params);
    print_rows(&rows, &params);
    println!(
        "non-affine kernels rejected with typed errors: {rejected} / {}",
        rdx_static::non_affine_kernels().len()
    );
    let body = body_json(&rows, &params, rejected, args.tol.unwrap_or(0.15));
    let out = update_bench_json_keeping("static", &body, &["check_tolerance"])
        .unwrap_or_else(|e| panic!("writing benchmark results: {e}"));
    println!("wrote {out} (section \"static\")");
}
