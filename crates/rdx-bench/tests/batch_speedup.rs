//! Wall-clock speedup of the parallel batch runner.
//!
//! Ignored by default because timing assertions are hardware-dependent;
//! run explicitly with
//!
//! ```text
//! cargo test --release -p rdx-bench --test batch_speedup -- --ignored
//! ```
//!
//! On a machine with ≥ 4 cores this asserts a ≥ 2× speedup for an
//! `exp_fig_accuracy`-sized sweep (the whole workload registry under one
//! profiling config). On fewer cores it only checks that the parallel
//! path is not pathologically slower, since real speedup is impossible.

use rdx_bench::par_profile_suite;
use rdx_core::{default_jobs, RdxConfig};
use rdx_workloads::Params;
use std::time::Instant;

#[test]
#[ignore = "timing assertion; run explicitly in release mode"]
fn batch_runner_speedup_on_suite_sweep() {
    let params = Params::default().with_accesses(2_000_000);
    let config = RdxConfig::default().with_period(2048);
    let cores = default_jobs();

    // Warm up (page in binaries, populate allocator arenas).
    let _ = par_profile_suite(config, &Params::default().with_accesses(50_000), 1);

    let t0 = Instant::now();
    let seq = par_profile_suite(config, &params, 1);
    let sequential = t0.elapsed();

    let t1 = Instant::now();
    let par = par_profile_suite(config, &params, cores);
    let parallel = t1.elapsed();

    // Determinism holds regardless of timing.
    for ((wa, a), (wb, b)) in seq.iter().zip(&par) {
        assert_eq!(wa.name, wb.name);
        assert_eq!(a.rd, b.rd, "{}: rd mismatch across jobs", wa.name);
    }

    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    eprintln!(
        "suite sweep: sequential {sequential:.2?}, parallel ({cores} jobs) \
         {parallel:.2?}, speedup {speedup:.2}x"
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "expected ≥2x speedup on {cores} cores, got {speedup:.2}x"
        );
    } else {
        assert!(
            speedup >= 0.7,
            "parallel path pathologically slow on {cores} core(s): {speedup:.2}x"
        );
    }
}
