//! B1 — ground-truth measurement throughput: Fenwick vs treap vs splay
//! order-statistic structures driving Olken's algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdx_groundtruth::{FenwickStructure, OlkenTracker, SplayStructure, TreapStructure};
use rdx_trace::AccessStream;
use rdx_workloads::{by_name, Params};
use std::hint::black_box;

const N: u64 = 100_000;

fn blocks() -> Vec<u64> {
    let w = by_name("zipf").expect("zipf in suite");
    let params = Params::default().with_accesses(N).with_elements(10_000);
    let mut s = w.stream(&params);
    s.iter().map(|a| a.addr.raw() >> 3).collect()
}

fn bench(c: &mut Criterion) {
    let blocks = blocks();
    let mut group = c.benchmark_group("olken");
    group.throughput(Throughput::Elements(N));
    group.bench_with_input(
        BenchmarkId::new("structure", "fenwick"),
        &blocks,
        |b, blocks| {
            b.iter(|| {
                let mut o = OlkenTracker::<FenwickStructure>::with_structure();
                for &blk in blocks {
                    black_box(o.access(blk));
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("structure", "treap"),
        &blocks,
        |b, blocks| {
            b.iter(|| {
                let mut o = OlkenTracker::<TreapStructure>::with_structure();
                for &blk in blocks {
                    black_box(o.access(blk));
                }
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("structure", "splay"),
        &blocks,
        |b, blocks| {
            b.iter(|| {
                let mut o = OlkenTracker::<SplayStructure>::with_structure();
                for &blk in blocks {
                    black_box(o.access(blk));
                }
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
