//! B4 — histogram primitive costs: recording, merging and the accuracy
//! metric used throughout the evaluation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, Histogram};
use std::hint::black_box;

fn filled(seed: u64) -> Histogram {
    let mut h = Histogram::new(Binning::log2());
    let mut x = seed;
    for _ in 0..10_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        h.record((x >> 33) % 1_000_000, 1.0);
    }
    h
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("histogram");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("record_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::new(Binning::log2());
            let mut x = 7u64;
            for _ in 0..100_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.record((x >> 33) % 1_000_000, 1.0);
            }
            black_box(h)
        });
    });
    group.finish();
    let a = filled(1);
    let b_h = filled(2);
    c.bench_function("histogram/merge", |bch| {
        bch.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&b_h)).expect("same binning");
            black_box(m)
        });
    });
    c.bench_function("histogram/intersection", |bch| {
        bch.iter(|| black_box(histogram_intersection(&a, &b_h).expect("same binning")));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
