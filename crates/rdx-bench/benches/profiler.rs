//! B2 — end-to-end RDX profiling throughput (machine loop + handlers) at
//! two sampling periods, versus exhaustive measurement on the same stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdx_core::{RdxConfig, RdxRunner};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::Binning;
use rdx_trace::Granularity;
use rdx_workloads::{by_name, Params};
use std::hint::black_box;

const N: u64 = 200_000;

fn bench(c: &mut Criterion) {
    let w = by_name("gauss_hotset").expect("in suite");
    let params = Params::default().with_accesses(N).with_elements(20_000);
    let mut group = c.benchmark_group("profiler");
    group.throughput(Throughput::Elements(N));
    for period in [1024u64, 16 * 1024] {
        group.bench_with_input(BenchmarkId::new("rdx", period), &period, |b, &period| {
            let runner = RdxRunner::new(RdxConfig::default().with_period(period));
            b.iter(|| black_box(runner.profile(w.stream(&params))));
        });
    }
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            black_box(ExactProfile::measure(
                w.stream(&params),
                Granularity::WORD,
                Binning::log2(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
