//! B5 — set-associative cache simulation throughput and MRC derivation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rdx_cache::{hierarchy, SetAssociativeCache};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::{Binning, MissRatioCurve};
use rdx_trace::Granularity;
use rdx_workloads::{by_name, Params};
use std::hint::black_box;

const N: u64 = 200_000;

fn bench(c: &mut Criterion) {
    let w = by_name("random_uniform").expect("in suite");
    let params = Params::default().with_accesses(N).with_elements(50_000);
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(N));
    group.bench_function("simulate_llc", |b| {
        b.iter(|| {
            let mut llc = SetAssociativeCache::new(hierarchy()[2]);
            black_box(llc.simulate(w.stream(&params)))
        });
    });
    group.finish();
    let exact = ExactProfile::measure(w.stream(&params), Granularity::WORD, Binning::log2());
    c.bench_function("cache/mrc_from_histogram", |b| {
        b.iter(|| black_box(MissRatioCurve::from_rd_histogram(&exact.rd)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
