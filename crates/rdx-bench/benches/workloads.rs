//! B6 — workload generation throughput (the experiment harness's floor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdx_trace::AccessStream;
use rdx_workloads::{by_name, Params};
use std::hint::black_box;

const N: u64 = 500_000;

fn bench(c: &mut Criterion) {
    let params = Params::default().with_accesses(N).with_elements(50_000);
    let mut group = c.benchmark_group("workloads");
    group.throughput(Throughput::Elements(N));
    for name in ["stream_triad", "zipf", "pointer_chase", "matmul_blocked"] {
        let w = by_name(name).expect("in suite");
        group.bench_with_input(BenchmarkId::new("generate", name), &w, |b, w| {
            b.iter(|| {
                let mut s = w.stream(&params);
                black_box(s.count_remaining())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
