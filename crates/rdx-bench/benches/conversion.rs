//! B3 — footprint-conversion cost: building the weighted footprint curve
//! and mapping sampled reuse times to distances.

use criterion::{criterion_group, criterion_main, Criterion};
use rdx_core::WeightedFootprint;
use std::hint::black_box;

fn sample_pairs(k: usize) -> Vec<(u64, f64)> {
    (0..k)
        .map(|i| ((i as u64 * 37 + 11) % 100_000, 1.0 + (i % 7) as f64))
        .collect()
}

fn bench(c: &mut Criterion) {
    let pairs = sample_pairs(10_000);
    c.bench_function("conversion/build_10k_pairs", |b| {
        b.iter(|| {
            black_box(WeightedFootprint::from_sampled(
                10_000_000, 50_000.0, &pairs,
            ))
        });
    });
    let fp = WeightedFootprint::from_sampled(10_000_000, 50_000.0, &pairs);
    c.bench_function("conversion/distance_queries_10k", |b| {
        b.iter(|| {
            for &(t, _) in &pairs {
                black_box(fp.distance_of(t));
            }
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
