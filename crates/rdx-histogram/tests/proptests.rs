//! Property tests for binning, histograms and miss-ratio curves.

use proptest::prelude::*;
use rdx_histogram::{Binning, Histogram, MissRatioCurve, RdHistogram, ReuseDistance};

fn arb_binning() -> impl Strategy<Value = Binning> {
    prop_oneof![
        (1u64..1000).prop_map(Binning::linear),
        (1u32..9).prop_map(Binning::log2_sub),
    ]
}

proptest! {
    /// Every value falls inside the range of its own bucket, and bucket
    /// indices are monotone in the value.
    #[test]
    fn binning_roundtrip_and_monotone(binning in arb_binning(), values in prop::collection::vec(any::<u64>(), 1..100)) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut last_idx = 0usize;
        for (i, &v) in sorted.iter().enumerate() {
            let idx = binning.index_of(v);
            prop_assert!(binning.range_of(idx).contains(v), "v={} idx={}", v, idx);
            if i > 0 {
                prop_assert!(idx >= last_idx);
            }
            last_idx = idx;
        }
    }

    /// Total weight is conserved by merging and scaled exactly by scale().
    #[test]
    fn weight_conservation(
        a in prop::collection::vec((any::<u64>(), 0.0f64..100.0), 0..50),
        b in prop::collection::vec((any::<u64>(), 0.0f64..100.0), 0..50),
        factor in 0.0f64..10.0,
    ) {
        let build = |pairs: &[(u64, f64)]| {
            let mut h = Histogram::new(Binning::log2());
            for &(v, w) in pairs {
                h.record(v, w);
            }
            h
        };
        let ha = build(&a);
        let hb = build(&b);
        let mut merged = ha.clone();
        merged.merge(&hb).unwrap();
        prop_assert!((merged.total_weight() - (ha.total_weight() + hb.total_weight())).abs() < 1e-6);
        let mut scaled = ha.clone();
        scaled.scale(factor);
        prop_assert!((scaled.total_weight() - ha.total_weight() * factor).abs() < 1e-6);
    }

    /// The CDF is monotone and normalized histograms sum to one.
    #[test]
    fn cdf_monotone_and_normalized(values in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = Histogram::new(Binning::log2());
        for &v in &values {
            h.record(v, 1.0);
        }
        let n = h.normalized();
        prop_assert!((n.total_weight() - 1.0).abs() < 1e-9);
        let mut last = 0.0;
        for probe in [0u64, 1, 10, 100, 1000, 100_000, u64::MAX / 2] {
            let c = h.cdf_at(probe);
            prop_assert!(c >= last - 1e-9);
            prop_assert!(c <= 1.0 + 1e-9);
            last = c;
        }
    }

    /// Miss-ratio curves from arbitrary rd histograms are monotone
    /// non-increasing with the cold fraction as their floor.
    #[test]
    fn mrc_shape(
        finite in prop::collection::vec((0u64..100_000, 0.1f64..10.0), 0..40),
        cold in 0.0f64..50.0,
    ) {
        let mut rd = RdHistogram::new(Binning::log2());
        for &(d, w) in &finite {
            rd.record(ReuseDistance::finite(d), w);
        }
        if cold > 0.0 {
            rd.record(ReuseDistance::INFINITE, cold);
        }
        let mrc = MissRatioCurve::from_rd_histogram(&rd);
        let mut last = 1.0 + 1e-9;
        for cap in [0u64, 1, 2, 8, 64, 512, 4096, 65_536, 1 << 20] {
            let m = mrc.miss_ratio(cap);
            prop_assert!(m <= last + 1e-9);
            prop_assert!(m >= mrc.floor() - 1e-9);
            last = m;
        }
        let total = rd.total_weight();
        if total > 0.0 {
            prop_assert!((mrc.floor() - cold / total).abs() < 1e-9);
        }
    }
}
