//! LRU miss-ratio curves derived from reuse-distance histograms.
//!
//! For a fully-associative LRU cache of capacity `c` (counted in the same
//! granularity as the reuse distances, e.g. cache lines), an access with
//! reuse distance `d` hits iff `d < c`; cold accesses always miss. The miss
//! ratio at capacity `c` is therefore the tail weight of the reuse-distance
//! distribution at `c` plus the cold fraction — the classic Mattson stack
//! result that makes reuse distance the machine-independent locality metric.

use crate::hist::Histogram;
use crate::reuse::RdHistogram;
use serde::{Deserialize, Serialize};

/// An LRU miss-ratio curve, derived from a reuse-distance histogram.
///
/// The curve is stored as the cumulative *hit* weight below each bucket
/// boundary of the source histogram; queries interpolate within buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// `(capacity, miss_ratio)` breakpoints in increasing capacity order.
    points: Vec<(u64, f64)>,
    /// Miss ratio at infinite capacity (cold-miss floor).
    floor: f64,
}

impl MissRatioCurve {
    /// Builds the miss-ratio curve implied by a reuse-distance histogram.
    ///
    /// An empty histogram yields the degenerate curve with miss ratio 1.0
    /// everywhere (no information ⇒ assume all misses), matching how a
    /// cache behaves before any access is observed.
    #[must_use]
    pub fn from_rd_histogram(rd: &RdHistogram) -> Self {
        Self::from_histogram(rd.as_histogram())
    }

    /// Builds the curve from a raw histogram whose finite values are reuse
    /// distances and whose infinite bucket is the cold weight.
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> Self {
        let total = h.total_weight();
        if total == 0.0 {
            return MissRatioCurve {
                points: vec![(0, 1.0)],
                floor: 1.0,
            };
        }
        let mut points = Vec::new();
        // Miss ratio at capacity 0: everything misses.
        points.push((0u64, 1.0));
        let mut hits = 0.0;
        for b in h.buckets() {
            // All accesses in bucket [lo, hi) hit once capacity exceeds their
            // distance. At capacity hi, the whole bucket hits.
            hits += b.weight;
            let cap = if b.range.hi == u64::MAX {
                u64::MAX
            } else {
                b.range.hi
            };
            points.push((cap, 1.0 - hits / total));
        }
        let floor = h.infinite_weight() / total;
        MissRatioCurve { points, floor }
    }

    /// Miss ratio for an LRU cache of `capacity` distinct elements.
    ///
    /// Linearly interpolates between breakpoints, which corresponds to
    /// assuming uniform weight within each histogram bucket.
    #[must_use]
    pub fn miss_ratio(&self, capacity: u64) -> f64 {
        match self.points.binary_search_by_key(&capacity, |&(cap, _)| cap) {
            Ok(i) => self.points[i].1,
            Err(0) => 1.0,
            Err(i) if i == self.points.len() => self.floor,
            Err(i) => {
                let (c0, m0) = self.points[i - 1];
                let (c1, m1) = self.points[i];
                let t = (capacity - c0) as f64 / (c1 - c0) as f64;
                m0 + (m1 - m0) * t
            }
        }
    }

    /// The cold-miss floor: miss ratio with unbounded capacity.
    #[must_use]
    pub fn floor(&self) -> f64 {
        self.floor
    }

    /// The breakpoints `(capacity, miss_ratio)` of the curve.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Smallest breakpoint capacity whose miss ratio is at or below
    /// `target`. Returns `None` if even unbounded capacity cannot reach it
    /// (i.e. `target < floor`).
    #[must_use]
    pub fn capacity_for_miss_ratio(&self, target: f64) -> Option<u64> {
        if target < self.floor {
            return None;
        }
        self.points
            .iter()
            .find(|&&(_, m)| m <= target)
            .map(|&(c, _)| c)
    }

    /// Samples the curve at the given capacities, returning
    /// `(capacity, miss_ratio)` pairs. Convenient for printing figure series.
    #[must_use]
    pub fn sample(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&c| (c, self.miss_ratio(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::Binning;
    use crate::reuse::ReuseDistance;

    fn rd(pairs: &[(u64, f64)], cold: f64) -> RdHistogram {
        let mut h = RdHistogram::new(Binning::log2());
        for &(v, w) in pairs {
            h.record(ReuseDistance::finite(v), w);
        }
        if cold > 0.0 {
            h.record(ReuseDistance::INFINITE, cold);
        }
        h
    }

    #[test]
    fn empty_histogram_all_misses() {
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[], 0.0));
        assert_eq!(mrc.miss_ratio(0), 1.0);
        assert_eq!(mrc.miss_ratio(1 << 30), 1.0);
        assert_eq!(mrc.floor(), 1.0);
    }

    #[test]
    fn all_cold_never_hits() {
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[], 10.0));
        assert_eq!(mrc.miss_ratio(1 << 20), 1.0);
        assert_eq!(mrc.floor(), 1.0);
    }

    #[test]
    fn single_distance_step() {
        // All reuses at distance 4 (bucket [4,8)): misses below, hits at 8+.
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[(4, 1.0)], 0.0));
        assert_eq!(mrc.miss_ratio(0), 1.0);
        assert!((mrc.miss_ratio(8) - 0.0).abs() < 1e-12);
        assert_eq!(mrc.floor(), 0.0);
    }

    #[test]
    fn cold_fraction_sets_floor() {
        // Half the accesses cold → floor 0.5.
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[(2, 1.0)], 1.0));
        assert!((mrc.floor() - 0.5).abs() < 1e-12);
        assert!((mrc.miss_ratio(1 << 20) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_decreasing() {
        let mrc = MissRatioCurve::from_rd_histogram(&rd(
            &[(1, 3.0), (10, 2.0), (100, 4.0), (10_000, 1.0)],
            2.0,
        ));
        let mut last = f64::INFINITY;
        for c in [0u64, 1, 2, 4, 16, 64, 128, 1024, 16_384, 1 << 20] {
            let m = mrc.miss_ratio(c);
            assert!(m <= last + 1e-12, "mrc must be non-increasing at {c}");
            assert!((0.0..=1.0).contains(&m));
            last = m;
        }
    }

    #[test]
    fn capacity_for_target() {
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[(10, 1.0), (1000, 1.0)], 0.0));
        // need capacity covering bucket of 10 ([8,16) → cap 16) for mr<=0.5
        assert_eq!(mrc.capacity_for_miss_ratio(0.5), Some(16));
        assert_eq!(mrc.capacity_for_miss_ratio(1.0), Some(0));
        assert!(mrc.capacity_for_miss_ratio(0.0).is_some());
        let with_cold = MissRatioCurve::from_rd_histogram(&rd(&[(10, 1.0)], 1.0));
        assert_eq!(with_cold.capacity_for_miss_ratio(0.1), None);
    }

    #[test]
    fn interpolation_within_bucket() {
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[(1024, 1.0)], 0.0));
        // bucket [1024, 2048): miss ratio decreases linearly from cap 1024→2048
        let lo = mrc.miss_ratio(1024);
        let mid = mrc.miss_ratio(1536);
        let hi = mrc.miss_ratio(2048);
        assert!(lo > mid && mid > hi);
        assert!((hi - 0.0).abs() < 1e-12);
    }

    #[test]
    fn sample_matches_queries() {
        let mrc = MissRatioCurve::from_rd_histogram(&rd(&[(5, 1.0), (500, 1.0)], 0.0));
        let caps = [0u64, 8, 512, 1024];
        let s = mrc.sample(&caps);
        for (i, &(c, m)) in s.iter().enumerate() {
            assert_eq!(c, caps[i]);
            assert_eq!(m, mrc.miss_ratio(c));
        }
    }
}
