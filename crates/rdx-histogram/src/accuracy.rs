//! Accuracy metrics for comparing an estimated histogram against ground
//! truth.
//!
//! The RDX paper reports accuracy as the *histogram intersection* between the
//! normalized estimated and ground-truth reuse-distance histograms:
//!
//! ```text
//! accuracy = Σ_b min(est_b, gt_b)      (both normalized to 1)
//! ```
//!
//! which is 1.0 for identical distributions and 0.0 for disjoint ones. The
//! abstract's ">90% accuracy" claim refers to this metric. We additionally
//! provide total-variation distance (its complement), a symmetric
//! Kullback–Leibler-style divergence, and bucket-wise relative error, used in
//! the ablation experiments.

use crate::hist::{BinningMismatch, Histogram};

/// Histogram intersection of the two *normalized* histograms, in `[0, 1]`.
///
/// The infinite (cold) buckets participate like any other bucket. Two empty
/// histograms are defined to have accuracy 1.0 (they are identical); an
/// empty vs. non-empty pair has accuracy 0.0.
///
/// # Errors
///
/// Returns an error if the binnings differ.
pub fn histogram_intersection(a: &Histogram, b: &Histogram) -> Result<f64, BinningMismatch> {
    check_binning(a, b)?;
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return Ok(1.0),
        (true, false) | (false, true) => return Ok(0.0),
        _ => {}
    }
    let an = a.normalized();
    let bn = b.normalized();
    let max_len = an.bucket_len().max(bn.bucket_len());
    let mut acc = 0.0;
    for i in 0..max_len {
        acc += an.weight_at(i).min(bn.weight_at(i));
    }
    acc += an.infinite_weight().min(bn.infinite_weight());
    Ok(acc.clamp(0.0, 1.0))
}

/// Total-variation distance between normalized histograms: `1 − intersection`.
///
/// # Errors
///
/// Returns an error if the binnings differ.
pub fn total_variation(a: &Histogram, b: &Histogram) -> Result<f64, BinningMismatch> {
    Ok(1.0 - histogram_intersection(a, b)?)
}

/// Symmetrized, smoothed KL divergence (Jensen–Shannon-style) between the
/// normalized histograms, in nats. Returns 0.0 for identical distributions.
///
/// # Errors
///
/// Returns an error if the binnings differ.
pub fn jensen_shannon(a: &Histogram, b: &Histogram) -> Result<f64, BinningMismatch> {
    check_binning(a, b)?;
    if a.is_empty() && b.is_empty() {
        return Ok(0.0);
    }
    let an = a.normalized();
    let bn = b.normalized();
    let max_len = an.bucket_len().max(bn.bucket_len());
    let mut js = 0.0;
    let mut accum = |p: f64, q: f64| {
        let m = 0.5 * (p + q);
        if p > 0.0 {
            js += 0.5 * p * (p / m).ln();
        }
        if q > 0.0 {
            js += 0.5 * q * (q / m).ln();
        }
    };
    for i in 0..max_len {
        accum(an.weight_at(i), bn.weight_at(i));
    }
    accum(an.infinite_weight(), bn.infinite_weight());
    Ok(js.max(0.0))
}

/// Mean absolute bucket-wise error between the normalized histograms,
/// averaged over buckets where either histogram has weight.
///
/// # Errors
///
/// Returns an error if the binnings differ.
pub fn mean_bucket_error(a: &Histogram, b: &Histogram) -> Result<f64, BinningMismatch> {
    check_binning(a, b)?;
    let an = a.normalized();
    let bn = b.normalized();
    let max_len = an.bucket_len().max(bn.bucket_len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for i in 0..max_len {
        let (p, q) = (an.weight_at(i), bn.weight_at(i));
        if p > 0.0 || q > 0.0 {
            sum += (p - q).abs();
            n += 1;
        }
    }
    let (p, q) = (an.infinite_weight(), bn.infinite_weight());
    if p > 0.0 || q > 0.0 {
        sum += (p - q).abs();
        n += 1;
    }
    Ok(if n == 0 { 0.0 } else { sum / n as f64 })
}

fn check_binning(a: &Histogram, b: &Histogram) -> Result<(), BinningMismatch> {
    if a.binning() != b.binning() {
        return Err(BinningMismatch {
            left: a.binning(),
            right: b.binning(),
        });
    }
    Ok(())
}

/// Geometric mean of a slice of positive values; returns `None` if the slice
/// is empty or contains non-positive values. Used for the paper's geo-mean
/// accuracy/overhead summaries.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| *v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::Binning;

    fn h(pairs: &[(u64, f64)], inf: f64) -> Histogram {
        let mut hist = Histogram::new(Binning::log2());
        for &(v, w) in pairs {
            hist.record(v, w);
        }
        if inf > 0.0 {
            hist.record_infinite(inf);
        }
        hist
    }

    #[test]
    fn identical_histograms_full_accuracy() {
        let a = h(&[(1, 2.0), (100, 3.0)], 1.0);
        assert!((histogram_intersection(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        assert!(total_variation(&a, &a).unwrap() < 1e-12);
        assert!(jensen_shannon(&a, &a).unwrap() < 1e-12);
        assert!(mean_bucket_error(&a, &a).unwrap() < 1e-12);
    }

    #[test]
    fn scaled_histograms_identical_shape() {
        let a = h(&[(1, 2.0), (100, 3.0)], 0.0);
        let mut b = a.clone();
        b.scale(7.5);
        assert!((histogram_intersection(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_histograms_zero_accuracy() {
        let a = h(&[(1, 1.0)], 0.0);
        let b = h(&[(1 << 20, 1.0)], 0.0);
        assert!(histogram_intersection(&a, &b).unwrap() < 1e-12);
        assert!((total_variation(&a, &b).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn infinite_bucket_participates() {
        let a = h(&[], 1.0);
        let b = h(&[(5, 1.0)], 0.0);
        assert!(histogram_intersection(&a, &b).unwrap() < 1e-12);
        let c = h(&[], 2.0);
        assert!((histogram_intersection(&a, &c).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap() {
        // a: half at 1, half at 100 ; b: all at 1 → intersection = 0.5 + 0 = 0.5
        let a = h(&[(1, 1.0), (100, 1.0)], 0.0);
        let b = h(&[(1, 2.0)], 0.0);
        let acc = histogram_intersection(&a, &b).unwrap();
        assert!((acc - 0.5).abs() < 1e-12, "acc={acc}");
    }

    #[test]
    fn empty_cases() {
        let e = Histogram::new(Binning::log2());
        let a = h(&[(1, 1.0)], 0.0);
        assert_eq!(histogram_intersection(&e, &e).unwrap(), 1.0);
        assert_eq!(histogram_intersection(&e, &a).unwrap(), 0.0);
        assert_eq!(jensen_shannon(&e, &e).unwrap(), 0.0);
    }

    #[test]
    fn binning_mismatch_detected() {
        let a = Histogram::new(Binning::log2());
        let b = Histogram::new(Binning::linear(4));
        assert!(histogram_intersection(&a, &b).is_err());
        assert!(jensen_shannon(&a, &b).is_err());
        assert!(mean_bucket_error(&a, &b).is_err());
    }

    #[test]
    fn js_bounded_by_ln2() {
        let a = h(&[(1, 1.0)], 0.0);
        let b = h(&[(1 << 30, 1.0)], 0.0);
        let js = jensen_shannon(&a, &b).unwrap();
        assert!(js <= std::f64::consts::LN_2 + 1e-12);
        assert!(js > 0.5);
    }

    #[test]
    fn geo_mean() {
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        let g = geometric_mean(&[2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }
}
