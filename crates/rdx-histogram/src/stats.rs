//! Small statistics helpers shared by the evaluation harness.

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub stddev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            n,
            mean,
            stddev: var.sqrt(),
            min,
            max,
        })
    }
}

/// Pearson correlation coefficient of two equally sized samples.
///
/// Returns `None` if the slices are empty, differ in length, or either has
/// zero variance.
#[must_use]
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Relative error `|est − truth| / truth`; defined as 0 when both are zero
/// and infinity when only the truth is zero.
#[must_use]
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.min - 1.0).abs() < 1e-12);
        assert!((s.max - 4.0).abs() < 1e-12);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_and_empty() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.stddev, 0.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate() {
        assert!(pearson(&[], &[]).is_none());
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }
}
