//! Bucketing schemes mapping `u64` values to bucket indices.

use serde::{Deserialize, Serialize};

/// A bucketing scheme over the `u64` domain.
///
/// Reuse distances span many orders of magnitude (from a handful of cache
/// lines to billions), so the default scheme used throughout this workspace
/// is power-of-two buckets ([`Binning::log2`]), optionally refined with
/// sub-buckets per octave ([`Binning::log2_sub`]) when higher resolution is
/// needed (e.g. for miss-ratio curves around cache-size boundaries).
///
/// Two histograms can only be compared or merged when they share the same
/// `Binning`; all combining operations check this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Binning {
    /// Fixed-width buckets: value `v` maps to bucket `v / width`.
    Linear {
        /// Width of each bucket; must be non-zero.
        width: u64,
    },
    /// Power-of-two buckets with `subs` sub-buckets per octave.
    ///
    /// Bucket 0 holds the value 0. Values in `[2^o, 2^(o+1))` are split into
    /// `subs` equal sub-buckets. With `subs == 1` this is plain log2
    /// bucketing: `{0}, {1}, {2,3}, {4..7}, {8..15}, ...`.
    Log2 {
        /// Sub-buckets per octave; must be non-zero.
        subs: u32,
    },
}

/// The half-open value range `[lo, hi)` covered by one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BucketRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound (`u64::MAX` means "unbounded above").
    pub hi: u64,
}

impl BucketRange {
    /// Returns a representative value for the bucket (its geometric-ish
    /// midpoint), used when a single point value must stand in for the
    /// bucket, e.g. when converting a histogram through a function.
    #[must_use]
    pub fn representative(&self) -> u64 {
        if self.hi == u64::MAX || self.hi <= self.lo {
            return self.lo;
        }
        // midpoint of [lo, hi)
        self.lo + (self.hi - 1 - self.lo) / 2
    }

    /// Returns true if `v` falls within this bucket.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        v >= self.lo && (self.hi == u64::MAX || v < self.hi)
    }
}

impl Default for Binning {
    fn default() -> Self {
        Binning::log2()
    }
}

impl Binning {
    /// Plain power-of-two bucketing (one bucket per octave).
    #[must_use]
    pub fn log2() -> Self {
        Binning::Log2 { subs: 1 }
    }

    /// Power-of-two bucketing with `subs` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics if `subs == 0`.
    #[must_use]
    pub fn log2_sub(subs: u32) -> Self {
        assert!(subs > 0, "sub-bucket count must be non-zero");
        Binning::Log2 { subs }
    }

    /// Fixed-width bucketing.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn linear(width: u64) -> Self {
        assert!(width > 0, "bucket width must be non-zero");
        Binning::Linear { width }
    }

    /// Maps a value to its bucket index.
    #[must_use]
    pub fn index_of(&self, v: u64) -> usize {
        match *self {
            Binning::Linear { width } => (v / width) as usize,
            Binning::Log2 { subs } => {
                if v == 0 {
                    return 0;
                }
                let octave = 63 - v.leading_zeros();
                if octave == 0 {
                    // v == 1: the second bucket, before sub-bucketing kicks in.
                    return 1;
                }
                let base = 1u64 << octave;
                // Sub-bucket within [2^o, 2^(o+1)); use 128-bit arithmetic so
                // that octave 63 cannot overflow.
                let off = (((v - base) as u128 * subs as u128) >> octave) as usize;
                // Buckets: 0 -> {0}, 1 -> {1}, then octaves 1.. each with
                // `subs` sub-buckets.
                2 + (octave as usize - 1) * subs as usize + off.min(subs as usize - 1)
            }
        }
    }

    /// Returns the value range covered by bucket `idx`.
    ///
    /// The returned range is empty-free: every bucket index produced by
    /// [`Binning::index_of`] has a non-empty range, but very fine
    /// sub-bucketings may contain indices whose range rounds to a single
    /// value shared with a neighbour; callers should rely on `index_of` as
    /// the source of truth for membership.
    #[must_use]
    pub fn range_of(&self, idx: usize) -> BucketRange {
        match *self {
            Binning::Linear { width } => {
                let lo = (idx as u64).saturating_mul(width);
                let hi = lo.saturating_add(width);
                BucketRange { lo, hi }
            }
            Binning::Log2 { subs } => {
                if idx == 0 {
                    return BucketRange { lo: 0, hi: 1 };
                }
                if idx == 1 {
                    return BucketRange { lo: 1, hi: 2 };
                }
                let rel = idx - 2;
                let octave = rel / subs as usize + 1;
                let sub = (rel % subs as usize) as u64;
                if octave >= 64 {
                    return BucketRange {
                        lo: u64::MAX,
                        hi: u64::MAX,
                    };
                }
                let base = 1u64 << octave;
                // `index_of` maps v to sub-bucket floor((v-base)·subs/base),
                // so the smallest value in sub-bucket s is
                // base + ceil(s·base/subs); use ceiling division to match.
                let ceil_div = |num: u128, den: u128| num.div_ceil(den) as u64;
                let lo = base + ceil_div(base as u128 * sub as u128, subs as u128);
                let hi = if sub as u32 + 1 == subs {
                    base.saturating_mul(2)
                } else {
                    base + ceil_div(base as u128 * (sub as u128 + 1), subs as u128)
                };
                BucketRange { lo, hi }
            }
        }
    }

    /// Number of buckets needed to cover values up to and including `max`.
    #[must_use]
    pub fn bucket_count_for(&self, max: u64) -> usize {
        self.index_of(max) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index() {
        let b = Binning::linear(10);
        assert_eq!(b.index_of(0), 0);
        assert_eq!(b.index_of(9), 0);
        assert_eq!(b.index_of(10), 1);
        assert_eq!(b.index_of(99), 9);
        assert_eq!(b.index_of(100), 10);
    }

    #[test]
    fn linear_range_roundtrip() {
        let b = Binning::linear(7);
        for v in 0..1000u64 {
            let idx = b.index_of(v);
            let r = b.range_of(idx);
            assert!(r.contains(v), "v={v} idx={idx} r={r:?}");
        }
    }

    #[test]
    fn log2_small_values() {
        let b = Binning::log2();
        assert_eq!(b.index_of(0), 0);
        assert_eq!(b.index_of(1), 1);
        assert_eq!(b.index_of(2), 2);
        assert_eq!(b.index_of(3), 2);
        assert_eq!(b.index_of(4), 3);
        assert_eq!(b.index_of(7), 3);
        assert_eq!(b.index_of(8), 4);
        assert_eq!(b.index_of(1023), 10);
        assert_eq!(b.index_of(1024), 11);
    }

    #[test]
    fn log2_range_roundtrip() {
        let b = Binning::log2();
        for v in 0..5000u64 {
            let idx = b.index_of(v);
            let r = b.range_of(idx);
            assert!(r.contains(v), "v={v} idx={idx} r={r:?}");
        }
        for shift in 0..63 {
            let v = 1u64 << shift;
            let idx = b.index_of(v);
            assert!(b.range_of(idx).contains(v));
            let v2 = v.wrapping_sub(1);
            let idx2 = b.index_of(v2);
            assert!(b.range_of(idx2).contains(v2));
        }
    }

    #[test]
    fn log2_sub_roundtrip() {
        for subs in [2u32, 3, 4, 8] {
            let b = Binning::log2_sub(subs);
            for v in 0..4096u64 {
                let idx = b.index_of(v);
                let r = b.range_of(idx);
                assert!(r.contains(v), "subs={subs} v={v} idx={idx} r={r:?}");
            }
        }
    }

    #[test]
    fn log2_sub_monotone() {
        let b = Binning::log2_sub(4);
        let mut last = 0;
        for v in 0..100_000u64 {
            let idx = b.index_of(v);
            assert!(idx >= last, "index must be monotone in value");
            // In small octaves (width < subs), some sub-buckets are empty and
            // get skipped; any skipped bucket must cover no values.
            for skipped in last + 1..idx {
                let r = b.range_of(skipped);
                assert!(r.hi <= r.lo, "skipped bucket {skipped} is non-empty: {r:?}");
            }
            last = idx;
        }
    }

    #[test]
    fn log2_huge_values() {
        let b = Binning::log2();
        let idx = b.index_of(u64::MAX);
        assert!(b.range_of(idx).contains(u64::MAX));
        assert_eq!(idx, 64);
    }

    #[test]
    fn representative_in_range() {
        let b = Binning::log2_sub(4);
        for idx in 0..60 {
            let r = b.range_of(idx);
            if r.hi != u64::MAX && r.hi > r.lo {
                assert!(r.contains(r.representative()), "idx={idx} r={r:?}");
            }
        }
    }

    #[test]
    fn bucket_count() {
        let b = Binning::log2();
        assert_eq!(b.bucket_count_for(0), 1);
        assert_eq!(b.bucket_count_for(1), 2);
        assert_eq!(b.bucket_count_for(1024), 12);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_panics() {
        let _ = Binning::linear(0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_subs_panics() {
        let _ = Binning::log2_sub(0);
    }
}
