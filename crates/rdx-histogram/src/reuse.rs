//! Newtypes distinguishing reuse *distance* from reuse *time*.

use crate::binning::Binning;
use crate::hist::{BinningMismatch, Histogram};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reuse distance: the number of *distinct* memory locations accessed
/// between two consecutive accesses to the same location, or infinite for a
/// location that is never accessed again (cold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReuseDistance(Option<u64>);

/// A reuse time (time distance): the number of memory accesses (distinct or
/// not) between two consecutive accesses to the same location, or infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReuseTime(Option<u64>);

macro_rules! reuse_newtype_impl {
    ($ty:ident, $name:literal) => {
        impl $ty {
            /// The infinite value (no reuse observed).
            pub const INFINITE: $ty = $ty(None);

            /// Constructs a finite value.
            #[must_use]
            pub fn finite(v: u64) -> $ty {
                $ty(Some(v))
            }

            /// Returns the finite value, or `None` if infinite.
            #[must_use]
            pub fn value(self) -> Option<u64> {
                self.0
            }

            /// Returns true if this value is infinite (cold).
            #[must_use]
            pub fn is_infinite(self) -> bool {
                self.0.is_none()
            }
        }

        impl From<u64> for $ty {
            fn from(v: u64) -> $ty {
                $ty::finite(v)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Some(v) => write!(f, "{v}"),
                    None => write!(f, "inf"),
                }
            }
        }
    };
}

reuse_newtype_impl!(ReuseDistance, "reuse distance");
reuse_newtype_impl!(ReuseTime, "reuse time");

macro_rules! reuse_histogram_impl {
    ($hist:ident, $value:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
        pub struct $hist(Histogram);

        impl $hist {
            /// Creates an empty histogram with the given binning.
            #[must_use]
            pub fn new(binning: Binning) -> Self {
                $hist(Histogram::new(binning))
            }

            /// Records one observation with the given statistical weight.
            ///
            /// # Panics
            ///
            /// Panics if `weight` is negative or not finite.
            pub fn record(&mut self, v: $value, weight: f64) {
                match v.value() {
                    Some(x) => self.0.record(x, weight),
                    None => self.0.record_infinite(weight),
                }
            }

            /// Shared access to the underlying raw histogram.
            #[must_use]
            pub fn as_histogram(&self) -> &Histogram {
                &self.0
            }

            /// Mutable access to the underlying raw histogram.
            #[must_use]
            pub fn as_histogram_mut(&mut self) -> &mut Histogram {
                &mut self.0
            }

            /// Consumes the wrapper, returning the raw histogram.
            #[must_use]
            pub fn into_histogram(self) -> Histogram {
                self.0
            }

            /// Total recorded weight including the cold bucket.
            #[must_use]
            pub fn total_weight(&self) -> f64 {
                self.0.total_weight()
            }

            /// Weight in the cold (infinite) bucket.
            #[must_use]
            pub fn cold_weight(&self) -> f64 {
                self.0.infinite_weight()
            }

            /// Merges another histogram of the same kind.
            ///
            /// # Errors
            ///
            /// Returns an error if the binnings differ.
            pub fn merge(&mut self, other: &$hist) -> Result<(), BinningMismatch> {
                self.0.merge(&other.0)
            }
        }

        impl From<Histogram> for $hist {
            fn from(h: Histogram) -> Self {
                $hist(h)
            }
        }

        impl Default for $hist {
            fn default() -> Self {
                Self::new(Binning::default())
            }
        }
    };
}

reuse_histogram_impl!(
    RdHistogram,
    ReuseDistance,
    "A weighted histogram of reuse *distances*.\n\n\
     This is the deliverable of the RDX profiler and of ground-truth\n\
     measurement; miss-ratio curves are derived from it."
);
reuse_histogram_impl!(
    RtHistogram,
    ReuseTime,
    "A weighted histogram of reuse *times* (time distances).\n\n\
     This is what the hardware mechanism (PMU sample + debug-register trap)\n\
     can observe directly; RDX converts it to an [`RdHistogram`] via\n\
     footprint theory."
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newtype_basics() {
        let d = ReuseDistance::finite(7);
        assert_eq!(d.value(), Some(7));
        assert!(!d.is_infinite());
        assert!(ReuseDistance::INFINITE.is_infinite());
        assert_eq!(format!("{d}"), "7");
        assert_eq!(format!("{}", ReuseTime::INFINITE), "inf");
        assert_eq!(ReuseTime::from(3u64), ReuseTime::finite(3));
    }

    #[test]
    fn ordering_places_infinite_last() {
        let mut v = [
            ReuseDistance::INFINITE,
            ReuseDistance::finite(10),
            ReuseDistance::finite(2),
        ];
        v.sort();
        // Option<u64> ordering puts None first; verify our expectation and
        // document it: INFINITE sorts *before* finite values.
        assert_eq!(v[0], ReuseDistance::INFINITE);
        assert_eq!(v[1], ReuseDistance::finite(2));
    }

    #[test]
    fn rd_histogram_records_cold() {
        let mut h = RdHistogram::new(Binning::log2());
        h.record(ReuseDistance::finite(5), 2.0);
        h.record(ReuseDistance::INFINITE, 1.0);
        assert_eq!(h.total_weight(), 3.0);
        assert_eq!(h.cold_weight(), 1.0);
        assert_eq!(h.as_histogram().weight_for(5), 2.0);
    }

    #[test]
    fn rt_histogram_merge() {
        let mut a = RtHistogram::new(Binning::log2());
        let mut b = RtHistogram::new(Binning::log2());
        a.record(ReuseTime::finite(100), 1.0);
        b.record(ReuseTime::finite(100), 3.0);
        a.merge(&b).unwrap();
        assert_eq!(a.as_histogram().weight_for(100), 4.0);
    }

    #[test]
    fn default_histograms_empty() {
        assert_eq!(RdHistogram::default().total_weight(), 0.0);
        assert_eq!(RtHistogram::default().total_weight(), 0.0);
    }

    #[test]
    fn into_histogram_roundtrip() {
        let mut h = RdHistogram::new(Binning::log2());
        h.record(ReuseDistance::finite(9), 1.0);
        let raw = h.clone().into_histogram();
        let back = RdHistogram::from(raw);
        assert_eq!(back, h);
    }
}
