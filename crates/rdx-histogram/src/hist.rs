//! The weighted histogram type.

use crate::binning::{Binning, BucketRange};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A weighted histogram over the `u64` domain plus a dedicated *infinite*
/// bucket.
///
/// Weights are `f64` because sampled observations carry statistical weight:
/// one RDX sample taken with period `P` stands for `P` real accesses, and
/// censoring corrections further scale weights by survival probabilities.
///
/// The infinite bucket records values that conceptually lie beyond any
/// finite distance — cold accesses (never reused) in reuse-distance
/// histograms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    binning: Binning,
    buckets: Vec<f64>,
    infinite: f64,
    /// Unweighted number of `record` calls (observation count).
    observations: u64,
}

/// One (finite) bucket of a histogram, as yielded by [`Histogram::buckets`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Index of the bucket within the histogram's binning.
    pub index: usize,
    /// Value range covered by the bucket.
    pub range: BucketRange,
    /// Total weight recorded in the bucket.
    pub weight: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given binning.
    #[must_use]
    pub fn new(binning: Binning) -> Self {
        Histogram {
            binning,
            buckets: Vec::new(),
            infinite: 0.0,
            observations: 0,
        }
    }

    /// The binning scheme of this histogram.
    #[must_use]
    pub fn binning(&self) -> Binning {
        self.binning
    }

    /// Records a finite value with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn record(&mut self, value: u64, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "histogram weight must be finite and non-negative, got {weight}"
        );
        let idx = self.binning.index_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0.0);
        }
        self.buckets[idx] += weight;
        self.observations += 1;
    }

    /// Records an infinite (cold) observation with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn record_infinite(&mut self, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "histogram weight must be finite and non-negative, got {weight}"
        );
        self.infinite += weight;
        self.observations += 1;
    }

    /// Adds weight directly to a bucket index (used by histogram
    /// transformations that operate bucket-wise).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn record_bucket(&mut self, index: usize, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "histogram weight must be finite and non-negative, got {weight}"
        );
        if index >= self.buckets.len() {
            self.buckets.resize(index + 1, 0.0);
        }
        self.buckets[index] += weight;
        self.observations += 1;
    }

    /// Total recorded weight, including the infinite bucket.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.finite_weight() + self.infinite
    }

    /// Total weight in finite buckets.
    #[must_use]
    pub fn finite_weight(&self) -> f64 {
        self.buckets.iter().sum()
    }

    /// Weight in the infinite (cold) bucket.
    #[must_use]
    pub fn infinite_weight(&self) -> f64 {
        self.infinite
    }

    /// Number of `record*` calls, ignoring weights.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Weight recorded in bucket `index` (0 for never-touched buckets).
    #[must_use]
    pub fn weight_at(&self, index: usize) -> f64 {
        self.buckets.get(index).copied().unwrap_or(0.0)
    }

    /// Weight recorded in the bucket containing `value`.
    #[must_use]
    pub fn weight_for(&self, value: u64) -> f64 {
        self.weight_at(self.binning.index_of(value))
    }

    /// Returns true if no weight has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_weight() == 0.0
    }

    /// Iterates over non-empty finite buckets in increasing value order.
    pub fn buckets(&self) -> impl Iterator<Item = Bucket> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, w)| **w > 0.0)
            .map(move |(index, &weight)| Bucket {
                index,
                range: self.binning.range_of(index),
                weight,
            })
    }

    /// Number of allocated finite buckets (the highest touched index + 1).
    #[must_use]
    pub fn bucket_len(&self) -> usize {
        self.buckets.len()
    }

    /// The dense finite-bucket weight array, indexed by bucket index.
    ///
    /// Buckets beyond the highest touched index are not represented;
    /// use [`Histogram::weight_at`] for sparse lookups. This is the raw
    /// view bulk merge kernels operate on.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.buckets
    }

    /// Decomposes the histogram into `(binning, buckets, infinite,
    /// observations)` — the inverse of [`Histogram::from_parts`].
    #[must_use]
    pub fn into_parts(self) -> (Binning, Vec<f64>, f64, u64) {
        (self.binning, self.buckets, self.infinite, self.observations)
    }

    /// Reassembles a histogram from raw parts.
    ///
    /// The caller vouches that every weight is finite and non-negative
    /// (the invariant `record*` enforces); merge engines use this to
    /// rebuild histograms whose bucket arrays were combined out-of-place
    /// by a bulk kernel. Untrusted input (wire decode) must go through
    /// [`Histogram::try_from_parts`] instead.
    #[must_use]
    pub fn from_parts(
        binning: Binning,
        buckets: Vec<f64>,
        infinite: f64,
        observations: u64,
    ) -> Histogram {
        Histogram {
            binning,
            buckets,
            infinite,
            observations,
        }
    }

    /// Validating variant of [`Histogram::from_parts`] for untrusted
    /// input: returns `None` unless every weight (finite buckets and the
    /// infinite bucket) is finite and non-negative.
    #[must_use]
    pub fn try_from_parts(
        binning: Binning,
        buckets: Vec<f64>,
        infinite: f64,
        observations: u64,
    ) -> Option<Histogram> {
        let ok = |w: f64| w.is_finite() && w >= 0.0;
        if !ok(infinite) || !buckets.iter().all(|&w| ok(w)) {
            return None;
        }
        Some(Histogram::from_parts(
            binning,
            buckets,
            infinite,
            observations,
        ))
    }

    /// Merges another histogram into this one.
    ///
    /// # Errors
    ///
    /// Returns [`BinningMismatch`] if the binnings differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), BinningMismatch> {
        if self.binning != other.binning {
            return Err(BinningMismatch {
                left: self.binning,
                right: other.binning,
            });
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0.0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.infinite += other.infinite;
        self.observations += other.observations;
        Ok(())
    }

    /// Multiplies every weight (finite and infinite) by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        for w in &mut self.buckets {
            *w *= factor;
        }
        self.infinite *= factor;
    }

    /// Returns a copy normalized to total weight 1.0.
    ///
    /// An empty histogram normalizes to an empty histogram.
    #[must_use]
    pub fn normalized(&self) -> Histogram {
        let mut out = self.clone();
        let total = out.total_weight();
        if total > 0.0 {
            out.scale(1.0 / total);
        }
        out
    }

    /// Weighted mean of finite bucket representatives. Returns `None` if no
    /// finite weight has been recorded.
    #[must_use]
    pub fn finite_mean(&self) -> Option<f64> {
        let fw = self.finite_weight();
        if fw == 0.0 {
            return None;
        }
        let sum: f64 = self
            .buckets()
            .map(|b| b.range.representative() as f64 * b.weight)
            .sum();
        Some(sum / fw)
    }

    /// The smallest bucket representative `v` such that at least `q` of the
    /// finite weight lies in buckets `<= v`. `q` must be in `[0, 1]`.
    ///
    /// Returns `None` for an empty (finite part) histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn finite_quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0,1]");
        let fw = self.finite_weight();
        if fw == 0.0 {
            return None;
        }
        let target = q * fw;
        let mut acc = 0.0;
        let mut last = None;
        for b in self.buckets() {
            acc += b.weight;
            last = Some(b.range.representative());
            if acc >= target {
                return last;
            }
        }
        last
    }

    /// Fraction of total weight at finite values `<= v`.
    ///
    /// Buckets are counted whole: a bucket contributes if its entire range
    /// lies at or below `v`; the bucket containing `v` contributes
    /// proportionally to the covered fraction of its range (linear
    /// interpolation within the bucket).
    #[must_use]
    pub fn cdf_at(&self, v: u64) -> f64 {
        let total = self.total_weight();
        if total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for b in self.buckets() {
            if b.range.hi != u64::MAX && b.range.hi <= v.saturating_add(1) {
                acc += b.weight;
            } else if b.range.contains(v) {
                let span = if b.range.hi == u64::MAX {
                    1.0
                } else {
                    (b.range.hi - b.range.lo) as f64
                };
                let covered = (v - b.range.lo + 1) as f64;
                acc += b.weight * (covered / span).min(1.0);
            }
        }
        acc / total
    }

    /// Approximate heap memory used by this histogram, in bytes. Used by the
    /// memory-overhead accounting of the profiler.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.capacity() * std::mem::size_of::<f64>()
    }
}

/// Error returned when combining histograms with different binnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinningMismatch {
    /// Binning of the left-hand histogram.
    pub left: Binning,
    /// Binning of the right-hand histogram.
    pub right: Binning,
}

fn describe_binning(b: Binning) -> String {
    match b {
        Binning::Linear { width } => format!("linear(width={width})"),
        Binning::Log2 { subs } => format!("log2(subs={subs})"),
    }
}

impl fmt::Display for BinningMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram binnings differ: left is {}, right is {}",
            describe_binning(self.left),
            describe_binning(self.right)
        )
    }
}

impl std::error::Error for BinningMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Histogram {
        Histogram::new(Binning::log2())
    }

    #[test]
    fn record_and_totals() {
        let mut hist = h();
        hist.record(0, 1.0);
        hist.record(5, 2.0);
        hist.record_infinite(3.0);
        assert_eq!(hist.total_weight(), 6.0);
        assert_eq!(hist.finite_weight(), 3.0);
        assert_eq!(hist.infinite_weight(), 3.0);
        assert_eq!(hist.observations(), 3);
        assert!(!hist.is_empty());
    }

    #[test]
    fn empty_histogram() {
        let hist = h();
        assert!(hist.is_empty());
        assert_eq!(hist.total_weight(), 0.0);
        assert_eq!(hist.finite_mean(), None);
        assert_eq!(hist.finite_quantile(0.5), None);
        assert_eq!(hist.cdf_at(100), 0.0);
    }

    #[test]
    fn weight_lookup() {
        let mut hist = h();
        hist.record(4, 1.5);
        hist.record(5, 0.5);
        // 4 and 5 share the [4,8) bucket under log2 binning
        assert_eq!(hist.weight_for(4), 2.0);
        assert_eq!(hist.weight_for(7), 2.0);
        assert_eq!(hist.weight_for(8), 0.0);
    }

    #[test]
    fn merge_same_binning() {
        let mut a = h();
        let mut b = h();
        a.record(1, 1.0);
        b.record(1, 2.0);
        b.record(100, 1.0);
        b.record_infinite(4.0);
        a.merge(&b).unwrap();
        assert_eq!(a.weight_for(1), 3.0);
        assert_eq!(a.weight_for(100), 1.0);
        assert_eq!(a.infinite_weight(), 4.0);
        assert_eq!(a.observations(), 4);
    }

    #[test]
    fn merge_binning_mismatch() {
        let mut a = h();
        let b = Histogram::new(Binning::linear(10));
        let err = a.merge(&b).unwrap_err();
        assert!(err.to_string().contains("differ"));
    }

    #[test]
    fn binning_mismatch_names_both_sides() {
        // The error must carry the offending parameters, not just the
        // condition: both the log2 sub-bucket count and the linear
        // bucket width appear in the rendered message.
        let mut a = Histogram::new(Binning::log2_sub(4));
        let b = Histogram::new(Binning::linear(128));
        let msg = a.merge(&b).unwrap_err().to_string();
        assert!(msg.contains("log2(subs=4)"), "message was: {msg}");
        assert!(msg.contains("linear(width=128)"), "message was: {msg}");
    }

    #[test]
    fn parts_round_trip() {
        let mut hist = h();
        hist.record(3, 2.0);
        hist.record(77, 1.5);
        hist.record_infinite(4.0);
        let original = hist.clone();
        let (binning, buckets, infinite, observations) = hist.into_parts();
        let back = Histogram::from_parts(binning, buckets, infinite, observations);
        assert_eq!(back, original);
        let (binning, buckets, infinite, observations) = back.clone().into_parts();
        let validated =
            Histogram::try_from_parts(binning, buckets, infinite, observations).unwrap();
        assert_eq!(validated, original);
    }

    #[test]
    fn try_from_parts_rejects_bad_weights() {
        let b = Binning::log2();
        assert!(Histogram::try_from_parts(b, vec![1.0, f64::NAN], 0.0, 2).is_none());
        assert!(Histogram::try_from_parts(b, vec![1.0, -2.0], 0.0, 2).is_none());
        assert!(Histogram::try_from_parts(b, vec![1.0], f64::INFINITY, 1).is_none());
        assert!(Histogram::try_from_parts(b, vec![1.0], -0.5, 1).is_none());
    }

    #[test]
    fn normalized_sums_to_one() {
        let mut hist = h();
        hist.record(3, 2.0);
        hist.record(300, 5.0);
        hist.record_infinite(3.0);
        let n = hist.normalized();
        assert!((n.total_weight() - 1.0).abs() < 1e-12);
        // proportions preserved
        assert!((n.infinite_weight() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut hist = h();
        for v in 0..100u64 {
            hist.record(v, 1.0);
        }
        let q50 = hist.finite_quantile(0.5).unwrap();
        // log2 buckets make this coarse; the median of 0..100 is ~50, which
        // lies in the [32,64) bucket with representative ~47.
        assert!((32..64).contains(&q50), "q50={q50}");
        let q0 = hist.finite_quantile(0.0).unwrap();
        assert_eq!(q0, 0);
    }

    #[test]
    fn cdf_monotone() {
        let mut hist = h();
        for v in [1u64, 5, 9, 200, 3000] {
            hist.record(v, 1.0);
        }
        hist.record_infinite(5.0);
        let mut last = 0.0;
        for v in [0u64, 1, 4, 10, 100, 1000, 10_000, 1_000_000] {
            let c = hist.cdf_at(v);
            assert!(c >= last - 1e-12, "cdf must be monotone");
            assert!(c <= 1.0 + 1e-12);
            last = c;
        }
        // half the weight is infinite, so finite cdf tops out at 0.5
        assert!((hist.cdf_at(u64::MAX / 2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn scale_and_mean() {
        let mut hist = h();
        hist.record(16, 1.0); // bucket [16,32), representative 23
        hist.scale(4.0);
        assert_eq!(hist.finite_weight(), 4.0);
        let m = hist.finite_mean().unwrap();
        assert!((16.0..32.0).contains(&m));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        h().record(1, -1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn nan_weight_panics() {
        h().record(1, f64::NAN);
    }

    #[test]
    fn memory_accounting_grows() {
        let mut hist = h();
        let before = hist.memory_bytes();
        hist.record(u32::MAX as u64, 1.0);
        assert!(hist.memory_bytes() > before);
    }
}
