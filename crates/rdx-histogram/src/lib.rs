//! Histograms and derived locality metrics for reuse-distance analysis.
//!
//! This crate provides the numeric backbone of the RDX reproduction:
//!
//! * [`Binning`] — configurable bucketing schemes (linear, power-of-two,
//!   power-of-two with sub-buckets) over the `u64` domain, plus a dedicated
//!   *cold* (infinite) bucket for accesses that are never reused.
//! * [`Histogram`] — a weighted histogram over a [`Binning`]; weights are
//!   `f64` so that sampled observations can carry their statistical weight
//!   (one RDX sample represents `period` real accesses).
//! * [`RdHistogram`] / [`RtHistogram`] — newtype wrappers distinguishing
//!   reuse-*distance* histograms from reuse-*time* histograms. Confusing the
//!   two is the classic bug in sampling-based locality tools, so the type
//!   system keeps them apart.
//! * [`accuracy`] — the paper's histogram-intersection accuracy metric plus
//!   auxiliary divergences used in the evaluation.
//! * [`mrc`] — LRU miss-ratio curves derived from reuse-distance histograms.
//!
//! # Example
//!
//! ```
//! use rdx_histogram::{Binning, RdHistogram, ReuseDistance};
//!
//! let mut h = RdHistogram::new(Binning::log2());
//! h.record(ReuseDistance::finite(3), 1.0);
//! h.record(ReuseDistance::finite(100), 2.0);
//! h.record(ReuseDistance::INFINITE, 1.0); // a cold access
//! assert_eq!(h.total_weight(), 4.0);
//! assert_eq!(h.cold_weight(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
mod binning;
mod hist;
pub mod mrc;
mod reuse;
pub mod stats;

pub use binning::{Binning, BucketRange};
pub use hist::{BinningMismatch, Bucket, Histogram};
pub use mrc::MissRatioCurve;
pub use reuse::{RdHistogram, ReuseDistance, ReuseTime, RtHistogram};
