//! The daemon: accept loop, per-connection framing, and session
//! multiplexing.
//!
//! Threading model (no async runtime — the workspace's vendored deps
//! are std-only):
//!
//! ```text
//! accept thread ──► connection thread (reads frames, owns sessions)
//!                     ├─► writer thread   (drains bounded reply queue)
//!                     ├─► session worker  (bounded command queue)
//!                     └─► session worker  ...
//! ```
//!
//! Every channel is bounded (`sync_channel`), so backpressure reaches
//! the client's socket instead of growing queues: a slow profiler
//! blocks the connection reader on the session queue, which stops
//! frame reads, which fills the client's TCP window.
//!
//! Teardown is cooperative and leak-free: dropping a session's command
//! sender ends its worker; dropping the writer's sender ends the writer
//! after it drains. A writer whose socket died keeps *draining* its
//! queue (discarding payloads) so workers never block against a dead
//! connection.

use crate::net::{AnyListener, AnyStream, Listen};
use crate::protocol::{
    ClientMessage, ErrorCode, ProfileSnapshot, ServerMessage, SessionOptions, PROTOCOL_VERSION,
};
use bytes::Bytes;
use rdx_trace::frame::{read_frame, write_frame, FrameError};
use std::collections::BTreeMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crate::session::{SessionCmd, SessionWorker};

/// Tuning knobs for a server instance. The defaults suit a loopback
/// profiling service; the CLI exposes the operationally interesting
/// ones.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Per-session cap on buffered trace bytes (default 256 MiB).
    pub max_session_bytes: usize,
    /// Command-queue depth per session (chunks in flight before the
    /// connection reader blocks).
    pub session_queue: usize,
    /// Reply-queue depth per connection.
    pub writer_queue: usize,
    /// Serve exactly this many connections, then stop accepting and
    /// exit once they finish. `None` serves forever. Lets tests and CI
    /// run a server with a natural exit instead of a kill.
    pub max_connections: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_session_bytes: 256 << 20,
            session_queue: 8,
            writer_queue: 64,
            max_connections: None,
        }
    }
}

impl ServerOptions {
    /// Sets the per-session buffered-bytes cap.
    #[must_use]
    pub fn with_max_session_bytes(mut self, bytes: usize) -> Self {
        self.max_session_bytes = bytes;
        self
    }

    /// Sets a connection budget after which the server exits.
    #[must_use]
    pub fn with_max_connections(mut self, conns: usize) -> Self {
        self.max_connections = Some(conns);
        self
    }
}

/// A running server: the accept loop and everything under it.
pub struct Server;

impl Server {
    /// Binds the listener and starts the accept loop on a background
    /// thread. The returned handle reports the resolved address (TCP
    /// port 0 resolves to a real port) and controls shutdown.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(listen: &Listen, opts: ServerOptions) -> io::Result<ServerHandle> {
        let (listener, resolved) = AnyListener::bind(listen)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let opts = Arc::new(opts);
            thread::Builder::new()
                .name("rdx-server-accept".to_string())
                .spawn(move || accept_loop(&listener, &opts, &shutdown))?
        };
        Ok(ServerHandle {
            resolved,
            shutdown,
            accept: Some(accept),
        })
    }
}

/// Handle to a running server.
pub struct ServerHandle {
    resolved: Listen,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The resolved listen spec — connect clients here.
    #[must_use]
    pub fn listen(&self) -> &Listen {
        &self.resolved
    }

    /// Blocks until the accept loop exits on its own (only happens
    /// with a `max_connections` budget).
    pub fn wait(&mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Asks the accept loop to stop and joins it. In-flight
    /// connections finish their teardown before the loop returns.
    pub fn shutdown(&mut self) {
        if let Some(h) = self.accept.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // The accept call is blocking; poke it with a throwaway
            // connection so it observes the flag.
            if let Ok(mut s) = AnyStream::connect(&self.resolved) {
                let _ = s.flush();
            }
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &AnyListener, opts: &Arc<ServerOptions>, shutdown: &Arc<AtomicBool>) {
    let mut served = 0usize;
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if let Some(budget) = opts.max_connections {
            if served >= budget {
                break;
            }
        }
        let stream = match listener.accept() {
            Ok(s) => s,
            // Transient accept errors (e.g. a client that vanished
            // between SYN and accept) shouldn't kill the server.
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the stream was the shutdown poke (or too late)
        }
        served += 1;
        rdx_metrics::counter("rdx.server.connections").incr();
        let opts = Arc::clone(opts);
        let spawned = thread::Builder::new()
            .name(format!("rdx-server-conn-{served}"))
            .spawn(move || connection(stream, &opts));
        if let Ok(h) = spawned {
            conns.push(h);
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

/// Runs one connection: splits the stream, starts the writer, serves
/// frames until EOF/error, then tears everything down in dependency
/// order (sessions, then writer).
fn connection(mut stream: AnyStream, opts: &ServerOptions) {
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            // Without a write half there can be no writer thread.
            // Don't vanish silently (the client would hang awaiting a
            // reply that can never come): count it and tell the client
            // directly, best effort.
            rdx_metrics::counter("rdx.server.conn_failures").incr();
            best_effort_error(&mut stream, "cannot split connection stream");
            return;
        }
    };
    let (tx, rx) = sync_channel::<Bytes>(opts.writer_queue);
    let writer_dead = Arc::new(AtomicBool::new(false));
    let dead = Arc::clone(&writer_dead);
    let writer = thread::Builder::new()
        .name("rdx-server-writer".to_string())
        .spawn(move || writer_loop(write_half, &rx, &dead));
    let Ok(writer) = writer else {
        rdx_metrics::counter("rdx.server.conn_failures").incr();
        best_effort_error(&mut stream, "cannot start connection writer");
        return;
    };
    serve_connection(stream, &tx, opts, &writer_dead);
    drop(tx); // writer drains remaining replies, then exits
    let _ = writer.join();
}

/// Last-resort reply when the connection's writer plumbing could not
/// be set up: one `Internal` error frame, written synchronously to the
/// socket. Best effort — the socket may be just as broken.
fn best_effort_error(stream: &mut AnyStream, message: &str) {
    let msg = ServerMessage::Error {
        session: 0,
        code: ErrorCode::Internal,
        message: message.to_string(),
    };
    if let Ok(payload) = msg.encode() {
        let mut w = BufWriter::new(stream);
        if write_frame(&mut w, &payload).is_ok() {
            let _ = w.flush();
        }
    }
}

/// Drains encoded reply frames to the socket. Batches: after a
/// blocking recv, opportunistically drains whatever else is queued
/// before flushing, so bursts of replies cost one flush.
///
/// On a write error the socket is considered dead but the loop keeps
/// receiving (and discarding) until the senders hang up — otherwise
/// session workers would block forever against a full queue nobody
/// drains. Death is published through the shared flag so the
/// connection reader stops feeding sessions whose answers can never
/// reach the client (see [`serve_connection`]).
fn writer_loop(stream: AnyStream, rx: &Receiver<Bytes>, dead: &AtomicBool) {
    let mut w = BufWriter::new(stream);
    while let Ok(payload) = rx.recv() {
        if !dead.load(Ordering::Relaxed) && write_frame(&mut w, &payload).is_err() {
            mark_writer_dead(dead);
        }
        while let Ok(extra) = rx.try_recv() {
            if !dead.load(Ordering::Relaxed) && write_frame(&mut w, &extra).is_err() {
                mark_writer_dead(dead);
            }
        }
        if !dead.load(Ordering::Relaxed) && w.flush().is_err() {
            mark_writer_dead(dead);
        }
    }
}

/// Flags the writer's socket as dead, counting the transition once.
fn mark_writer_dead(dead: &AtomicBool) {
    if !dead.swap(true, Ordering::Relaxed) {
        rdx_metrics::counter("rdx.server.writer_dead").incr();
    }
}

/// A live session as the connection thread sees it.
struct SessionHandle {
    tx: SyncSender<SessionCmd>,
    join: JoinHandle<()>,
}

/// Reads and dispatches client frames until the client goes away,
/// breaks the protocol, or the writer reports its socket dead (no
/// reply can reach the client anymore, so sessions must not keep
/// profiling into the void). Always leaves with every session worker
/// joined.
fn serve_connection(
    stream: AnyStream,
    out: &SyncSender<Bytes>,
    opts: &ServerOptions,
    writer_dead: &AtomicBool,
) {
    let mut r = BufReader::new(stream);
    let mut sessions: BTreeMap<u32, SessionHandle> = BTreeMap::new();
    let mut next_id: u32 = 1;

    // Handshake: the first frame must be a version-matched Hello.
    match next_message(&mut r) {
        Ok(Some(ClientMessage::Hello { version })) if version == PROTOCOL_VERSION => {
            send(
                out,
                &ServerMessage::HelloAck {
                    version: PROTOCOL_VERSION,
                },
            );
        }
        Ok(Some(ClientMessage::Hello { version })) => {
            send_error(
                out,
                0,
                ErrorCode::Version,
                &format!(
                    "unsupported protocol version {version} (server speaks {PROTOCOL_VERSION})"
                ),
            );
            return;
        }
        Ok(Some(_)) => {
            send_error(out, 0, ErrorCode::Protocol, "first message must be Hello");
            return;
        }
        Ok(None) | Err(_) => return, // silent connect-and-leave probe
    }

    loop {
        if writer_dead.load(Ordering::Relaxed) {
            break; // writer's socket died: tear down, don't profile on
        }
        let msg = match next_message(&mut r) {
            Ok(Some(m)) => m,
            Ok(None) => break, // clean EOF
            Err(FrameError::Oversized(len)) => {
                send_error(
                    out,
                    0,
                    ErrorCode::Protocol,
                    &format!("frame of {len} bytes exceeds the protocol bound"),
                );
                break;
            }
            Err(FrameError::Malformed) => {
                send_error(out, 0, ErrorCode::Protocol, "malformed frame payload");
                break;
            }
            Err(_) => break, // truncated frame or socket error: client is gone
        };
        match msg {
            ClientMessage::Hello { .. } => {
                send_error(out, 0, ErrorCode::Protocol, "duplicate Hello");
                break;
            }
            ClientMessage::OpenSession { name, opts: sopts } => {
                if let Err(e) = sopts.validate() {
                    send_error(out, 0, ErrorCode::InvalidOptions, &e.to_string());
                    continue;
                }
                match open_session(&mut next_id, &name, sopts, out, opts) {
                    Some((id, handle)) => {
                        sessions.insert(id, handle);
                        rdx_metrics::counter("rdx.server.sessions_opened").incr();
                        send(out, &ServerMessage::SessionOpened { session: id });
                    }
                    None => {
                        send_error(out, 0, ErrorCode::Protocol, "cannot start session worker");
                    }
                }
            }
            ClientMessage::TraceChunk { session, bytes } => {
                dispatch(&mut sessions, out, session, SessionCmd::Chunk(bytes));
            }
            ClientMessage::Flush { session } => {
                dispatch(&mut sessions, out, session, SessionCmd::Flush);
            }
            ClientMessage::SnapshotHistogram { session } => {
                dispatch(&mut sessions, out, session, SessionCmd::SnapshotHistogram);
            }
            ClientMessage::SnapshotMetrics { session } => {
                dispatch(&mut sessions, out, session, SessionCmd::SnapshotMetrics);
            }
            ClientMessage::SnapshotAggregate { sessions: ids } => {
                aggregate(&mut sessions, out, &ids);
            }
            ClientMessage::CloseSession { session } => {
                match sessions.remove(&session) {
                    Some(handle) => {
                        // The Close reply (final profile) comes from the
                        // worker itself, ordered after every queued chunk.
                        let _ = handle.tx.send(SessionCmd::Close);
                        drop(handle.tx);
                        let _ = handle.join.join();
                    }
                    None => {
                        send_error(out, session, ErrorCode::UnknownSession, "no such session");
                    }
                }
            }
        }
    }

    // Disconnect teardown: hang up on every worker, then join. Workers
    // see the channel close and exit without replying.
    for (_, handle) in std::mem::take(&mut sessions) {
        drop(handle.tx);
        let _ = handle.join.join();
    }
}

/// Reads one frame and decodes it. `Ok(None)` is clean EOF.
fn next_message(r: &mut BufReader<AnyStream>) -> Result<Option<ClientMessage>, FrameError> {
    match read_frame(r)? {
        Some(payload) => {
            rdx_metrics::counter("rdx.server.frames").incr();
            ClientMessage::decode(payload).map(Some)
        }
        None => Ok(None),
    }
}

/// Spawns a session worker; `None` if the thread can't start.
fn open_session(
    next_id: &mut u32,
    name: &str,
    sopts: SessionOptions,
    out: &SyncSender<Bytes>,
    server: &ServerOptions,
) -> Option<(u32, SessionHandle)> {
    let id = *next_id;
    *next_id = next_id.wrapping_add(1).max(1);
    let (tx, rx) = sync_channel::<SessionCmd>(server.session_queue);
    let worker = SessionWorker {
        id,
        name: name.to_string(),
        opts: sopts,
        out: out.clone(),
        max_bytes: server.max_session_bytes,
    };
    let join = thread::Builder::new()
        .name(format!("rdx-server-session-{id}"))
        .spawn(move || worker.run(&rx))
        .ok()?;
    Some((id, SessionHandle { tx, join }))
}

/// Routes a command to its session, with a typed error for unknown ids
/// and teardown for workers that died mid-stream.
fn dispatch(
    sessions: &mut BTreeMap<u32, SessionHandle>,
    out: &SyncSender<Bytes>,
    session: u32,
    cmd: SessionCmd,
) {
    let Some(handle) = sessions.get(&session) else {
        send_error(out, session, ErrorCode::UnknownSession, "no such session");
        return;
    };
    // Blocking send: a full queue is backpressure, not an error. A
    // disconnected queue means the worker died; reap it.
    if handle.tx.send(cmd).is_err() {
        if let Some(handle) = sessions.remove(&session) {
            let _ = handle.join.join();
        }
        send_error(
            out,
            session,
            ErrorCode::UnknownSession,
            "session worker exited",
        );
    }
}

/// Answers a `SnapshotAggregate`: snapshots each listed session and
/// folds the answers into one fleet profile, **in request order**, so
/// the reply is reproducible by a client folding per-session snapshots
/// the same way. Memory is bounded by one accumulator plus one
/// in-flight snapshot regardless of how many sessions are listed.
///
/// All-or-nothing: an unknown, failed, or not-ready session aborts the
/// aggregate with a typed error naming it — a partial fleet profile
/// would be silently wrong.
fn aggregate(sessions: &mut BTreeMap<u32, SessionHandle>, out: &SyncSender<Bytes>, ids: &[u32]) {
    if ids.is_empty() {
        send_error(
            out,
            0,
            ErrorCode::Protocol,
            "aggregate needs at least one session",
        );
        return;
    }
    let mut fleet = ProfileSnapshot::default();
    for &id in ids {
        let Some(handle) = sessions.get(&id) else {
            send_error(out, id, ErrorCode::UnknownSession, "no such session");
            return;
        };
        let (reply_tx, reply_rx) = sync_channel::<Result<ProfileSnapshot, ErrorCode>>(1);
        if handle.tx.send(SessionCmd::Aggregate(reply_tx)).is_err() {
            if let Some(handle) = sessions.remove(&id) {
                let _ = handle.join.join();
            }
            send_error(out, id, ErrorCode::UnknownSession, "session worker exited");
            return;
        }
        // The snapshot is ordered after every chunk already queued for
        // the session — an aggregate sees everything sent before it.
        match reply_rx.recv() {
            Ok(Ok(snapshot)) => fleet.merge(&snapshot),
            Ok(Err(code)) => {
                send_error(out, id, code, "session cannot join the aggregate");
                return;
            }
            Err(_) => {
                send_error(out, id, ErrorCode::Internal, "session died mid-aggregate");
                return;
            }
        }
    }
    rdx_metrics::counter("rdx.server.aggregates").incr();
    send(
        out,
        &ServerMessage::Aggregate {
            sessions: ids.len() as u32,
            profile: fleet,
        },
    );
}

fn send(out: &SyncSender<Bytes>, msg: &ServerMessage) {
    if let Ok(payload) = msg.encode() {
        let _ = out.send(payload);
    }
}

fn send_error(out: &SyncSender<Bytes>, session: u32, code: ErrorCode, message: &str) {
    rdx_metrics::counter("rdx.server.errors").incr();
    send(
        out,
        &ServerMessage::Error {
            session,
            code,
            message: message.to_string(),
        },
    );
}
