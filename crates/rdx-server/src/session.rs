//! Per-session worker: owns one RDXT byte stream and answers profile
//! questions about it.
//!
//! A session accumulates the exact bytes the client sent (bounded by
//! the server's per-session budget) and validates them eagerly — the
//! header through [`TraceReader::new`] as soon as enough bytes arrive,
//! the record stream incrementally through [`RecordScanner`] — so a
//! malformed stream is reported at the offending chunk, not at close.
//! Snapshot and close answers re-profile the accumulated bytes through
//! the exact same `RdxtInput` → `profile_rdxt` machinery the local
//! file-backed path uses, which is what makes server-side profiles
//! bit-identical to local ones.
//!
//! The state machine itself ([`SessionState::handle`]) is a pure
//! command-in/frames-out step function with no threads or clocks in
//! it. Production drives it from a dedicated thread over a bounded
//! command channel ([`SessionWorker::run`]); the connection reader
//! blocks when that channel fills, which propagates backpressure to
//! the client's socket. The deterministic simulator drives the same
//! machine one command at a time through [`SessionStepper`], so
//! out-of-order and post-failure command sequences are pinned by
//! replayable tests.

use crate::protocol::{ErrorCode, ProfileSnapshot, ServerMessage, SessionOptions};
use bytes::Bytes;
use rdx_core::{RdxRunner, RdxtInput};
use rdx_trace::io::RecordScanner;
use rdx_trace::{TraceError, TraceReader};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

/// Fixed-width part of the RDXT header: magic, version, name length,
/// record count. The full header is this plus the name bytes.
const HEADER_FIXED: usize = 4 + 4 + 4 + 8;

/// Commands the connection reader forwards to a session worker.
#[derive(Debug)]
pub enum SessionCmd {
    /// More trace bytes.
    Chunk(Bytes),
    /// Acknowledge ingestion of everything sent so far.
    Flush,
    /// Profile the bytes so far and reply with histograms.
    SnapshotHistogram,
    /// Profile the bytes so far and hand the snapshot back through the
    /// given channel — to the connection thread for fleet aggregation,
    /// not to the client. Failures travel as the session's error class
    /// so the connection can report which session broke the aggregate.
    Aggregate(SyncSender<Result<ProfileSnapshot, ErrorCode>>),
    /// Reply with session counters and the metrics registry.
    SnapshotMetrics,
    /// Final profile, then terminate.
    Close,
}

/// One session's identity and reply plumbing.
pub(crate) struct SessionWorker {
    pub(crate) id: u32,
    pub(crate) name: String,
    pub(crate) opts: SessionOptions,
    /// Encoded reply frames, towards the connection's writer thread.
    pub(crate) out: SyncSender<Bytes>,
    /// Per-session byte budget; exceeding it fails the session.
    pub(crate) max_bytes: usize,
}

/// Incremental validation state of the byte stream.
enum Scan {
    /// Header not yet complete.
    AwaitingHeader,
    /// Header parsed (records start at `header_end`); scanning records.
    Records {
        header_end: usize,
        scanner: RecordScanner,
    },
}

/// The session's mutable state, advanced one command per
/// [`handle`](SessionState::handle) call.
struct SessionState {
    buf: Vec<u8>,
    scan: Scan,
    failure: Option<ErrorCode>,
}

impl SessionState {
    fn new() -> Self {
        SessionState {
            buf: Vec::new(),
            scan: Scan::AwaitingHeader,
            failure: None,
        }
    }

    /// Applies one command, sending any reply through `w.out`. Returns
    /// `false` once the session is over (after `Close`).
    fn handle(&mut self, w: &SessionWorker, cmd: SessionCmd) -> bool {
        match cmd {
            SessionCmd::Chunk(bytes) => {
                if self.failure.is_some() {
                    // The error was already reported; drain quietly.
                    return true;
                }
                if let Err(code) = self.ingest(w, &bytes) {
                    self.failure = Some(code);
                    self.buf = Vec::new();
                }
                true
            }
            SessionCmd::Flush => {
                if let Some(code) = self.failure {
                    w.send_failed(code);
                } else {
                    w.send(&ServerMessage::Flushed {
                        session: w.id,
                        received_bytes: self.buf.len() as u64,
                        records: records_so_far(&self.scan),
                    });
                }
                true
            }
            SessionCmd::SnapshotHistogram => {
                if let Some(code) = self.failure {
                    w.send_failed(code);
                } else {
                    match self.profile(w) {
                        Some((profile, _clean)) => {
                            rdx_metrics::counter("rdx.server.snapshots").incr();
                            w.send(&ServerMessage::Histogram {
                                session: w.id,
                                profile,
                            });
                        }
                        None => w.send_error(
                            ErrorCode::NotReady,
                            "no complete trace header received yet",
                        ),
                    }
                }
                true
            }
            SessionCmd::Aggregate(reply) => {
                let result = if let Some(code) = self.failure {
                    Err(code)
                } else {
                    match self.profile(w) {
                        Some((profile, _clean)) => Ok(profile),
                        None => Err(ErrorCode::NotReady),
                    }
                };
                // A send error means the connection thread stopped
                // waiting (it aborted the aggregate); nothing to do.
                let _ = reply.send(result);
                true
            }
            SessionCmd::SnapshotMetrics => {
                if let Some(code) = self.failure {
                    w.send_failed(code);
                } else {
                    w.send(&ServerMessage::Metrics {
                        session: w.id,
                        received_bytes: self.buf.len() as u64,
                        records: records_so_far(&self.scan),
                        registry_json: rdx_metrics::snapshot().to_json(),
                    });
                }
                true
            }
            SessionCmd::Close => {
                let (clean, profile) = if self.failure.is_some() {
                    (false, ProfileSnapshot::default())
                } else {
                    match self.profile(w) {
                        Some((profile, clean)) => (clean, profile),
                        None => (false, ProfileSnapshot::default()),
                    }
                };
                w.send(&ServerMessage::SessionClosed {
                    session: w.id,
                    clean,
                    profile,
                });
                false
            }
        }
    }

    /// Appends a chunk, keeping header/record validation current.
    /// Returns the failure class on budget overflow or corruption (the
    /// error frame is sent here, with the trace-level detail).
    fn ingest(&mut self, w: &SessionWorker, bytes: &[u8]) -> Result<(), ErrorCode> {
        let buf = &mut self.buf;
        if buf.len().saturating_add(bytes.len()) > w.max_bytes {
            w.send_error(
                ErrorCode::Overflow,
                &format!("session exceeds {} buffered bytes", w.max_bytes),
            );
            return Err(ErrorCode::Overflow);
        }
        rdx_metrics::counter("rdx.server.chunk_bytes").add(bytes.len() as u64);
        let scanned_to = buf.len();
        buf.extend_from_slice(bytes);
        if let Scan::AwaitingHeader = self.scan {
            if buf.len() < HEADER_FIXED {
                return Ok(()); // not even a fixed header yet
            }
            match TraceReader::new(Bytes::from(buf.clone())) {
                Ok(reader) => {
                    let header_end = HEADER_FIXED + reader.name().len();
                    let mut scanner = RecordScanner::new();
                    if let Err(e) = scanner.scan(&buf[header_end..]) {
                        w.send_trace_error(&e);
                        return Err(ErrorCode::MalformedTrace);
                    }
                    self.scan = Scan::Records {
                        header_end,
                        scanner,
                    };
                }
                // A short name field just needs more bytes.
                Err(TraceError::Truncated) => {}
                Err(e) => {
                    w.send_trace_error(&e);
                    return Err(ErrorCode::MalformedTrace);
                }
            }
            return Ok(());
        }
        if let Scan::Records {
            header_end,
            scanner,
        } = &mut self.scan
        {
            let from = scanned_to.max(*header_end);
            if let Err(e) = scanner.scan(&buf[from..]) {
                w.send_trace_error(&e);
                return Err(ErrorCode::MalformedTrace);
            }
        }
        Ok(())
    }

    /// Profiles the accumulated bytes through the local file-backed
    /// machinery. `None` until a complete header has arrived. The bool
    /// is the clean-decode verdict (all declared records, no trailing
    /// data, no corruption).
    fn profile(&self, w: &SessionWorker) -> Option<(ProfileSnapshot, bool)> {
        if let Scan::AwaitingHeader = self.scan {
            return None;
        }
        let input = RdxtInput::from_bytes(w.name.clone(), Bytes::from(self.buf.clone())).ok()?;
        let runner = RdxRunner::new(w.opts.config());
        let (profile, verdict) = runner.profile_rdxt(input, &w.opts.ingest());
        Some((ProfileSnapshot::from_profile(&profile), verdict.is_ok()))
    }
}

impl SessionWorker {
    pub(crate) fn run(self, rx: &Receiver<SessionCmd>) {
        let mut state = SessionState::new();
        while let Ok(cmd) = rx.recv() {
            if !state.handle(&self, cmd) {
                break;
            }
        }
        // Reached on Close and on command-channel disconnect (the
        // connection went away); either way the session is over.
        rdx_metrics::counter("rdx.server.sessions_closed").incr();
    }

    fn send(&self, msg: &ServerMessage) {
        if let Ok(payload) = msg.encode() {
            let _ = self.out.send(payload);
        }
    }

    fn send_error(&self, code: ErrorCode, message: &str) {
        rdx_metrics::counter("rdx.server.errors").incr();
        self.send(&ServerMessage::Error {
            session: self.id,
            code,
            message: message.to_string(),
        });
    }

    fn send_trace_error(&self, e: &TraceError) {
        self.send_error(ErrorCode::MalformedTrace, &e.to_string());
    }

    /// Replies to a command arriving after the session already failed:
    /// the original class, so clients correlate follow-ups with the
    /// first report.
    fn send_failed(&self, code: ErrorCode) {
        self.send_error(code, "session already failed; close it");
    }
}

fn records_so_far(scan: &Scan) -> u64 {
    match scan {
        Scan::AwaitingHeader => 0,
        Scan::Records { scanner, .. } => scanner.records(),
    }
}

/// What one [`SessionStepper::step`] produced.
#[derive(Debug)]
pub enum SessionEvent {
    /// A reply frame the connection would have written to the client,
    /// decoded.
    Reply(ServerMessage),
    /// The session terminated (the command was `Close`).
    Closed,
}

/// A session state machine driven one command at a time on the
/// caller's thread — no worker thread, no connection, no clock.
///
/// This is the exact machine [`SessionWorker::run`] loops on its
/// dedicated thread; the deterministic simulator uses the stepper to
/// replay chosen command interleavings (chunk boundaries mid-varint,
/// snapshots after failure, out-of-order close) and assert on the
/// decoded replies.
pub struct SessionStepper {
    worker: SessionWorker,
    state: SessionState,
    rx: Receiver<Bytes>,
    closed: bool,
}

impl SessionStepper {
    /// A stepper for one session. `opts` should already be validated
    /// (see [`SessionOptions::validate`]); `max_bytes` is the session's
    /// buffered-bytes budget.
    #[must_use]
    pub fn new(id: u32, name: impl Into<String>, opts: SessionOptions, max_bytes: usize) -> Self {
        // One command emits at most one reply frame and every step
        // drains the queue, so capacity 4 makes sends non-blocking:
        // a single-threaded stepper can never deadlock on its own
        // output.
        let (out, rx) = sync_channel::<Bytes>(4);
        SessionStepper {
            worker: SessionWorker {
                id,
                name: name.into(),
                opts,
                out,
                max_bytes,
            },
            state: SessionState::new(),
            rx,
            closed: false,
        }
    }

    /// Applies one command and returns the events it produced, in
    /// order. Commands after `Close` produce nothing (the real worker
    /// is gone by then: its channel is disconnected).
    pub fn step(&mut self, cmd: SessionCmd) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        if self.closed {
            return events;
        }
        if !self.state.handle(&self.worker, cmd) {
            self.closed = true;
        }
        while let Ok(payload) = self.rx.try_recv() {
            // Frames come from ServerMessage::encode, so decode cannot
            // fail; stay panic-free regardless.
            debug_assert!(ServerMessage::decode(payload.clone()).is_ok());
            if let Ok(msg) = ServerMessage::decode(payload) {
                events.push(SessionEvent::Reply(msg));
            }
        }
        if self.closed {
            events.push(SessionEvent::Closed);
        }
        events
    }

    /// True once a `Close` command has been applied.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Bytes buffered so far (zero after a failure cleared the buffer).
    #[must_use]
    pub fn received_bytes(&self) -> u64 {
        self.state.buf.len() as u64
    }

    /// Complete records validated so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        records_so_far(&self.state.scan)
    }

    /// The sticky failure class, if the session has failed.
    #[must_use]
    pub fn failure(&self) -> Option<ErrorCode> {
        self.state.failure
    }
}
