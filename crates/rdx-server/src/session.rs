//! Per-session worker: owns one RDXT byte stream and answers profile
//! questions about it.
//!
//! A session accumulates the exact bytes the client sent (bounded by
//! the server's per-session budget) and validates them eagerly — the
//! header through [`TraceReader::new`] as soon as enough bytes arrive,
//! the record stream incrementally through [`RecordScanner`] — so a
//! malformed stream is reported at the offending chunk, not at close.
//! Snapshot and close answers re-profile the accumulated bytes through
//! the exact same `RdxtInput` → `profile_rdxt` machinery the local
//! file-backed path uses, which is what makes server-side profiles
//! bit-identical to local ones.
//!
//! The worker is driven by a bounded command channel; the connection
//! reader blocks when it fills, which propagates backpressure to the
//! client's socket. Replies go to the connection's writer channel, also
//! bounded. Dropping the command sender tears the worker down.

use crate::protocol::{ErrorCode, ProfileSnapshot, ServerMessage, SessionOptions};
use bytes::Bytes;
use rdx_core::{RdxRunner, RdxtInput};
use rdx_trace::io::RecordScanner;
use rdx_trace::{TraceError, TraceReader};
use std::sync::mpsc::{Receiver, SyncSender};

/// Fixed-width part of the RDXT header: magic, version, name length,
/// record count. The full header is this plus the name bytes.
const HEADER_FIXED: usize = 4 + 4 + 4 + 8;

/// Commands the connection reader forwards to a session worker.
#[derive(Debug)]
pub(crate) enum SessionCmd {
    /// More trace bytes.
    Chunk(Bytes),
    /// Acknowledge ingestion of everything sent so far.
    Flush,
    /// Profile the bytes so far and reply with histograms.
    SnapshotHistogram,
    /// Reply with session counters and the metrics registry.
    SnapshotMetrics,
    /// Final profile, then terminate.
    Close,
}

/// One session's state, run on a dedicated thread.
pub(crate) struct SessionWorker {
    pub(crate) id: u32,
    pub(crate) name: String,
    pub(crate) opts: SessionOptions,
    /// Encoded reply frames, towards the connection's writer thread.
    pub(crate) out: SyncSender<Bytes>,
    /// Per-session byte budget; exceeding it fails the session.
    pub(crate) max_bytes: usize,
}

/// Incremental validation state of the byte stream.
enum Scan {
    /// Header not yet complete.
    AwaitingHeader,
    /// Header parsed (records start at `header_end`); scanning records.
    Records {
        header_end: usize,
        scanner: RecordScanner,
    },
}

impl SessionWorker {
    pub(crate) fn run(self, rx: &Receiver<SessionCmd>) {
        let mut buf: Vec<u8> = Vec::new();
        let mut scan = Scan::AwaitingHeader;
        let mut failure: Option<ErrorCode> = None;
        while let Ok(cmd) = rx.recv() {
            match cmd {
                SessionCmd::Chunk(bytes) => {
                    if failure.is_some() {
                        // The error was already reported; drain quietly.
                        continue;
                    }
                    if let Err(code) = self.ingest(&mut buf, &mut scan, &bytes) {
                        failure = Some(code);
                        buf = Vec::new();
                    }
                }
                SessionCmd::Flush => {
                    if let Some(code) = failure {
                        self.send_failed(code);
                    } else {
                        self.send(&ServerMessage::Flushed {
                            session: self.id,
                            received_bytes: buf.len() as u64,
                            records: records_so_far(&scan),
                        });
                    }
                }
                SessionCmd::SnapshotHistogram => {
                    if let Some(code) = failure {
                        self.send_failed(code);
                    } else {
                        match self.profile(&buf, &scan) {
                            Some((profile, _clean)) => {
                                rdx_metrics::counter("rdx.server.snapshots").incr();
                                self.send(&ServerMessage::Histogram {
                                    session: self.id,
                                    profile,
                                });
                            }
                            None => self.send_error(
                                ErrorCode::NotReady,
                                "no complete trace header received yet",
                            ),
                        }
                    }
                }
                SessionCmd::SnapshotMetrics => {
                    if let Some(code) = failure {
                        self.send_failed(code);
                    } else {
                        self.send(&ServerMessage::Metrics {
                            session: self.id,
                            received_bytes: buf.len() as u64,
                            records: records_so_far(&scan),
                            registry_json: rdx_metrics::snapshot().to_json(),
                        });
                    }
                }
                SessionCmd::Close => {
                    let (clean, profile) = if failure.is_some() {
                        (false, ProfileSnapshot::default())
                    } else {
                        match self.profile(&buf, &scan) {
                            Some((profile, clean)) => (clean, profile),
                            None => (false, ProfileSnapshot::default()),
                        }
                    };
                    self.send(&ServerMessage::SessionClosed {
                        session: self.id,
                        clean,
                        profile,
                    });
                    break;
                }
            }
        }
        // Reached on Close and on command-channel disconnect (the
        // connection went away); either way the session is over.
        rdx_metrics::counter("rdx.server.sessions_closed").incr();
    }

    /// Appends a chunk, keeping header/record validation current.
    /// Returns the failure class on budget overflow or corruption (the
    /// error frame is sent here, with the trace-level detail).
    fn ingest(&self, buf: &mut Vec<u8>, scan: &mut Scan, bytes: &[u8]) -> Result<(), ErrorCode> {
        if buf.len().saturating_add(bytes.len()) > self.max_bytes {
            self.send_error(
                ErrorCode::Overflow,
                &format!("session exceeds {} buffered bytes", self.max_bytes),
            );
            return Err(ErrorCode::Overflow);
        }
        rdx_metrics::counter("rdx.server.chunk_bytes").add(bytes.len() as u64);
        let scanned_to = buf.len();
        buf.extend_from_slice(bytes);
        if let Scan::AwaitingHeader = scan {
            if buf.len() < HEADER_FIXED {
                return Ok(()); // not even a fixed header yet
            }
            match TraceReader::new(Bytes::from(buf.clone())) {
                Ok(reader) => {
                    let header_end = HEADER_FIXED + reader.name().len();
                    let mut scanner = RecordScanner::new();
                    if let Err(e) = scanner.scan(&buf[header_end..]) {
                        self.send_trace_error(&e);
                        return Err(ErrorCode::MalformedTrace);
                    }
                    *scan = Scan::Records {
                        header_end,
                        scanner,
                    };
                }
                // A short name field just needs more bytes.
                Err(TraceError::Truncated) => {}
                Err(e) => {
                    self.send_trace_error(&e);
                    return Err(ErrorCode::MalformedTrace);
                }
            }
            return Ok(());
        }
        if let Scan::Records {
            header_end,
            scanner,
        } = scan
        {
            let from = scanned_to.max(*header_end);
            if let Err(e) = scanner.scan(&buf[from..]) {
                self.send_trace_error(&e);
                return Err(ErrorCode::MalformedTrace);
            }
        }
        Ok(())
    }

    /// Profiles the accumulated bytes through the local file-backed
    /// machinery. `None` until a complete header has arrived. The bool
    /// is the clean-decode verdict (all declared records, no trailing
    /// data, no corruption).
    fn profile(&self, buf: &[u8], scan: &Scan) -> Option<(ProfileSnapshot, bool)> {
        if let Scan::AwaitingHeader = scan {
            return None;
        }
        let input = RdxtInput::from_bytes(self.name.clone(), Bytes::from(buf.to_vec())).ok()?;
        let runner = RdxRunner::new(self.opts.config());
        let (profile, verdict) = runner.profile_rdxt(input, &self.opts.ingest());
        Some((ProfileSnapshot::from_profile(&profile), verdict.is_ok()))
    }

    fn send(&self, msg: &ServerMessage) {
        if let Ok(payload) = msg.encode() {
            let _ = self.out.send(payload);
        }
    }

    fn send_error(&self, code: ErrorCode, message: &str) {
        rdx_metrics::counter("rdx.server.errors").incr();
        self.send(&ServerMessage::Error {
            session: self.id,
            code,
            message: message.to_string(),
        });
    }

    fn send_trace_error(&self, e: &TraceError) {
        self.send_error(ErrorCode::MalformedTrace, &e.to_string());
    }

    /// Replies to a command arriving after the session already failed:
    /// the original class, so clients correlate follow-ups with the
    /// first report.
    fn send_failed(&self, code: ErrorCode) {
        self.send_error(code, "session already failed; close it");
    }
}

fn records_so_far(scan: &Scan) -> u64 {
    match scan {
        Scan::AwaitingHeader => 0,
        Scan::Records { scanner, .. } => scanner.records(),
    }
}
