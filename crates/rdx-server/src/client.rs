//! Blocking client for the rdx-server protocol.
//!
//! One [`Client`] owns one connection and may multiplex many sessions
//! over it. Replies that arrive for *other* sessions while waiting for
//! a specific one are parked in a pending queue and handed out when
//! their session is asked about — so interleaved use of several
//! sessions over a single connection just works.

use crate::net::{AnyStream, Listen};
use crate::protocol::{
    ClientMessage, ErrorCode, ProfileSnapshot, ServerMessage, SessionOptions, PROTOCOL_VERSION,
};
use bytes::Bytes;
use rdx_trace::frame::{read_frame, write_frame, FrameError};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::time::Duration;

/// How long a reply may take before the client gives up. Generous —
/// profiling a large buffered trace takes real time — but finite, so a
/// wedged server can't hang tests or CI forever.
const REPLY_TIMEOUT: Duration = Duration::from_secs(120);

/// Everything that can go wrong talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// Frame- or message-level failure.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Server {
        /// The session at fault (0 = the connection).
        session: u32,
        /// The error class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server violated the protocol (wrong reply, early close).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Server {
                session,
                code,
                message,
            } => write!(f, "server error (session {session}, {code:?}): {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A `Flush` acknowledgement: what the server has ingested so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushAck {
    /// Trace bytes the server has buffered for the session.
    pub received_bytes: u64,
    /// Complete RDXT records scanned so far.
    pub records: u64,
}

/// A `SnapshotMetrics` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReply {
    /// Trace bytes the server has buffered for the session.
    pub received_bytes: u64,
    /// Complete RDXT records scanned so far.
    pub records: u64,
    /// The server process's `rdx_metrics` registry as JSON.
    pub registry_json: String,
}

/// A `SnapshotAggregate` reply: one fleet profile over many sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateReply {
    /// How many sessions the server folded in.
    pub sessions: u32,
    /// The fleet profile.
    pub profile: ProfileSnapshot,
}

/// The final answer of a closed session.
#[derive(Debug, Clone, PartialEq)]
pub struct CloseAck {
    /// True when the trace decoded completely and cleanly.
    pub clean: bool,
    /// The final profile.
    pub profile: ProfileSnapshot,
}

/// A connected, handshaken client.
pub struct Client {
    writer: BufWriter<AnyStream>,
    reader: BufReader<AnyStream>,
    /// Replies read while waiting for a different session's answer.
    pending: VecDeque<ServerMessage>,
}

impl Client {
    /// Connects and performs the `Hello`/`HelloAck` handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, framing errors, or a version-mismatch
    /// error frame from the server.
    pub fn connect(listen: &Listen) -> Result<Client, ClientError> {
        let stream = AnyStream::connect(listen)?;
        stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
        let writer = BufWriter::new(stream.try_clone()?);
        let reader = BufReader::new(stream);
        let mut client = Client {
            writer,
            reader,
            pending: VecDeque::new(),
        };
        client.send(&ClientMessage::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            ServerMessage::HelloAck { version } if version == PROTOCOL_VERSION => Ok(client),
            ServerMessage::HelloAck { version } => Err(ClientError::Protocol(format!(
                "server speaks protocol version {version}, client speaks {PROTOCOL_VERSION}"
            ))),
            ServerMessage::Error {
                session,
                code,
                message,
            } => Err(ClientError::Server {
                session,
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    /// Opens a session and returns its id.
    ///
    /// # Errors
    ///
    /// Typed server errors (e.g. [`ErrorCode::InvalidOptions`]) or
    /// transport failures.
    pub fn open_session(&mut self, name: &str, opts: SessionOptions) -> Result<u32, ClientError> {
        self.send(&ClientMessage::OpenSession {
            name: name.to_string(),
            opts,
        })?;
        // A SessionOpened reply can't be correlated by session id (the
        // id is the answer), so take the first one that shows up.
        let msg = self.wait_matching(|m| matches!(m, ServerMessage::SessionOpened { .. }), 0)?;
        match msg {
            ServerMessage::SessionOpened { session } => Ok(session),
            other => Err(unexpected("SessionOpened", &other)),
        }
    }

    /// Streams trace bytes to a session. Fire-and-forget: errors the
    /// chunk provokes surface at the next acknowledged command.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn send_chunk(&mut self, session: u32, bytes: &[u8]) -> Result<(), ClientError> {
        self.send(&ClientMessage::TraceChunk {
            session,
            bytes: Bytes::from(bytes.to_vec()),
        })
    }

    /// Waits until everything sent so far has been ingested.
    ///
    /// # Errors
    ///
    /// Typed server errors (a malformed or overflowed stream surfaces
    /// here) or transport failures.
    pub fn flush(&mut self, session: u32) -> Result<FlushAck, ClientError> {
        self.send(&ClientMessage::Flush { session })?;
        let msg = self.wait_matching(
            move |m| matches!(m, ServerMessage::Flushed { session: s, .. } if *s == session),
            session,
        )?;
        match msg {
            ServerMessage::Flushed {
                received_bytes,
                records,
                ..
            } => Ok(FlushAck {
                received_bytes,
                records,
            }),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// Requests a live profile over the bytes received so far.
    ///
    /// # Errors
    ///
    /// Typed server errors ([`ErrorCode::NotReady`] before a complete
    /// header) or transport failures.
    pub fn snapshot_histogram(&mut self, session: u32) -> Result<ProfileSnapshot, ClientError> {
        self.send(&ClientMessage::SnapshotHistogram { session })?;
        let msg = self.wait_matching(
            move |m| matches!(m, ServerMessage::Histogram { session: s, .. } if *s == session),
            session,
        )?;
        match msg {
            ServerMessage::Histogram { profile, .. } => Ok(profile),
            other => Err(unexpected("Histogram", &other)),
        }
    }

    /// Requests session counters and the server's metrics registry.
    ///
    /// # Errors
    ///
    /// Typed server errors or transport failures.
    pub fn snapshot_metrics(&mut self, session: u32) -> Result<MetricsReply, ClientError> {
        self.send(&ClientMessage::SnapshotMetrics { session })?;
        let msg = self.wait_matching(
            move |m| matches!(m, ServerMessage::Metrics { session: s, .. } if *s == session),
            session,
        )?;
        match msg {
            ServerMessage::Metrics {
                received_bytes,
                records,
                registry_json,
                ..
            } => Ok(MetricsReply {
                received_bytes,
                records,
                registry_json,
            }),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Closes a session and returns its final profile.
    ///
    /// # Errors
    ///
    /// Typed server errors or transport failures.
    pub fn close_session(&mut self, session: u32) -> Result<CloseAck, ClientError> {
        self.send(&ClientMessage::CloseSession { session })?;
        let msg = self.wait_matching(
            move |m| matches!(m, ServerMessage::SessionClosed { session: s, .. } if *s == session),
            session,
        )?;
        match msg {
            ServerMessage::SessionClosed { clean, profile, .. } => Ok(CloseAck { clean, profile }),
            other => Err(unexpected("SessionClosed", &other)),
        }
    }

    /// Asks the server for one fleet profile over several open
    /// sessions, folded server-side with bounded memory.
    ///
    /// The reply equals folding `ProfileSnapshot::default()` with each
    /// session's [`snapshot_histogram`](Self::snapshot_histogram)
    /// result in `sessions` order through [`ProfileSnapshot::merge`] —
    /// bit for bit, which the loopback tests pin.
    ///
    /// # Errors
    ///
    /// Typed server errors (an empty list, an unknown session, or one
    /// that is failed or not yet past its trace header aborts the whole
    /// aggregate) or transport failures.
    pub fn snapshot_aggregate(&mut self, sessions: &[u32]) -> Result<AggregateReply, ClientError> {
        self.send(&ClientMessage::SnapshotAggregate {
            sessions: sessions.to_vec(),
        })?;
        let msg = self.wait_matching_err(
            |m| matches!(m, ServerMessage::Aggregate { .. }),
            // The server blames whichever session broke the aggregate.
            |_| true,
        )?;
        match msg {
            ServerMessage::Aggregate { sessions, profile } => {
                Ok(AggregateReply { sessions, profile })
            }
            other => Err(unexpected("Aggregate", &other)),
        }
    }

    fn send(&mut self, msg: &ClientMessage) -> Result<(), ClientError> {
        let payload = msg.encode()?;
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<ServerMessage, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(payload) => Ok(ServerMessage::decode(payload)?),
            None => Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            )),
        }
    }

    /// Returns the first reply matching `want` (which encodes both the
    /// expected shape and the session it concerns). Error frames for
    /// `err_session` — or for the connection, session 0 —
    /// short-circuit; replies for other sessions are parked in
    /// `pending` for their own waiters.
    fn wait_matching(
        &mut self,
        want: impl Fn(&ServerMessage) -> bool,
        err_session: u32,
    ) -> Result<ServerMessage, ClientError> {
        self.wait_matching_err(want, move |s| s == err_session || s == 0)
    }

    /// [`wait_matching`](Self::wait_matching) with an explicit error
    /// scope: error frames whose session satisfies `err` short-circuit,
    /// others are parked. Multi-session commands (aggregation) pass
    /// `|_| true` — the server may blame any of the involved sessions.
    fn wait_matching_err(
        &mut self,
        want: impl Fn(&ServerMessage) -> bool,
        err: impl Fn(u32) -> bool,
    ) -> Result<ServerMessage, ClientError> {
        // Pending replies first — they arrived earlier.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending.get(i).is_some_and(&want) {
                if let Some(m) = self.pending.remove(i) {
                    return Ok(m);
                }
            }
            i += 1;
        }
        loop {
            let msg = self.recv()?;
            if let ServerMessage::Error {
                session: s,
                code,
                message,
            } = &msg
            {
                if err(*s) {
                    return Err(ClientError::Server {
                        session: *s,
                        code: *code,
                        message: message.clone(),
                    });
                }
                // Another session's problem; park it.
                self.pending.push_back(msg);
                continue;
            }
            if want(&msg) {
                return Ok(msg);
            }
            self.pending.push_back(msg);
        }
    }
}

fn unexpected(wanted: &str, got: &ServerMessage) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
