//! Message grammar of the rdx-server wire protocol.
//!
//! Every message travels as one frame (see [`rdx_trace::frame`]); the
//! first payload byte is the message tag, client tags in `0x01..=0x7F`
//! and server tags in `0x80..=0xFF`. Decoding is strict: unknown tags,
//! fields past the payload end, and trailing bytes are all
//! [`FrameError::Malformed`], so a confused peer is detected at the
//! first bad message instead of desynchronizing the stream.

use bytes::Bytes;
use rdx_core::limits::{
    check_decode_ahead, check_decode_buffer, check_period, check_registers, LimitError,
};
use rdx_core::{IngestOptions, RdxConfig, RdxProfile};
use rdx_trace::{FrameError, PayloadReader, PayloadWriter};

/// Protocol revision; bumped on any grammar change. [`Hello`] carries
/// it and the server refuses mismatches, so stale clients fail fast.
///
/// [`Hello`]: ClientMessage::Hello
pub const PROTOCOL_VERSION: u32 = 1;

/// Default sampling period for sessions that don't specify one,
/// matching the CLI's default operating point.
pub const DEFAULT_PERIOD: u64 = 2048;

// Client message tags.
const T_HELLO: u8 = 0x01;
const T_OPEN: u8 = 0x02;
const T_CHUNK: u8 = 0x03;
const T_FLUSH: u8 = 0x04;
const T_SNAP_HIST: u8 = 0x05;
const T_SNAP_METRICS: u8 = 0x06;
const T_CLOSE: u8 = 0x07;
const T_SNAP_AGG: u8 = 0x08;

// Server message tags.
const T_HELLO_ACK: u8 = 0x81;
const T_OPENED: u8 = 0x82;
const T_FLUSHED: u8 = 0x84;
const T_HISTOGRAM: u8 = 0x85;
const T_METRICS: u8 = 0x86;
const T_CLOSED: u8 = 0x87;
const T_AGGREGATE: u8 = 0x88;
const T_ERROR: u8 = 0xEE;

/// Per-session profiling options carried by `OpenSession`.
///
/// Mirrors the CLI's profiling flags; the server validates them with
/// the same [`rdx_core::limits`] checks the CLI uses at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    /// Mean PMU sampling period in accesses (≥ 1).
    pub period: u64,
    /// Debug registers to model (1..=4).
    pub registers: u32,
    /// Machine RNG seed.
    pub seed: u64,
    /// Decode on a dedicated thread (decode-ahead) when profiling.
    pub pipelined: bool,
    /// Accesses per decoded chunk (≥ 1).
    pub chunk_capacity: u64,
    /// Decode-ahead ring depth (≥ 2).
    pub decode_ahead: u64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        let ingest = IngestOptions::default();
        let config = RdxConfig::default();
        SessionOptions {
            period: DEFAULT_PERIOD,
            registers: 4,
            seed: config.machine.seed,
            pipelined: ingest.pipelined,
            chunk_capacity: ingest.chunk_capacity as u64,
            decode_ahead: ingest.decode_ahead as u64,
        }
    }
}

impl SessionOptions {
    /// Validates every field with the shared [`rdx_core::limits`]
    /// checks (the same ones the CLI applies at flag-parse time).
    ///
    /// # Errors
    ///
    /// The first [`LimitError`], naming the offending parameter.
    pub fn validate(&self) -> Result<(), LimitError> {
        check_period(self.period)?;
        check_registers(usize::try_from(self.registers).unwrap_or(usize::MAX))?;
        check_decode_buffer(usize::try_from(self.chunk_capacity).unwrap_or(usize::MAX))?;
        if self.pipelined {
            check_decode_ahead(usize::try_from(self.decode_ahead).unwrap_or(usize::MAX))?;
        }
        Ok(())
    }

    /// The profiler configuration these options describe.
    #[must_use]
    pub fn config(&self) -> RdxConfig {
        RdxConfig::default()
            .with_period(self.period)
            .with_seed(self.seed)
            .with_registers(usize::try_from(self.registers).unwrap_or(4))
    }

    /// The ingestion (decode) options these options describe.
    #[must_use]
    pub fn ingest(&self) -> IngestOptions {
        IngestOptions::default()
            .with_pipelined(self.pipelined)
            .with_chunk_capacity(usize::try_from(self.chunk_capacity).unwrap_or(usize::MAX))
            .with_decode_ahead(usize::try_from(self.decode_ahead).unwrap_or(usize::MAX))
    }
}

/// Typed reasons a server [`Error`](ServerMessage::Error) frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// A frame or message that violates the protocol grammar.
    Protocol = 1,
    /// The client's protocol version is not supported.
    Version = 2,
    /// A command referenced a session id that is not open.
    UnknownSession = 3,
    /// `OpenSession` options failed validation.
    InvalidOptions = 4,
    /// The session's trace byte stream is malformed (RDXT-level).
    MalformedTrace = 5,
    /// The session exceeded its buffered-bytes budget.
    Overflow = 6,
    /// The request cannot be answered yet (e.g. snapshot before a
    /// complete trace header has arrived).
    NotReady = 7,
    /// A server-side infrastructure failure (not the client's fault):
    /// e.g. the connection's writer could not be set up.
    Internal = 8,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<ErrorCode, FrameError> {
        Ok(match v {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Version,
            3 => ErrorCode::UnknownSession,
            4 => ErrorCode::InvalidOptions,
            5 => ErrorCode::MalformedTrace,
            6 => ErrorCode::Overflow,
            7 => ErrorCode::NotReady,
            8 => ErrorCode::Internal,
            _ => return Err(FrameError::Malformed),
        })
    }
}

/// A histogram flattened for the wire: `(lo, hi, weight)` buckets plus
/// the infinite (cold) weight. Weights travel as exact `f64` bit
/// patterns so digests over them are bit-stable end to end.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// `(range.lo, range.hi, weight)` per bucket, in histogram order.
    pub buckets: Vec<(u64, u64, f64)>,
    /// Weight of the infinite (cold / never-reused) bucket.
    pub infinite: f64,
}

impl HistogramSnapshot {
    /// Adds `other`'s weight into this snapshot.
    ///
    /// Bucket lists hold only occupied buckets of one binning, sorted
    /// by range, so this is a sorted merge: equal `(lo, hi)` ranges sum
    /// their weights, ranges present on one side only carry over. The
    /// infinite (cold) weight is additive — the composition rule the
    /// cold-correction golden tests pin.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let a = std::mem::take(&mut self.buckets);
        let b = &other.buckets;
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (alo, ahi, aw) = a[i];
            let (blo, bhi, bw) = b[j];
            match (alo, ahi).cmp(&(blo, bhi)) {
                std::cmp::Ordering::Equal => {
                    out.push((alo, ahi, aw + bw));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.buckets = out;
        self.infinite += other.infinite;
    }
}

/// A profile flattened for the wire — everything the registry golden
/// digest covers, in one copyable snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// Accesses profiled so far (the decodable prefix).
    pub accesses: u64,
    /// PMU samples taken.
    pub samples: u64,
    /// Watchpoint traps observed.
    pub traps: u64,
    /// Watchpoint evictions (censored intervals).
    pub evictions: u64,
    /// Estimated distinct-block count.
    pub m_estimate: f64,
    /// Reuse-distance histogram.
    pub rd: HistogramSnapshot,
    /// Reuse-time histogram.
    pub rt: HistogramSnapshot,
}

impl ProfileSnapshot {
    /// Flattens a measured profile.
    #[must_use]
    pub fn from_profile(p: &RdxProfile) -> ProfileSnapshot {
        let flatten = |h: &rdx_histogram::Histogram| HistogramSnapshot {
            buckets: h
                .buckets()
                .map(|b| (b.range.lo, b.range.hi, b.weight))
                .collect(),
            infinite: h.infinite_weight(),
        };
        ProfileSnapshot {
            accesses: p.accesses,
            samples: p.samples,
            traps: p.traps,
            evictions: p.evictions,
            m_estimate: p.m_estimate,
            rd: flatten(p.rd.as_histogram()),
            rt: flatten(p.rt.as_histogram()),
        }
    }

    /// Folds `other` into this snapshot — the wire-level face of the
    /// profile merge monoid.
    ///
    /// Counters and the distinct-block estimate are additive;
    /// histograms merge bucket-range by bucket-range (see
    /// [`HistogramSnapshot::merge`]). The server answers
    /// [`SnapshotAggregate`] by folding `ProfileSnapshot::default()`
    /// with each requested session's snapshot **in request order**
    /// through this exact function, so a client folding per-session
    /// snapshots the same way reproduces the server's aggregate
    /// bit for bit.
    ///
    /// [`SnapshotAggregate`]: ClientMessage::SnapshotAggregate
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        self.accesses = self.accesses.saturating_add(other.accesses);
        self.samples = self.samples.saturating_add(other.samples);
        self.traps = self.traps.saturating_add(other.traps);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.m_estimate += other.m_estimate;
        self.rd.merge(&other.rd);
        self.rt.merge(&other.rt);
    }

    /// Folds this snapshot into a digest in the exact word order the
    /// registry golden tests use: rd histogram, rt histogram, samples,
    /// traps, evictions, m-estimate bits.
    pub fn fold_into(&self, d: &mut Fnv64) {
        for h in [&self.rd, &self.rt] {
            for &(lo, hi, w) in &h.buckets {
                d.push(lo);
                d.push(hi);
                d.push(w.to_bits());
            }
            d.push(h.infinite.to_bits());
        }
        d.push(self.samples);
        d.push(self.traps);
        d.push(self.evictions);
        d.push(self.m_estimate.to_bits());
    }

    fn put(&self, w: &mut PayloadWriter) -> Result<(), FrameError> {
        w.put_u64(self.accesses);
        w.put_u64(self.samples);
        w.put_u64(self.traps);
        w.put_u64(self.evictions);
        w.put_u64(self.m_estimate.to_bits());
        for h in [&self.rd, &self.rt] {
            let n = u32::try_from(h.buckets.len())
                .map_err(|_| FrameError::Oversized(h.buckets.len()))?;
            w.put_u32(n);
            for &(lo, hi, weight) in &h.buckets {
                w.put_u64(lo);
                w.put_u64(hi);
                w.put_u64(weight.to_bits());
            }
            w.put_u64(h.infinite.to_bits());
        }
        Ok(())
    }

    fn take(r: &mut PayloadReader) -> Result<ProfileSnapshot, FrameError> {
        let accesses = r.take_u64()?;
        let samples = r.take_u64()?;
        let traps = r.take_u64()?;
        let evictions = r.take_u64()?;
        let m_estimate = f64::from_bits(r.take_u64()?);
        let mut hists = [HistogramSnapshot::default(), HistogramSnapshot::default()];
        for h in &mut hists {
            let n = r.take_u32()? as usize;
            // 24 bytes per bucket: a count the payload can't back is
            // rejected before any allocation.
            if n.saturating_mul(24) > r.remaining() {
                return Err(FrameError::Malformed);
            }
            let mut buckets = Vec::with_capacity(n);
            for _ in 0..n {
                let lo = r.take_u64()?;
                let hi = r.take_u64()?;
                let weight = f64::from_bits(r.take_u64()?);
                buckets.push((lo, hi, weight));
            }
            h.buckets = buckets;
            h.infinite = f64::from_bits(r.take_u64()?);
        }
        let [rd, rt] = hists;
        Ok(ProfileSnapshot {
            accesses,
            samples,
            traps,
            evictions,
            m_estimate,
            rd,
            rt,
        })
    }
}

/// FNV-1a over little-endian `u64` words — the same digest the
/// workspace's golden determinism tests pin, so a server-side profile
/// can be crosschecked bit-for-bit against the local path.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Starts a digest at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word in, byte by byte, little-endian.
    pub fn push(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest value so far.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// Messages a client sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// Protocol handshake; must be the first message on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Opens a profiling session.
    OpenSession {
        /// Display name; also the fallback trace label.
        name: String,
        /// Profiling and decode options.
        opts: SessionOptions,
    },
    /// Appends raw RDXT bytes to a session's stream. Chunks may split
    /// the trace anywhere — mid-header, mid-record.
    TraceChunk {
        /// Target session.
        session: u32,
        /// The bytes.
        bytes: Bytes,
    },
    /// Synchronization point: the server acknowledges once every chunk
    /// sent before it has been ingested.
    Flush {
        /// Target session.
        session: u32,
    },
    /// Requests a live profile (histograms + counters) over the bytes
    /// received so far.
    SnapshotHistogram {
        /// Target session.
        session: u32,
    },
    /// Requests session byte/record counters and the server's metrics
    /// registry snapshot.
    SnapshotMetrics {
        /// Target session.
        session: u32,
    },
    /// Closes a session; the reply carries the final profile.
    CloseSession {
        /// Target session.
        session: u32,
    },
    /// Requests one fleet profile over several open sessions: the
    /// server snapshots each listed session and folds the snapshots
    /// into a single [`ProfileSnapshot`] (in list order, via
    /// [`ProfileSnapshot::merge`]) with bounded memory — one
    /// accumulator, however many sessions are listed.
    SnapshotAggregate {
        /// Sessions to fold, in fold order. Must be non-empty; every
        /// id must be open and past its trace header.
        sessions: Vec<u32>,
    },
}

impl ClientMessage {
    /// Encodes into one frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if a variable-length field exceeds the
    /// frame bound.
    pub fn encode(&self) -> Result<Bytes, FrameError> {
        let payload = match self {
            ClientMessage::Hello { version } => {
                let mut w = PayloadWriter::new(T_HELLO);
                w.put_u32(*version);
                w.finish()
            }
            ClientMessage::OpenSession { name, opts } => {
                let mut w = PayloadWriter::new(T_OPEN);
                w.put_str(name)?;
                w.put_u64(opts.period);
                w.put_u32(opts.registers);
                w.put_u64(opts.seed);
                w.put_u8(u8::from(opts.pipelined));
                w.put_u64(opts.chunk_capacity);
                w.put_u64(opts.decode_ahead);
                w.finish()
            }
            ClientMessage::TraceChunk { session, bytes } => {
                let mut w = PayloadWriter::new(T_CHUNK);
                w.put_u32(*session);
                w.put_bytes(bytes)?;
                w.finish()
            }
            ClientMessage::Flush { session } => tag_session(T_FLUSH, *session),
            ClientMessage::SnapshotHistogram { session } => tag_session(T_SNAP_HIST, *session),
            ClientMessage::SnapshotMetrics { session } => tag_session(T_SNAP_METRICS, *session),
            ClientMessage::CloseSession { session } => tag_session(T_CLOSE, *session),
            ClientMessage::SnapshotAggregate { sessions } => {
                let mut w = PayloadWriter::new(T_SNAP_AGG);
                let n = u32::try_from(sessions.len())
                    .map_err(|_| FrameError::Oversized(sessions.len()))?;
                w.put_u32(n);
                for &session in sessions {
                    w.put_u32(session);
                }
                w.finish()
            }
        };
        Ok(payload)
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on an unknown tag, a field overrun, or
    /// trailing bytes.
    pub fn decode(payload: Bytes) -> Result<ClientMessage, FrameError> {
        let mut r = PayloadReader::new(payload);
        let msg = match r.take_u8()? {
            T_HELLO => ClientMessage::Hello {
                version: r.take_u32()?,
            },
            T_OPEN => {
                let name = r.take_str()?;
                let opts = SessionOptions {
                    period: r.take_u64()?,
                    registers: r.take_u32()?,
                    seed: r.take_u64()?,
                    pipelined: r.take_u8()? != 0,
                    chunk_capacity: r.take_u64()?,
                    decode_ahead: r.take_u64()?,
                };
                ClientMessage::OpenSession { name, opts }
            }
            T_CHUNK => ClientMessage::TraceChunk {
                session: r.take_u32()?,
                bytes: r.take_bytes()?,
            },
            T_FLUSH => ClientMessage::Flush {
                session: r.take_u32()?,
            },
            T_SNAP_HIST => ClientMessage::SnapshotHistogram {
                session: r.take_u32()?,
            },
            T_SNAP_METRICS => ClientMessage::SnapshotMetrics {
                session: r.take_u32()?,
            },
            T_CLOSE => ClientMessage::CloseSession {
                session: r.take_u32()?,
            },
            T_SNAP_AGG => {
                let n = r.take_u32()? as usize;
                // 4 bytes per id: a count the payload can't back is
                // rejected before any allocation.
                if n.saturating_mul(4) > r.remaining() {
                    return Err(FrameError::Malformed);
                }
                let mut sessions = Vec::with_capacity(n);
                for _ in 0..n {
                    sessions.push(r.take_u32()?);
                }
                ClientMessage::SnapshotAggregate { sessions }
            }
            _ => return Err(FrameError::Malformed),
        };
        r.expect_end()?;
        Ok(msg)
    }
}

fn tag_session(tag: u8, session: u32) -> Bytes {
    let mut w = PayloadWriter::new(tag);
    w.put_u32(session);
    w.finish()
}

/// Messages the server sends.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMessage {
    /// Handshake acknowledgement.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// A session was opened.
    SessionOpened {
        /// The new session's id (unique per connection).
        session: u32,
    },
    /// All chunks sent before the `Flush` have been ingested.
    Flushed {
        /// The session.
        session: u32,
        /// Trace bytes buffered so far.
        received_bytes: u64,
        /// Complete records scanned so far.
        records: u64,
    },
    /// A live profile over the bytes received so far.
    Histogram {
        /// The session.
        session: u32,
        /// The profile.
        profile: ProfileSnapshot,
    },
    /// Session counters plus the server's metrics registry snapshot.
    Metrics {
        /// The session.
        session: u32,
        /// Trace bytes buffered so far.
        received_bytes: u64,
        /// Complete records scanned so far.
        records: u64,
        /// `rdx_metrics::snapshot().to_json()` of the server process.
        registry_json: String,
    },
    /// The session is closed; this is its final answer.
    SessionClosed {
        /// The session.
        session: u32,
        /// True when a complete, valid trace was received and decoded
        /// to exactly its declared record count.
        clean: bool,
        /// The final profile (over the decodable prefix when unclean).
        profile: ProfileSnapshot,
    },
    /// One fleet profile answering a
    /// [`SnapshotAggregate`](ClientMessage::SnapshotAggregate): every
    /// requested session's snapshot folded into a single profile.
    Aggregate {
        /// How many sessions were folded in.
        sessions: u32,
        /// The fleet profile.
        profile: ProfileSnapshot,
    },
    /// A typed error. `session` 0 means the connection itself.
    Error {
        /// The session at fault, or 0 for connection-level errors.
        session: u32,
        /// The error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl ServerMessage {
    /// Encodes into one frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] if a variable-length field exceeds the
    /// frame bound.
    pub fn encode(&self) -> Result<Bytes, FrameError> {
        let payload = match self {
            ServerMessage::HelloAck { version } => {
                let mut w = PayloadWriter::new(T_HELLO_ACK);
                w.put_u32(*version);
                w.finish()
            }
            ServerMessage::SessionOpened { session } => tag_session(T_OPENED, *session),
            ServerMessage::Flushed {
                session,
                received_bytes,
                records,
            } => {
                let mut w = PayloadWriter::new(T_FLUSHED);
                w.put_u32(*session);
                w.put_u64(*received_bytes);
                w.put_u64(*records);
                w.finish()
            }
            ServerMessage::Histogram { session, profile } => {
                let mut w = PayloadWriter::new(T_HISTOGRAM);
                w.put_u32(*session);
                profile.put(&mut w)?;
                w.finish()
            }
            ServerMessage::Metrics {
                session,
                received_bytes,
                records,
                registry_json,
            } => {
                let mut w = PayloadWriter::new(T_METRICS);
                w.put_u32(*session);
                w.put_u64(*received_bytes);
                w.put_u64(*records);
                w.put_str(registry_json)?;
                w.finish()
            }
            ServerMessage::SessionClosed {
                session,
                clean,
                profile,
            } => {
                let mut w = PayloadWriter::new(T_CLOSED);
                w.put_u32(*session);
                w.put_u8(u8::from(*clean));
                profile.put(&mut w)?;
                w.finish()
            }
            ServerMessage::Aggregate { sessions, profile } => {
                let mut w = PayloadWriter::new(T_AGGREGATE);
                w.put_u32(*sessions);
                profile.put(&mut w)?;
                w.finish()
            }
            ServerMessage::Error {
                session,
                code,
                message,
            } => {
                let mut w = PayloadWriter::new(T_ERROR);
                w.put_u32(*session);
                w.put_u8(*code as u8);
                w.put_str(message)?;
                w.finish()
            }
        };
        Ok(payload)
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] on an unknown tag, a field overrun, or
    /// trailing bytes.
    pub fn decode(payload: Bytes) -> Result<ServerMessage, FrameError> {
        let mut r = PayloadReader::new(payload);
        let msg = match r.take_u8()? {
            T_HELLO_ACK => ServerMessage::HelloAck {
                version: r.take_u32()?,
            },
            T_OPENED => ServerMessage::SessionOpened {
                session: r.take_u32()?,
            },
            T_FLUSHED => ServerMessage::Flushed {
                session: r.take_u32()?,
                received_bytes: r.take_u64()?,
                records: r.take_u64()?,
            },
            T_HISTOGRAM => ServerMessage::Histogram {
                session: r.take_u32()?,
                profile: ProfileSnapshot::take(&mut r)?,
            },
            T_METRICS => ServerMessage::Metrics {
                session: r.take_u32()?,
                received_bytes: r.take_u64()?,
                records: r.take_u64()?,
                registry_json: r.take_str()?,
            },
            T_CLOSED => ServerMessage::SessionClosed {
                session: r.take_u32()?,
                clean: r.take_u8()? != 0,
                profile: ProfileSnapshot::take(&mut r)?,
            },
            T_AGGREGATE => ServerMessage::Aggregate {
                sessions: r.take_u32()?,
                profile: ProfileSnapshot::take(&mut r)?,
            },
            T_ERROR => ServerMessage::Error {
                session: r.take_u32()?,
                code: ErrorCode::from_u8(r.take_u8()?)?,
                message: r.take_str()?,
            },
            _ => return Err(FrameError::Malformed),
        };
        r.expect_end()?;
        Ok(msg)
    }

    /// The session a message concerns (0 for connection-level ones).
    #[must_use]
    pub fn session(&self) -> u32 {
        match self {
            // An aggregate spans sessions: like the handshake, it
            // belongs to the connection, not to any one session.
            ServerMessage::HelloAck { .. } | ServerMessage::Aggregate { .. } => 0,
            ServerMessage::SessionOpened { session }
            | ServerMessage::Flushed { session, .. }
            | ServerMessage::Histogram { session, .. }
            | ServerMessage::Metrics { session, .. }
            | ServerMessage::SessionClosed { session, .. }
            | ServerMessage::Error { session, .. } => *session,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_client(msg: ClientMessage) {
        let wire = msg.encode().expect("encodes");
        let back = ClientMessage::decode(wire).expect("decodes");
        assert_eq!(back, msg);
    }

    fn roundtrip_server(msg: ServerMessage) {
        let wire = msg.encode().expect("encodes");
        let back = ServerMessage::decode(wire).expect("decodes");
        assert_eq!(back, msg);
    }

    fn sample_profile() -> ProfileSnapshot {
        ProfileSnapshot {
            accesses: 60_000,
            samples: 117,
            traps: 95,
            evictions: 4,
            m_estimate: 799.25,
            rd: HistogramSnapshot {
                buckets: vec![(0, 2, 0.5), (2, 4, 1.75)],
                infinite: 0.25,
            },
            rt: HistogramSnapshot {
                buckets: vec![(0, 1024, 3.0)],
                infinite: 0.0,
            },
        }
    }

    #[test]
    fn client_messages_roundtrip() {
        roundtrip_client(ClientMessage::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_client(ClientMessage::OpenSession {
            name: "zipf".to_string(),
            opts: SessionOptions {
                period: 512,
                registers: 2,
                seed: 7,
                pipelined: false,
                chunk_capacity: 777,
                decode_ahead: 3,
            },
        });
        roundtrip_client(ClientMessage::TraceChunk {
            session: 3,
            bytes: Bytes::from(vec![1, 2, 3, 0x80, 0xFF]),
        });
        for session in [0u32, 1, u32::MAX] {
            roundtrip_client(ClientMessage::Flush { session });
            roundtrip_client(ClientMessage::SnapshotHistogram { session });
            roundtrip_client(ClientMessage::SnapshotMetrics { session });
            roundtrip_client(ClientMessage::CloseSession { session });
        }
        for sessions in [vec![], vec![1], vec![3, 1, 2, u32::MAX]] {
            roundtrip_client(ClientMessage::SnapshotAggregate { sessions });
        }
    }

    #[test]
    fn server_messages_roundtrip() {
        roundtrip_server(ServerMessage::HelloAck {
            version: PROTOCOL_VERSION,
        });
        roundtrip_server(ServerMessage::SessionOpened { session: 9 });
        roundtrip_server(ServerMessage::Flushed {
            session: 9,
            received_bytes: 1 << 20,
            records: 60_000,
        });
        roundtrip_server(ServerMessage::Histogram {
            session: 9,
            profile: sample_profile(),
        });
        roundtrip_server(ServerMessage::Metrics {
            session: 9,
            received_bytes: 123,
            records: 45,
            registry_json: "{\"counters\":{}}".to_string(),
        });
        roundtrip_server(ServerMessage::SessionClosed {
            session: 9,
            clean: true,
            profile: sample_profile(),
        });
        roundtrip_server(ServerMessage::Aggregate {
            sessions: 3,
            profile: sample_profile(),
        });
        roundtrip_server(ServerMessage::Error {
            session: 0,
            code: ErrorCode::Protocol,
            message: "first message must be Hello".to_string(),
        });
    }

    #[test]
    fn aggregate_session_count_is_bounds_checked() {
        // A session count the payload can't back is rejected before
        // any allocation, mirroring the histogram bucket-count guard.
        let mut w = PayloadWriter::new(T_SNAP_AGG);
        w.put_u32(u32::MAX);
        assert!(matches!(
            ClientMessage::decode(w.finish()),
            Err(FrameError::Malformed)
        ));
    }

    #[test]
    fn snapshot_merge_sums_counters_and_aligned_buckets() {
        let mut fleet = ProfileSnapshot::default();
        fleet.merge(&sample_profile());
        fleet.merge(&sample_profile());
        let one = sample_profile();
        assert_eq!(fleet.accesses, 2 * one.accesses);
        assert_eq!(fleet.samples, 2 * one.samples);
        assert_eq!(fleet.traps, 2 * one.traps);
        assert_eq!(fleet.evictions, 2 * one.evictions);
        assert_eq!(fleet.m_estimate, 2.0 * one.m_estimate);
        // Identical binnings: same bucket ranges, doubled weights.
        assert_eq!(fleet.rd.buckets.len(), one.rd.buckets.len());
        for (m, o) in fleet.rd.buckets.iter().zip(&one.rd.buckets) {
            assert_eq!((m.0, m.1), (o.0, o.1));
            assert_eq!(m.2, 2.0 * o.2);
        }
        assert_eq!(fleet.rd.infinite, 2.0 * one.rd.infinite);
    }

    #[test]
    fn snapshot_merge_interleaves_disjoint_buckets_in_order() {
        let mut a = HistogramSnapshot {
            buckets: vec![(0, 2, 1.0), (4, 8, 2.0)],
            infinite: 1.0,
        };
        let b = HistogramSnapshot {
            buckets: vec![(2, 4, 0.5), (4, 8, 3.0), (8, 16, 4.0)],
            infinite: 0.5,
        };
        a.merge(&b);
        assert_eq!(
            a.buckets,
            vec![(0, 2, 1.0), (2, 4, 0.5), (4, 8, 5.0), (8, 16, 4.0)]
        );
        assert_eq!(a.infinite, 1.5);
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_rejected() {
        assert!(matches!(
            ClientMessage::decode(Bytes::from(vec![0x7E])),
            Err(FrameError::Malformed)
        ));
        assert!(matches!(
            ServerMessage::decode(Bytes::from(vec![0x70])),
            Err(FrameError::Malformed)
        ));
        // A valid message followed by junk is rejected whole.
        let mut wire = ClientMessage::Flush { session: 1 }
            .encode()
            .expect("encodes")
            .to_vec();
        wire.push(0xAA);
        assert!(matches!(
            ClientMessage::decode(Bytes::from(wire)),
            Err(FrameError::Malformed)
        ));
        // Empty payloads have no tag.
        assert!(matches!(
            ClientMessage::decode(Bytes::default()),
            Err(FrameError::Malformed)
        ));
    }

    #[test]
    fn truncated_payloads_rejected() {
        let wire = ServerMessage::Histogram {
            session: 1,
            profile: sample_profile(),
        }
        .encode()
        .expect("encodes");
        for cut in [1, 5, 13, wire.len() - 1] {
            let short = Bytes::from(wire.to_vec()[..cut].to_vec());
            assert!(
                matches!(ServerMessage::decode(short), Err(FrameError::Malformed)),
                "cut at {cut}"
            );
        }
        // A bucket count the payload can't back is rejected.
        let mut w = PayloadWriter::new(0x85);
        w.put_u32(1); // session
        w.put_u64(0); // accesses
        w.put_u64(0); // samples
        w.put_u64(0); // traps
        w.put_u64(0); // evictions
        w.put_u64(0); // m bits
        w.put_u32(u32::MAX); // ludicrous bucket count
        assert!(matches!(
            ServerMessage::decode(w.finish()),
            Err(FrameError::Malformed)
        ));
    }

    #[test]
    fn options_validate_via_shared_limits() {
        assert!(SessionOptions::default().validate().is_ok());
        let bad = [
            SessionOptions {
                period: 0,
                ..SessionOptions::default()
            },
            SessionOptions {
                registers: 0,
                ..SessionOptions::default()
            },
            SessionOptions {
                registers: 5,
                ..SessionOptions::default()
            },
            SessionOptions {
                chunk_capacity: 0,
                ..SessionOptions::default()
            },
            SessionOptions {
                decode_ahead: 1,
                ..SessionOptions::default()
            },
        ];
        for opts in bad {
            assert!(opts.validate().is_err(), "{opts:?}");
        }
        // decode_ahead is only meaningful when pipelined.
        let bulk = SessionOptions {
            pipelined: false,
            decode_ahead: 0,
            ..SessionOptions::default()
        };
        assert!(bulk.validate().is_ok());
    }

    #[test]
    fn session_options_map_to_config_and_ingest() {
        let opts = SessionOptions {
            period: 512,
            registers: 3,
            seed: 7,
            pipelined: false,
            chunk_capacity: 1234,
            decode_ahead: 4,
        };
        let config = opts.config();
        assert_eq!(config.machine.sampling.period, 512);
        assert_eq!(config.machine.registers, 3);
        assert_eq!(config.machine.seed, 7);
        let ingest = opts.ingest();
        assert!(!ingest.pipelined);
        assert_eq!(ingest.chunk_capacity, 1234);
        assert_eq!(ingest.decode_ahead, 4);
        // Defaults mirror the local profiling defaults exactly — the
        // precondition for bit-identical server-side profiles.
        let d = SessionOptions::default();
        assert_eq!(d.config().machine.seed, RdxConfig::default().machine.seed);
        assert_eq!(
            d.ingest().chunk_capacity,
            IngestOptions::default().chunk_capacity
        );
    }

    #[test]
    fn snapshot_digest_matches_manual_fnv() {
        let p = sample_profile();
        let mut d = Fnv64::new();
        p.fold_into(&mut d);
        // Manual replication of the golden digest word order.
        let mut manual = Fnv64::new();
        for h in [&p.rd, &p.rt] {
            for &(lo, hi, w) in &h.buckets {
                manual.push(lo);
                manual.push(hi);
                manual.push(w.to_bits());
            }
            manual.push(h.infinite.to_bits());
        }
        manual.push(p.samples);
        manual.push(p.traps);
        manual.push(p.evictions);
        manual.push(p.m_estimate.to_bits());
        assert_eq!(d.value(), manual.value());
    }
}
