//! rdx-server — a long-lived framed profiling service for RDX.
//!
//! Instead of profiling one `.rdxt` file per process invocation, a
//! daemon accepts connections over TCP or a Unix domain socket and
//! multiplexes many concurrent profiling *sessions*: each session
//! receives an RDXT byte stream in arbitrary chunks and can be asked
//! for live histograms, metrics, and a final profile at close. The
//! server runs trace bytes through the exact same decode-and-profile
//! machinery (`RdxtInput` → `profile_rdxt`) as the local file path, so
//! server-side profiles are bit-identical to local ones — the loopback
//! integration tests pin this against the workspace's golden digest.
//!
//! The wire protocol is length-prefixed frames ([`rdx_trace::frame`])
//! carrying tagged messages ([`protocol`]). Everything is bounded:
//! frame sizes, per-session buffered bytes, and every internal queue,
//! so backpressure propagates to the client socket rather than growing
//! memory. There is no async runtime — plain `std::net` blocking I/O
//! with a thread per connection, per session, and per write side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod protocol;

mod client;
mod net;
mod server;
mod session;

pub use client::{AggregateReply, Client, ClientError, CloseAck, FlushAck, MetricsReply};
pub use net::Listen;
pub use protocol::{
    ErrorCode, Fnv64, HistogramSnapshot, ProfileSnapshot, SessionOptions, PROTOCOL_VERSION,
};
pub use server::{Server, ServerHandle, ServerOptions};
pub use session::{SessionCmd, SessionEvent, SessionStepper};
