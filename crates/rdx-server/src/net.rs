//! Transport abstraction: one server/client codebase over TCP sockets
//! and (on Unix) filesystem domain sockets.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP socket address, e.g. `127.0.0.1:7979` (port 0 picks one).
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Listen {
    /// Parses a listen spec: anything containing a path separator is a
    /// Unix socket path, everything else a TCP address.
    #[must_use]
    pub fn parse(spec: &str) -> Listen {
        #[cfg(unix)]
        if spec.contains('/') {
            return Listen::Unix(PathBuf::from(spec));
        }
        Listen::Tcp(spec.to_string())
    }
}

impl fmt::Display for Listen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Listen::Tcp(addr) => write!(f, "{addr}"),
            #[cfg(unix)]
            Listen::Unix(path) => write!(f, "{}", path.display()),
        }
    }
}

/// A bound listener over either transport.
#[derive(Debug)]
pub(crate) enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl AnyListener {
    /// Binds, returning the listener and the resolved listen spec (TCP
    /// port 0 resolves to the actual port).
    pub(crate) fn bind(listen: &Listen) -> io::Result<(AnyListener, Listen)> {
        match listen {
            Listen::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let resolved = Listen::Tcp(l.local_addr()?.to_string());
                Ok((AnyListener::Tcp(l), resolved))
            }
            #[cfg(unix)]
            Listen::Unix(path) => {
                // A stale socket file from a dead server would fail the
                // bind; remove it (a live server keeps the file busy in
                // a way bind reports anyway).
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                Ok((AnyListener::Unix(l), listen.clone()))
            }
        }
    }

    pub(crate) fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }
}

/// A connected stream over either transport.
#[derive(Debug)]
pub(crate) enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyStream {
    pub(crate) fn connect(listen: &Listen) -> io::Result<AnyStream> {
        match listen {
            Listen::Tcp(addr) => TcpStream::connect(addr.as_str()).map(AnyStream::Tcp),
            #[cfg(unix)]
            Listen::Unix(path) => UnixStream::connect(path).map(AnyStream::Unix),
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<AnyStream> {
        match self {
            AnyStream::Tcp(s) => s.try_clone().map(AnyStream::Tcp),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.try_clone().map(AnyStream::Unix),
        }
    }

    pub(crate) fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_distinguishes_transports() {
        assert_eq!(
            Listen::parse("127.0.0.1:0"),
            Listen::Tcp("127.0.0.1:0".to_string())
        );
        assert_eq!(
            Listen::parse("localhost:7979"),
            Listen::Tcp("localhost:7979".to_string())
        );
        #[cfg(unix)]
        assert_eq!(
            Listen::parse("/tmp/rdx.sock"),
            Listen::Unix(PathBuf::from("/tmp/rdx.sock"))
        );
        assert_eq!(Listen::parse("127.0.0.1:0").to_string(), "127.0.0.1:0");
    }
}
