//! Fuzz-style properties for the server loop: arbitrary junk frames,
//! arbitrary chunk boundaries, and disconnects at arbitrary points
//! must never wedge the server or corrupt a neighboring session.
//!
//! These drive the server through raw sockets (below the [`Client`]
//! convenience layer) so they can violate the protocol on purpose.

use proptest::prelude::*;
use rdx_server::protocol::{ClientMessage, ServerMessage, PROTOCOL_VERSION};
use rdx_server::{
    Client, ErrorCode, Fnv64, Listen, Server, ServerHandle, ServerOptions, SessionOptions,
};
use rdx_trace::frame::{read_frame, write_frame};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Raw sockets in these tests always carry a read timeout: a property
/// here is precisely "the server answers or hangs up — it never
/// leaves a peer hanging", and a timeout converts a hang into a
/// failure instead of a stuck test run.
const RAW_TIMEOUT: Duration = Duration::from_secs(30);

fn start_server() -> ServerHandle {
    Server::bind(&Listen::parse("127.0.0.1:0"), ServerOptions::default()).expect("bind loopback")
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.listen().to_string()).expect("connect");
    stream
        .set_read_timeout(Some(RAW_TIMEOUT))
        .expect("set timeout");
    stream
}

fn handshake(stream: &mut TcpStream) {
    let hello = ClientMessage::Hello {
        version: PROTOCOL_VERSION,
    }
    .encode()
    .expect("encode");
    write_frame(stream, &hello).expect("write hello");
    stream.flush().expect("flush");
    let ack = read_frame(stream).expect("read").expect("ack frame");
    assert!(matches!(
        ServerMessage::decode(ack).expect("decode"),
        ServerMessage::HelloAck { .. }
    ));
}

/// One small, known-good trace: a 4-workload-access zipf-free synthetic
/// stream the profiler decodes cleanly. Used to prove the server still
/// works after abuse.
fn tiny_trace() -> Vec<u8> {
    let trace = rdx_trace::Trace::from_addresses("tiny", (0u64..512).map(|i| (i % 64) * 64));
    rdx_trace::io::to_bytes(&trace).to_vec()
}

/// The server still serves a clean end-to-end session.
fn assert_server_usable(handle: &ServerHandle) {
    let mut client = Client::connect(handle.listen()).expect("connect");
    let session = client
        .open_session("post-abuse", SessionOptions::default())
        .expect("open");
    let bytes = tiny_trace();
    client.send_chunk(session, &bytes).expect("chunk");
    let ack = client.close_session(session).expect("close");
    assert!(ack.clean, "post-abuse session must decode cleanly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary junk sent as the frames after a valid handshake:
    /// every server reply decodes as a valid message, the connection
    /// ends in a typed protocol error or a hangup (never a hang), and
    /// the listener survives to serve real clients.
    #[test]
    fn junk_frames_never_wedge_the_server(
        payload in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let handle = start_server();
        let mut stream = raw_connect(&handle);
        handshake(&mut stream);
        write_frame(&mut stream, &payload).expect("write junk");
        stream.flush().expect("flush");
        // Drain replies until the server hangs up; each one must be a
        // decodable server message. A junk payload that happens to
        // decode as a real command gets a normal reply or a typed
        // error; one that doesn't ends the connection with Protocol.
        loop {
            match read_frame(&mut stream) {
                Ok(Some(frame)) => {
                    prop_assert!(ServerMessage::decode(frame).is_ok());
                }
                Ok(None) => break,          // clean hangup
                Err(_) => break,            // reset mid-teardown: also fine
            }
        }
        assert_server_usable(&handle);
    }

    /// A client that vanishes after an arbitrary prefix of a valid
    /// conversation (handshake, open, partial chunks) leaves the
    /// server fully usable. Exercises teardown from every interesting
    /// connection state.
    #[test]
    fn disconnect_at_any_point_leaves_server_usable(
        cut in 0usize..6,
        chunk_len in 1usize..512,
    ) {
        let handle = start_server();
        let bytes = tiny_trace();
        {
            let mut stream = raw_connect(&handle);
            'conversation: {
                if cut == 0 { break 'conversation; }
                handshake(&mut stream);
                if cut == 1 { break 'conversation; }
                let open = ClientMessage::OpenSession {
                    name: "doomed".to_string(),
                    opts: SessionOptions::default(),
                }.encode().expect("encode");
                write_frame(&mut stream, &open).expect("write");
                stream.flush().expect("flush");
                if cut == 2 { break 'conversation; }
                let opened = read_frame(&mut stream).expect("read").expect("frame");
                let ServerMessage::SessionOpened { session } =
                    ServerMessage::decode(opened).expect("decode")
                else { panic!("expected SessionOpened") };
                if cut == 3 { break 'conversation; }
                // Stream part of the trace, possibly ending mid-record.
                let upto = chunk_len.min(bytes.len());
                let chunk = ClientMessage::TraceChunk {
                    session,
                    bytes: bytes::Bytes::from(bytes[..upto].to_vec()),
                }.encode().expect("encode");
                write_frame(&mut stream, &chunk).expect("write");
                stream.flush().expect("flush");
                if cut == 4 { break 'conversation; }
                // Half a frame: length prefix promising more than sent.
                stream.write_all(&[0xFF, 0x00, 0x00, 0x00]).expect("write");
                stream.flush().expect("flush");
            }
            // Drop: disconnect in whatever state `cut` selected.
        }
        assert_server_usable(&handle);
    }

    /// Chunk boundaries are irrelevant: a trace delivered in arbitrary
    /// random-sized pieces profiles bit-identically to the same trace
    /// delivered whole.
    #[test]
    fn arbitrary_chunking_is_bit_identical(
        sizes in prop::collection::vec(1usize..977, 1..40),
    ) {
        let handle = start_server();
        let bytes = tiny_trace();
        let mut client = Client::connect(handle.listen()).expect("connect");

        let whole = client.open_session("whole", SessionOptions::default()).expect("open");
        client.send_chunk(whole, &bytes).expect("chunk");
        let whole_ack = client.close_session(whole).expect("close");
        prop_assert!(whole_ack.clean);

        let pieces = client.open_session("pieces", SessionOptions::default()).expect("open");
        let mut off = 0usize;
        let mut i = 0usize;
        while off < bytes.len() {
            let take = sizes[i % sizes.len()].min(bytes.len() - off);
            client.send_chunk(pieces, &bytes[off..off + take]).expect("chunk");
            off += take;
            i += 1;
        }
        let pieces_ack = client.close_session(pieces).expect("close");
        prop_assert!(pieces_ack.clean);

        let mut a = Fnv64::new();
        whole_ack.profile.fold_into(&mut a);
        let mut b = Fnv64::new();
        pieces_ack.profile.fold_into(&mut b);
        prop_assert_eq!(a.value(), b.value());
    }

    /// Corrupting a single byte anywhere in the record stream is
    /// either detected as a malformed trace or still decodes (a varint
    /// payload byte flip can produce a different-but-valid stream) —
    /// but it never kills the connection or a sibling session.
    #[test]
    fn corrupt_byte_is_contained_to_its_session(
        pos_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let handle = start_server();
        let bytes = tiny_trace();
        // Only corrupt past the header (the profiler rejects header
        // corruption at open; record corruption is the interesting
        // incremental case).
        let header = 20 + "tiny".len();
        let pos = header + (pos_seed as usize) % (bytes.len() - header);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= flip;

        let mut client = Client::connect(handle.listen()).expect("connect");
        let sick = client.open_session("sick", SessionOptions::default()).expect("open");
        let ok = client.open_session("ok", SessionOptions::default()).expect("open");
        client.send_chunk(sick, &corrupt).expect("chunk");
        client.send_chunk(ok, &bytes).expect("chunk");
        // The sick session either flushes (harmless flip) or reports a
        // malformed trace; either way it answers.
        match client.flush(sick) {
            Ok(_) => {}
            Err(rdx_server::ClientError::Server { code, .. }) => {
                prop_assert_eq!(code, ErrorCode::MalformedTrace);
            }
            Err(other) => prop_assert!(false, "unexpected failure: {}", other),
        }
        // The sibling is untouched either way.
        let ack = client.close_session(ok).expect("close");
        prop_assert!(ack.clean);
    }
}
