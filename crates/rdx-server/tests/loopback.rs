//! Loopback integration: a real server on 127.0.0.1, real clients, and
//! the workspace's golden digest.
//!
//! The registry digest pinned by `metrics_determinism.rs`,
//! `fastpath_equivalence.rs`, and `ingest_golden.rs` must be
//! reproduced a fourth way here: through the framed network protocol,
//! with the trace bytes chopped into arbitrary chunks and interleaved
//! across concurrent sessions. Any divergence between the server-side
//! profiling path and the local one shows up as a digest mismatch.

use rdx_server::{
    Client, ClientError, ErrorCode, Fnv64, Listen, Server, ServerOptions, SessionOptions,
};
use rdx_trace::{io, Trace};
use rdx_workloads::{suite, Params};

/// Must match `GOLDEN` in the three local-path golden tests.
const GOLDEN: u64 = 0x17ea_4869_2cad_4966;

fn golden_params() -> Params {
    Params::default().with_accesses(60_000).with_elements(800)
}

fn golden_options() -> SessionOptions {
    SessionOptions {
        period: 512,
        seed: 7,
        ..SessionOptions::default()
    }
}

/// RDXT bytes for every suite workload, in suite order.
fn suite_rdxt() -> Vec<(&'static str, Vec<u8>)> {
    let params = golden_params();
    suite()
        .iter()
        .map(|w| {
            let trace = Trace::from_stream(w.name, w.stream(&params));
            (w.name, io::to_bytes(&trace).to_vec())
        })
        .collect()
}

fn start_server(opts: ServerOptions) -> rdx_server::ServerHandle {
    Server::bind(&Listen::parse("127.0.0.1:0"), opts).expect("bind loopback")
}

#[test]
fn interleaved_sessions_reproduce_golden_digest() {
    let handle = start_server(ServerOptions::default());
    let mut client = Client::connect(handle.listen()).expect("connect");
    let traces = suite_rdxt();

    // Open one session per workload up front, then interleave odd-sized
    // chunks across all of them round-robin, so the server must keep
    // every partial stream (including split headers and split varints)
    // straight concurrently.
    let sessions: Vec<u32> = traces
        .iter()
        .map(|(name, _)| client.open_session(name, golden_options()).expect("open"))
        .collect();
    const CHUNK: usize = 10_007; // odd size: chunks split records mid-byte
    let mut offsets = vec![0usize; traces.len()];
    loop {
        let mut sent_any = false;
        for (i, (_, bytes)) in traces.iter().enumerate() {
            if offsets[i] >= bytes.len() {
                continue;
            }
            let end = (offsets[i] + CHUNK).min(bytes.len());
            client
                .send_chunk(sessions[i], &bytes[offsets[i]..end])
                .expect("chunk");
            offsets[i] = end;
            sent_any = true;
        }
        if !sent_any {
            break;
        }
    }

    // Flush acks must account for every byte.
    for (i, (_, bytes)) in traces.iter().enumerate() {
        let ack = client.flush(sessions[i]).expect("flush");
        assert_eq!(ack.received_bytes, bytes.len() as u64);
    }

    // Close in suite order, folding final profiles into the digest.
    let mut digest = Fnv64::new();
    for (i, (name, _)) in traces.iter().enumerate() {
        let ack = client.close_session(sessions[i]).expect("close");
        assert!(ack.clean, "{name}: expected a clean decode");
        ack.profile.fold_into(&mut digest);
    }
    assert_eq!(
        digest.value(),
        GOLDEN,
        "server-side registry digest {:#018x} deviates from the local \
         golden baseline — the framed path must be bit-identical",
        digest.value()
    );
}

#[test]
fn concurrent_connections_each_reproduce_golden_digest() {
    let handle = start_server(ServerOptions::default());
    let listen = handle.listen().clone();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let listen = listen.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&listen).expect("connect");
                let mut digest = Fnv64::new();
                for (name, bytes) in suite_rdxt() {
                    let session = client.open_session(name, golden_options()).expect("open");
                    for chunk in bytes.chunks(64 << 10) {
                        client.send_chunk(session, chunk).expect("chunk");
                    }
                    let ack = client.close_session(session).expect("close");
                    assert!(ack.clean, "{name}: expected a clean decode");
                    ack.profile.fold_into(&mut digest);
                }
                digest.value()
            })
        })
        .collect();
    for w in workers {
        assert_eq!(w.join().expect("worker"), GOLDEN);
    }
}

#[test]
fn live_snapshots_converge_to_the_final_profile() {
    let handle = start_server(ServerOptions::default());
    let mut client = Client::connect(handle.listen()).expect("connect");
    let (name, bytes) = suite_rdxt().into_iter().next().expect("suite nonempty");
    let session = client.open_session(name, golden_options()).expect("open");

    // Before any bytes: a snapshot is NotReady, not a crash.
    let err = client
        .snapshot_histogram(session)
        .expect_err("no header yet");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::NotReady,
            ..
        }
    ));

    let mid = bytes.len() / 2;
    client.send_chunk(session, &bytes[..mid]).expect("chunk");
    let partial = client.snapshot_histogram(session).expect("mid snapshot");
    client.send_chunk(session, &bytes[mid..]).expect("chunk");
    let full = client.snapshot_histogram(session).expect("full snapshot");
    assert!(partial.accesses < full.accesses);

    let metrics = client.snapshot_metrics(session).expect("metrics");
    assert_eq!(metrics.received_bytes, bytes.len() as u64);
    assert!(metrics.registry_json.starts_with('{'));

    let ack = client.close_session(session).expect("close");
    assert!(ack.clean);
    assert_eq!(ack.profile, full);
}

#[test]
fn fleet_aggregate_equals_client_side_fold_of_snapshots() {
    use rdx_server::ProfileSnapshot;

    let handle = start_server(ServerOptions::default());
    let mut client = Client::connect(handle.listen()).expect("connect");
    let traces = suite_rdxt();

    let sessions: Vec<u32> = traces
        .iter()
        .map(|(name, _)| client.open_session(name, golden_options()).expect("open"))
        .collect();
    for (i, (_, bytes)) in traces.iter().enumerate() {
        for chunk in bytes.chunks(48 << 10) {
            client.send_chunk(sessions[i], chunk).expect("chunk");
        }
    }

    // The contract: the server's bounded-memory fold equals a client
    // folding per-session snapshots in request order — bit for bit.
    let mut expected = ProfileSnapshot::default();
    for &s in &sessions {
        expected.merge(&client.snapshot_histogram(s).expect("snapshot"));
    }
    let reply = client.snapshot_aggregate(&sessions).expect("aggregate");
    assert_eq!(reply.sessions, sessions.len() as u32);
    assert_eq!(reply.profile, expected);

    // Counters are additive across the fleet.
    assert_eq!(
        reply.profile.accesses,
        traces.len() as u64 * golden_params().accesses
    );

    // A permuted request folds in *its* order: exact counters agree,
    // while KM-corrected fractional weights may differ in final ULPs
    // (float addition is not order-independent) — which is exactly why
    // the reply contract pins the fold to request order.
    let mut reversed: Vec<u32> = sessions.clone();
    reversed.reverse();
    let back = client.snapshot_aggregate(&reversed).expect("aggregate");
    assert_eq!(back.sessions, reply.sessions);
    assert_eq!(back.profile.accesses, reply.profile.accesses);
    assert_eq!(back.profile.samples, reply.profile.samples);
    assert_eq!(back.profile.traps, reply.profile.traps);

    // Error scoping: unknown and absent sessions abort the aggregate
    // with a typed error, and the connection stays usable.
    let err = client
        .snapshot_aggregate(&[sessions[0], 999])
        .expect_err("unknown session must abort the aggregate");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::UnknownSession,
            session: 999,
            ..
        }
    ));
    let err = client
        .snapshot_aggregate(&[])
        .expect_err("empty aggregate is a protocol error");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::Protocol,
            ..
        }
    ));

    // A session with no trace header yet is NotReady, named by id.
    let fresh = client
        .open_session("fresh", golden_options())
        .expect("open");
    let err = client
        .snapshot_aggregate(&[sessions[0], fresh])
        .expect_err("headerless session must abort the aggregate");
    match err {
        ClientError::Server { code, session, .. } => {
            assert_eq!(code, ErrorCode::NotReady);
            assert_eq!(session, fresh);
        }
        other => panic!("expected a typed server error, got {other}"),
    }

    // Still healthy: sessions close cleanly after all that.
    for &s in &sessions {
        assert!(client.close_session(s).expect("close").clean);
    }
}

#[test]
fn malformed_stream_fails_its_session_but_not_its_neighbors() {
    let handle = start_server(ServerOptions::default());
    let mut client = Client::connect(handle.listen()).expect("connect");
    let (name, bytes) = suite_rdxt().into_iter().next().expect("suite nonempty");

    let good = client.open_session(name, golden_options()).expect("open");
    let bad = client
        .open_session("corrupt", golden_options())
        .expect("open");

    // The bad session gets a valid prefix, then an overlong varint (19
    // continuation bytes can't fit in a u128) — exactly the corruption
    // class the decoder hardening rejects.
    let split = bytes.len() / 3;
    client.send_chunk(bad, &bytes[..split]).expect("chunk");
    client.send_chunk(bad, &[0xFF; 19]).expect("corrupt chunk");
    let err = client
        .flush(bad)
        .expect_err("flush must surface corruption");
    assert!(
        matches!(
            err,
            ClientError::Server {
                code: ErrorCode::MalformedTrace,
                ..
            }
        ),
        "{err}"
    );

    // The sibling session on the same connection is untouched.
    for chunk in bytes.chunks(32 << 10) {
        client.send_chunk(good, chunk).expect("chunk");
    }
    let ack = client.close_session(good).expect("close");
    assert!(ack.clean, "sibling session must decode cleanly");

    // The failed session still closes, reporting unclean.
    let ack = client.close_session(bad).expect("close");
    assert!(!ack.clean);
}

#[test]
fn typed_errors_keep_the_connection_usable() {
    let handle = start_server(ServerOptions::default());
    let mut client = Client::connect(handle.listen()).expect("connect");

    // Unknown session id.
    let err = client.flush(42).expect_err("no such session");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::UnknownSession,
            ..
        }
    ));

    // Invalid options, rejected by the shared limits checks.
    let err = client
        .open_session(
            "zero-period",
            SessionOptions {
                period: 0,
                ..SessionOptions::default()
            },
        )
        .expect_err("period 0 must be rejected");
    match &err {
        ClientError::Server {
            code: ErrorCode::InvalidOptions,
            message,
            ..
        } => assert!(message.contains("period"), "{message}"),
        other => panic!("expected InvalidOptions, got {other}"),
    }

    let err = client
        .open_session(
            "too-many-registers",
            SessionOptions {
                registers: 7,
                ..SessionOptions::default()
            },
        )
        .expect_err("7 registers must be rejected");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::InvalidOptions,
            ..
        }
    ));

    // After all that, the connection still opens and serves sessions.
    let (name, bytes) = suite_rdxt().into_iter().next().expect("suite nonempty");
    let session = client.open_session(name, golden_options()).expect("open");
    client.send_chunk(session, &bytes).expect("chunk");
    let ack = client.close_session(session).expect("close");
    assert!(ack.clean);
}

#[test]
fn session_byte_budget_is_enforced() {
    let handle = start_server(ServerOptions::default().with_max_session_bytes(1 << 10));
    let mut client = Client::connect(handle.listen()).expect("connect");
    let (name, bytes) = suite_rdxt().into_iter().next().expect("suite nonempty");
    let session = client.open_session(name, golden_options()).expect("open");
    client.send_chunk(session, &bytes).expect("chunk");
    let err = client.flush(session).expect_err("budget exceeded");
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::Overflow,
            ..
        }
    ));
}

#[test]
fn disconnecting_mid_stream_leaves_the_server_usable() {
    let handle = start_server(ServerOptions::default());
    let (name, bytes) = suite_rdxt().into_iter().next().expect("suite nonempty");

    // First client opens sessions, streams half a trace, and vanishes
    // without closing anything.
    {
        let mut doomed = Client::connect(handle.listen()).expect("connect");
        let session = doomed.open_session(name, golden_options()).expect("open");
        doomed
            .send_chunk(session, &bytes[..bytes.len() / 2])
            .expect("chunk");
        // Drop: socket closes with a session open and bytes in flight.
    }

    // The server must still serve a full, clean session afterwards.
    let mut client = Client::connect(handle.listen()).expect("connect");
    let session = client.open_session(name, golden_options()).expect("open");
    client.send_chunk(session, &bytes).expect("chunk");
    let ack = client.close_session(session).expect("close");
    assert!(ack.clean);
}

#[test]
fn version_mismatch_is_refused_with_a_typed_error() {
    use rdx_server::protocol::{ClientMessage, ServerMessage};
    use rdx_trace::frame::{read_frame, write_frame};
    use std::io::Write;
    use std::net::TcpStream;

    let handle = start_server(ServerOptions::default());
    let addr = handle.listen().to_string();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let hello = ClientMessage::Hello { version: 999 }
        .encode()
        .expect("encode");
    write_frame(&mut stream, &hello).expect("write");
    stream.flush().expect("flush");
    let reply = read_frame(&mut stream)
        .expect("read")
        .expect("a reply frame");
    let msg = ServerMessage::decode(reply).expect("decode");
    assert!(
        matches!(
            msg,
            ServerMessage::Error {
                code: ErrorCode::Version,
                ..
            }
        ),
        "{msg:?}"
    );
    // The server hangs up after refusing; the next read is clean EOF.
    assert!(read_frame(&mut stream).expect("read").is_none());
}

#[test]
fn junk_first_frame_gets_a_protocol_error() {
    use rdx_server::protocol::ServerMessage;
    use rdx_trace::frame::{read_frame, write_frame};
    use std::io::Write;
    use std::net::TcpStream;

    let handle = start_server(ServerOptions::default());
    let addr = handle.listen().to_string();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut stream, &[0xDE, 0xAD, 0xBE, 0xEF]).expect("write");
    stream.flush().expect("flush");
    // The payload doesn't decode as any message: the server reports a
    // protocol error (or just hangs up, which is also a valid refusal
    // for a pre-handshake probe).
    if let Some(reply) = read_frame(&mut stream).expect("read") {
        let msg = ServerMessage::decode(reply).expect("decode");
        assert!(matches!(
            msg,
            ServerMessage::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
    }

    // And the listener is still healthy.
    let mut client = Client::connect(handle.listen()).expect("connect");
    let session = client
        .open_session("after-junk", golden_options())
        .expect("open");
    let ack = client.close_session(session).expect("close");
    assert!(!ack.clean); // no bytes: not clean, but fully functional
}

#[test]
fn max_connections_budget_exits_naturally() {
    let mut handle = start_server(ServerOptions::default().with_max_connections(2));
    let (name, bytes) = suite_rdxt().into_iter().next().expect("suite nonempty");
    for _ in 0..2 {
        let mut client = Client::connect(handle.listen()).expect("connect");
        let session = client.open_session(name, golden_options()).expect("open");
        client.send_chunk(session, &bytes).expect("chunk");
        let ack = client.close_session(session).expect("close");
        assert!(ack.clean);
    }
    // Both budgeted connections served and closed: the accept loop
    // exits on its own and wait() returns.
    handle.wait();
}
