//! `rdx` — profile a workload's reuse distances from the command line.
//!
//! ```text
//! rdx list
//! rdx profile <workload> [--accesses N] [--elements N] [--period N]
//!             [--seed N] [--registers N] [--jobs N] [--exact] [--mrc] [--csv]
//! rdx suite [--accesses N] [--elements N] [--period N] [--seed N]
//!           [--jobs N] [--csv]
//! ```
//!
//! `--jobs N` parallelizes: `suite` fans workloads over `N` profiler
//! threads (deterministic, same output as `--jobs 1`), and `profile
//! --exact` measures ground truth with `N` shards.

use rdx_core::{profile_batch, BatchTask, RdxConfig, RdxProfile, RdxRunner};
use rdx_groundtruth::{ExactProfile, ShardedExact};
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, Histogram};
use rdx_trace::Granularity;
use rdx_workloads::{by_name, suite, Params};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rdx list\n  rdx profile <workload> [--accesses N] [--elements N] \
         [--period N]\n              [--seed N] [--registers N] [--jobs N] [--exact] \
         [--mrc] [--csv]\n  rdx suite [--accesses N] [--elements N] [--period N] \
         [--seed N] [--jobs N] [--csv]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:16} {:32} description", "name", "spec analog");
            for w in suite() {
                println!("{:16} {:32} {}", w.name, w.spec_analog, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("profile") => profile(&args[1..]),
        Some("suite") => suite_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Parsed command-line options, filled by a single left-to-right scan.
#[derive(Debug, Default, PartialEq, Eq)]
struct Opts {
    accesses: Option<u64>,
    elements: Option<u64>,
    seed: Option<u64>,
    period: Option<u64>,
    registers: Option<u64>,
    jobs: Option<u64>,
    exact: bool,
    mrc: bool,
    csv: bool,
}

impl Opts {
    /// Parses `args` strictly left to right. Flags not in `allowed` are
    /// rejected, as is any flag given twice; every value flag consumes
    /// exactly the argument that follows it.
    fn parse(args: &[String], allowed: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let flag = arg.as_str();
            if !allowed.contains(&flag) {
                return Err(format!("unknown flag '{flag}'"));
            }
            match flag {
                "--exact" | "--mrc" | "--csv" => {
                    let slot = match flag {
                        "--exact" => &mut opts.exact,
                        "--mrc" => &mut opts.mrc,
                        _ => &mut opts.csv,
                    };
                    if *slot {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    *slot = true;
                }
                _ => {
                    let slot = match flag {
                        "--accesses" => &mut opts.accesses,
                        "--elements" => &mut opts.elements,
                        "--seed" => &mut opts.seed,
                        "--period" => &mut opts.period,
                        "--registers" => &mut opts.registers,
                        "--jobs" => &mut opts.jobs,
                        _ => unreachable!("allowed flags are handled above"),
                    };
                    if slot.is_some() {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .parse::<u64>()
                        .map_err(|e| format!("{flag}: {e}"))?;
                    *slot = Some(value);
                }
            }
        }
        Ok(opts)
    }

    fn params(&self) -> Params {
        let mut p = Params::default().with_accesses(4_000_000);
        if let Some(v) = self.accesses {
            p = p.with_accesses(v);
        }
        if let Some(v) = self.elements {
            p = p.with_elements(v);
        }
        if let Some(v) = self.seed {
            p = p.with_seed(v);
        }
        p
    }

    fn config(&self) -> RdxConfig {
        let mut c = RdxConfig::default().with_period(self.period.unwrap_or(2048));
        if let Some(v) = self.seed {
            c = c.with_seed(v);
        }
        if let Some(v) = self.registers {
            c = c.with_registers(v as usize);
        }
        c
    }

    fn jobs(&self) -> usize {
        match self.jobs {
            Some(v) => usize::try_from(v.max(1)).unwrap_or(1),
            None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

const PROFILE_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--registers",
    "--jobs",
    "--exact",
    "--mrc",
    "--csv",
];

const SUITE_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--jobs",
    "--csv",
];

fn profile(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}'; try `rdx list`");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..], PROFILE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = opts.params();
    let config = opts.config();
    let csv = opts.csv;

    let profile = RdxRunner::new(config).profile(workload.stream(&params));
    if !csv {
        println!(
            "workload        : {} ({})",
            workload.name, workload.spec_analog
        );
        println!("accesses        : {}", profile.accesses);
        println!("samples/traps   : {} / {}", profile.samples, profile.traps);
        println!("est. blocks     : {:.0}", profile.m_estimate);
        println!("time overhead   : {:.2}%", profile.time_overhead * 100.0);
        println!(
            "memory overhead : {:.2}% (of {} B footprint)",
            profile.memory_overhead(params.footprint_bytes()) * 100.0,
            params.footprint_bytes()
        );
        println!(
            "instrumentation : {:.0}x slowdown (for contrast)",
            profile.instrumentation_slowdown()
        );
        println!("\nreuse-distance histogram (weights normalized):");
    }
    print_histogram(profile.rd.as_histogram(), csv);

    if opts.mrc {
        let mrc = profile.miss_ratio_curve();
        println!("\nmiss-ratio curve (capacity in blocks):");
        for cap in [1u64 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18, 1 << 21] {
            println!("  {:>10} {:.4}", cap, mrc.miss_ratio(cap));
        }
    }

    if opts.exact {
        let jobs = opts.jobs();
        let exact = if jobs > 1 {
            ShardedExact::new(jobs).measure(
                workload.stream(&params),
                Granularity::WORD,
                Binning::log2(),
            )
        } else {
            ExactProfile::measure(workload.stream(&params), Granularity::WORD, Binning::log2())
        };
        let acc = histogram_intersection(profile.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        println!("\nexact (ground-truth) histogram:");
        print_histogram(exact.rd.as_histogram(), csv);
        println!("\naccuracy vs ground truth: {:.1}%", acc * 100.0);
    }
    ExitCode::SUCCESS
}

/// Profiles every registry workload in parallel and prints one summary
/// row per workload (identical output for any `--jobs` value).
fn suite_cmd(args: &[String]) -> ExitCode {
    let opts = match Opts::parse(args, SUITE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = opts.params();
    let config = opts.config();
    let jobs = opts.jobs();

    let tasks: Vec<_> = suite()
        .iter()
        .map(|w| BatchTask {
            config,
            make_stream: move || w.stream(&params),
        })
        .collect();
    let profiles = profile_batch(tasks, jobs);

    if opts.csv {
        println!("workload,accesses,samples,traps,est_blocks,time_overhead,mean_rd");
    } else {
        println!(
            "suite: {} workloads, {} accesses each, period {}, {} jobs\n",
            suite().len(),
            params.accesses,
            config.machine.sampling.period,
            jobs
        );
        println!(
            "{:16} {:>10} {:>8} {:>8} {:>11} {:>9} {:>10}",
            "workload", "accesses", "samples", "traps", "est. blocks", "overhead", "mean rd"
        );
    }
    for (w, p) in suite().iter().zip(&profiles) {
        let mean_rd = p.rd.as_histogram().finite_mean().unwrap_or(f64::NAN);
        if opts.csv {
            println!(
                "{},{},{},{},{:.0},{:.6},{:.1}",
                w.name, p.accesses, p.samples, p.traps, p.m_estimate, p.time_overhead, mean_rd
            );
        } else {
            println!(
                "{:16} {:>10} {:>8} {:>8} {:>11.0} {:>8.2}% {:>10.1}",
                w.name,
                p.accesses,
                p.samples,
                p.traps,
                p.m_estimate,
                p.time_overhead * 100.0,
                mean_rd
            );
        }
    }
    if !opts.csv {
        let total: u64 = profiles.iter().map(|p: &RdxProfile| p.accesses).sum();
        println!("\ntotal accesses profiled: {total}");
    }
    ExitCode::SUCCESS
}

fn print_histogram(h: &Histogram, csv: bool) {
    let n = h.normalized();
    let sep = if csv { "," } else { "  " };
    for b in n.buckets() {
        let bar_len = (b.weight * 50.0).round() as usize;
        if csv {
            println!("{}{sep}{}{sep}{:.6}", b.range.lo, b.range.hi, b.weight);
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                b.range.lo,
                b.range.hi,
                b.weight * 100.0,
                "#".repeat(bar_len)
            );
        }
    }
    if n.infinite_weight() > 0.0 {
        if csv {
            println!("inf{sep}inf{sep}{:.6}", n.infinite_weight());
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                "cold",
                "",
                n.infinite_weight() * 100.0,
                "#".repeat((n.infinite_weight() * 50.0).round() as usize)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn parses_left_to_right() {
        let opts = Opts::parse(
            &to_args(&["--accesses", "1000", "--exact", "--jobs", "4"]),
            PROFILE_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.accesses, Some(1000));
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.exact);
        assert!(!opts.csv);
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = Opts::parse(&to_args(&["--bogus", "3"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn rejects_duplicate_value_flag() {
        let err = Opts::parse(
            &to_args(&["--period", "512", "--period", "1024"]),
            PROFILE_FLAGS,
        )
        .unwrap_err();
        assert!(err.contains("duplicate flag '--period'"), "{err}");
    }

    #[test]
    fn rejects_duplicate_boolean_flag() {
        let err = Opts::parse(&to_args(&["--csv", "--csv"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag '--csv'"), "{err}");
    }

    #[test]
    fn rejects_missing_value() {
        let err = Opts::parse(&to_args(&["--accesses"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn rejects_flag_as_value() {
        // A flag immediately following a value flag is consumed as its
        // value and fails to parse — it is never silently skipped.
        let err = Opts::parse(&to_args(&["--accesses", "--csv"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("--accesses"), "{err}");
    }

    #[test]
    fn suite_flags_exclude_registers() {
        let err = Opts::parse(&to_args(&["--registers", "2"]), SUITE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }
}
