//! `rdx` — profile a workload's reuse distances from the command line.
//!
//! ```text
//! rdx list
//! rdx profile <workload> [--accesses N] [--elements N] [--period N]
//!             [--seed N] [--registers N] [--exact] [--mrc] [--csv]
//! ```

use rdx_core::{RdxConfig, RdxRunner};
use rdx_groundtruth::ExactProfile;
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, Histogram};
use rdx_trace::Granularity;
use rdx_workloads::{by_name, suite, Params};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rdx list\n  rdx profile <workload> [--accesses N] [--elements N] \
         [--period N]\n              [--seed N] [--registers N] [--exact] [--mrc] [--csv]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:16} {:32} description", "name", "spec analog");
            for w in suite() {
                println!("{:16} {:32} {}", w.name, w.spec_analog, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("profile") => profile(&args[1..]),
        _ => usage(),
    }
}

fn parse_flag(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("{flag}: {e}")),
    }
}

fn profile(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}'; try `rdx list`");
        return ExitCode::FAILURE;
    };
    let mut params = Params::default().with_accesses(4_000_000);
    let mut config = RdxConfig::default().with_period(2048);
    match (|| -> Result<(), String> {
        if let Some(v) = parse_flag(args, "--accesses")? {
            params = params.with_accesses(v);
        }
        if let Some(v) = parse_flag(args, "--elements")? {
            params = params.with_elements(v);
        }
        if let Some(v) = parse_flag(args, "--seed")? {
            params = params.with_seed(v);
            config = config.with_seed(v);
        }
        if let Some(v) = parse_flag(args, "--period")? {
            config = config.with_period(v);
        }
        if let Some(v) = parse_flag(args, "--registers")? {
            config = config.with_registers(v as usize);
        }
        Ok(())
    })() {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let csv = args.iter().any(|a| a == "--csv");
    let want_exact = args.iter().any(|a| a == "--exact");
    let want_mrc = args.iter().any(|a| a == "--mrc");

    let profile = RdxRunner::new(config).profile(workload.stream(&params));
    if !csv {
        println!("workload        : {} ({})", workload.name, workload.spec_analog);
        println!("accesses        : {}", profile.accesses);
        println!("samples/traps   : {} / {}", profile.samples, profile.traps);
        println!("est. blocks     : {:.0}", profile.m_estimate);
        println!("time overhead   : {:.2}%", profile.time_overhead * 100.0);
        println!(
            "memory overhead : {:.2}% (of {} B footprint)",
            profile.memory_overhead(params.footprint_bytes()) * 100.0,
            params.footprint_bytes()
        );
        println!(
            "instrumentation : {:.0}x slowdown (for contrast)",
            profile.instrumentation_slowdown()
        );
        println!("\nreuse-distance histogram (weights normalized):");
    }
    print_histogram(profile.rd.as_histogram(), csv);

    if want_mrc {
        let mrc = profile.miss_ratio_curve();
        println!("\nmiss-ratio curve (capacity in blocks):");
        for cap in [1u64 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18, 1 << 21] {
            println!("  {:>10} {:.4}", cap, mrc.miss_ratio(cap));
        }
    }

    if want_exact {
        let exact = ExactProfile::measure(
            workload.stream(&params),
            Granularity::WORD,
            Binning::log2(),
        );
        let acc = histogram_intersection(profile.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        println!("\nexact (ground-truth) histogram:");
        print_histogram(exact.rd.as_histogram(), csv);
        println!("\naccuracy vs ground truth: {:.1}%", acc * 100.0);
    }
    ExitCode::SUCCESS
}

fn print_histogram(h: &Histogram, csv: bool) {
    let n = h.normalized();
    let sep = if csv { "," } else { "  " };
    for b in n.buckets() {
        let bar_len = (b.weight * 50.0).round() as usize;
        if csv {
            println!("{}{sep}{}{sep}{:.6}", b.range.lo, b.range.hi, b.weight);
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                b.range.lo,
                b.range.hi,
                b.weight * 100.0,
                "#".repeat(bar_len)
            );
        }
    }
    if n.infinite_weight() > 0.0 {
        if csv {
            println!("inf{sep}inf{sep}{:.6}", n.infinite_weight());
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                "cold",
                "",
                n.infinite_weight() * 100.0,
                "#".repeat((n.infinite_weight() * 50.0).round() as usize)
            );
        }
    }
}
