//! `rdx` — profile a workload's reuse distances from the command line.
//!
//! ```text
//! rdx list
//! rdx profile <workload> [--accesses N] [--elements N] [--period N]
//!             [--seed N] [--registers N] [--jobs N] [--exact] [--mrc]
//!             [--csv] [--metrics]
//! rdx suite [--accesses N] [--elements N] [--period N] [--seed N]
//!           [--jobs N] [--csv] [--metrics]
//! rdx trace <file>
//! ```
//!
//! `--jobs N` parallelizes: `suite` fans workloads over `N` profiler
//! threads (deterministic, same output as `--jobs 1`), and `profile
//! --exact` measures ground truth with `N` shards.
//!
//! `--metrics` appends a JSON observability report (from `rdx-metrics`)
//! that crosschecks the registry counters against the profile fields;
//! a mismatch is a failure. `rdx trace <file>` validates a serialized
//! trace, reporting decode errors instead of crashing on corrupt input.

#![forbid(unsafe_code)]

use rdx_core::{profile_batch, BatchTask, RdxConfig, RdxProfile, RdxRunner};
use rdx_groundtruth::{ExactProfile, ShardedExact};
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, Histogram};
use rdx_trace::{AccessKind, Granularity, TraceReader};
use rdx_workloads::{by_name, suite, Params};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rdx list\n  rdx profile <workload> [--accesses N] [--elements N] \
         [--period N]\n              [--seed N] [--registers N] [--jobs N] [--exact] \
         [--mrc] [--csv] [--metrics]\n  rdx suite [--accesses N] [--elements N] \
         [--period N] [--seed N] [--jobs N] [--csv]\n            [--metrics]\n  \
         rdx trace <file>"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:16} {:32} description", "name", "spec analog");
            for w in suite() {
                println!("{:16} {:32} {}", w.name, w.spec_analog, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("profile") => profile(&args[1..]),
        Some("suite") => suite_cmd(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Parsed command-line options, filled by a single left-to-right scan.
#[derive(Debug, Default, PartialEq, Eq)]
struct Opts {
    accesses: Option<u64>,
    elements: Option<u64>,
    seed: Option<u64>,
    period: Option<u64>,
    registers: Option<u64>,
    jobs: Option<u64>,
    exact: bool,
    mrc: bool,
    csv: bool,
    metrics: bool,
}

impl Opts {
    /// Parses `args` strictly left to right. Flags not in `allowed` are
    /// rejected, as is any flag given twice; every value flag consumes
    /// exactly the argument that follows it.
    fn parse(args: &[String], allowed: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let flag = arg.as_str();
            if !allowed.contains(&flag) {
                return Err(format!("unknown flag '{flag}'"));
            }
            match flag {
                "--exact" | "--mrc" | "--csv" | "--metrics" => {
                    let slot = match flag {
                        "--exact" => &mut opts.exact,
                        "--mrc" => &mut opts.mrc,
                        "--metrics" => &mut opts.metrics,
                        _ => &mut opts.csv,
                    };
                    if *slot {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    *slot = true;
                }
                _ => {
                    let slot = match flag {
                        "--accesses" => &mut opts.accesses,
                        "--elements" => &mut opts.elements,
                        "--seed" => &mut opts.seed,
                        "--period" => &mut opts.period,
                        "--registers" => &mut opts.registers,
                        "--jobs" => &mut opts.jobs,
                        _ => unreachable!("allowed flags are handled above"),
                    };
                    if slot.is_some() {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .parse::<u64>()
                        .map_err(|e| format!("{flag}: {e}"))?;
                    *slot = Some(value);
                }
            }
        }
        Ok(opts)
    }

    fn params(&self) -> Params {
        let mut p = Params::default().with_accesses(4_000_000);
        if let Some(v) = self.accesses {
            p = p.with_accesses(v);
        }
        if let Some(v) = self.elements {
            p = p.with_elements(v);
        }
        if let Some(v) = self.seed {
            p = p.with_seed(v);
        }
        p
    }

    fn config(&self) -> RdxConfig {
        let mut c = RdxConfig::default().with_period(self.period.unwrap_or(2048));
        if let Some(v) = self.seed {
            c = c.with_seed(v);
        }
        if let Some(v) = self.registers {
            c = c.with_registers(v as usize);
        }
        c
    }

    fn jobs(&self) -> usize {
        match self.jobs {
            Some(v) => usize::try_from(v.max(1)).unwrap_or(1),
            None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

const PROFILE_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--registers",
    "--jobs",
    "--exact",
    "--mrc",
    "--csv",
    "--metrics",
];

const SUITE_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--jobs",
    "--csv",
    "--metrics",
];

fn profile(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let Some(workload) = by_name(name) else {
        eprintln!("unknown workload '{name}'; try `rdx list`");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..], PROFILE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = opts.params();
    let config = opts.config();
    let csv = opts.csv;

    if opts.metrics {
        rdx_metrics::reset();
    }
    let profile = RdxRunner::new(config).profile(workload.stream(&params));
    if !csv {
        println!(
            "workload        : {} ({})",
            workload.name, workload.spec_analog
        );
        println!("accesses        : {}", profile.accesses);
        println!("samples/traps   : {} / {}", profile.samples, profile.traps);
        println!("est. blocks     : {:.0}", profile.m_estimate);
        println!("time overhead   : {:.2}%", profile.time_overhead * 100.0);
        println!(
            "memory overhead : {:.2}% (of {} B footprint)",
            profile.memory_overhead(params.footprint_bytes()) * 100.0,
            params.footprint_bytes()
        );
        println!(
            "instrumentation : {:.0}x slowdown (for contrast)",
            profile.instrumentation_slowdown()
        );
        println!("\nreuse-distance histogram (weights normalized):");
    }
    print_histogram(profile.rd.as_histogram(), csv);

    if opts.mrc {
        let mrc = profile.miss_ratio_curve();
        println!("\nmiss-ratio curve (capacity in blocks):");
        for cap in [1u64 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18, 1 << 21] {
            println!("  {:>10} {:.4}", cap, mrc.miss_ratio(cap));
        }
    }

    if opts.exact {
        let jobs = opts.jobs();
        let exact = if jobs > 1 {
            ShardedExact::new(jobs).measure(
                workload.stream(&params),
                Granularity::WORD,
                Binning::log2(),
            )
        } else {
            ExactProfile::measure(workload.stream(&params), Granularity::WORD, Binning::log2())
        };
        let acc = histogram_intersection(profile.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        println!("\nexact (ground-truth) histogram:");
        print_histogram(exact.rd.as_histogram(), csv);
        println!("\naccuracy vs ground truth: {:.1}%", acc * 100.0);
    }
    if opts.metrics {
        return emit_metrics_report(&[(workload.name.to_string(), profile)]);
    }
    ExitCode::SUCCESS
}

/// Profiles every registry workload in parallel and prints one summary
/// row per workload (identical output for any `--jobs` value).
fn suite_cmd(args: &[String]) -> ExitCode {
    let opts = match Opts::parse(args, SUITE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let params = opts.params();
    let config = opts.config();
    let jobs = opts.jobs();

    if opts.metrics {
        rdx_metrics::reset();
    }
    let tasks: Vec<_> = suite()
        .iter()
        .map(|w| BatchTask {
            config,
            make_stream: move || w.stream(&params),
        })
        .collect();
    let profiles = profile_batch(tasks, jobs);

    if opts.csv {
        println!("workload,accesses,samples,traps,est_blocks,time_overhead,mean_rd");
    } else {
        println!(
            "suite: {} workloads, {} accesses each, period {}, {} jobs\n",
            suite().len(),
            params.accesses,
            config.machine.sampling.period,
            jobs
        );
        println!(
            "{:16} {:>10} {:>8} {:>8} {:>11} {:>9} {:>10}",
            "workload", "accesses", "samples", "traps", "est. blocks", "overhead", "mean rd"
        );
    }
    for (w, p) in suite().iter().zip(&profiles) {
        let mean_rd = p.rd.as_histogram().finite_mean().unwrap_or(f64::NAN);
        if opts.csv {
            println!(
                "{},{},{},{},{:.0},{:.6},{:.1}",
                w.name, p.accesses, p.samples, p.traps, p.m_estimate, p.time_overhead, mean_rd
            );
        } else {
            println!(
                "{:16} {:>10} {:>8} {:>8} {:>11.0} {:>8.2}% {:>10.1}",
                w.name,
                p.accesses,
                p.samples,
                p.traps,
                p.m_estimate,
                p.time_overhead * 100.0,
                mean_rd
            );
        }
    }
    if !opts.csv {
        let total: u64 = profiles.iter().map(|p: &RdxProfile| p.accesses).sum();
        println!("\ntotal accesses profiled: {total}");
    }
    if opts.metrics {
        let rows: Vec<(String, RdxProfile)> = suite()
            .iter()
            .map(|w| w.name.to_string())
            .zip(profiles)
            .collect();
        return emit_metrics_report(&rows);
    }
    ExitCode::SUCCESS
}

/// Counter names whose registry totals must equal the summed profile
/// fields — the observability layer is only trustworthy if it agrees
/// exactly with the numbers the profiler itself reports.
fn crosscheck_rows(rows: &[(String, RdxProfile)]) -> [(&'static str, u64); 6] {
    let sum = |f: fn(&RdxProfile) -> u64| rows.iter().map(|(_, p)| f(p)).sum();
    [
        ("rdx.profiler.samples", sum(|p| p.samples)),
        ("rdx.profiler.traps", sum(|p| p.traps)),
        ("rdx.profiler.evictions", sum(|p| p.evictions)),
        ("rdx.profiler.end_censored", sum(|p| p.end_censored)),
        ("rdx.profiler.dropped_samples", sum(|p| p.dropped_samples)),
        (
            "rdx.profiler.duplicate_samples",
            sum(|p| p.duplicate_samples),
        ),
    ]
}

/// Prints the `--metrics` JSON report: per-workload profile counters,
/// the counter crosscheck, and the full registry snapshot. Returns
/// FAILURE when a crosscheck row disagrees (collection bug), SUCCESS
/// otherwise. With metrics compiled out the report says so and the
/// crosscheck is skipped.
fn emit_metrics_report(rows: &[(String, RdxProfile)]) -> ExitCode {
    use std::fmt::Write as _;
    let snap = rdx_metrics::snapshot();
    let checks = crosscheck_rows(rows);
    let matched = !rdx_metrics::enabled()
        || checks
            .iter()
            .all(|&(name, want)| snap.counter(name).unwrap_or(0) == want);

    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"enabled\":{},", rdx_metrics::enabled());
    out.push_str("\"workloads\":[");
    for (i, (name, p)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"accesses\":{},\"samples\":{},\"traps\":{},\
             \"evictions\":{},\"end_censored\":{},\"dropped_samples\":{},\
             \"duplicate_samples\":{}}}",
            p.accesses,
            p.samples,
            p.traps,
            p.evictions,
            p.end_censored,
            p.dropped_samples,
            p.duplicate_samples
        );
    }
    out.push_str("],\"crosscheck\":[");
    for (i, &(name, want)) in checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let got = snap.counter(name).unwrap_or(0);
        let _ = write!(
            out,
            "{{\"counter\":\"{name}\",\"expected\":{want},\"observed\":{got},\
             \"matched\":{}}}",
            !rdx_metrics::enabled() || got == want
        );
    }
    let _ = write!(
        out,
        "],\"matched\":{matched},\"registry\":{}",
        snap.to_json()
    );
    out.push('}');

    println!("\nmetrics report:");
    println!("{out}");
    if !rdx_metrics::enabled() {
        eprintln!("note: this binary was built without the `metrics` feature; probes are no-ops");
        return ExitCode::SUCCESS;
    }
    if matched {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: metrics counters disagree with profile fields (see crosscheck)");
        ExitCode::FAILURE
    }
}

/// Validates a serialized trace file, streaming through every record.
/// Corrupt or truncated input is reported as a decode error with the
/// position reached — never a panic.
fn trace_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let total_bytes = bytes.len();
    let mut reader = match TraceReader::new(bytes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: '{path}' is not an RDX trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut loads, mut stores) = (0u64, 0u64);
    loop {
        match reader.try_next() {
            Ok(Some(a)) => match a.kind {
                AccessKind::Load => loads += 1,
                AccessKind::Store => stores += 1,
            },
            Ok(None) => break,
            Err(e) => {
                eprintln!(
                    "error: '{path}' is corrupt after {} of {} declared accesses: {e}",
                    reader.decoded(),
                    reader.declared_len()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let name = reader.name().to_string();
    if let Err(e) = reader.finish() {
        eprintln!("error: '{path}': {e}");
        return ExitCode::FAILURE;
    }
    println!("trace           : {name}");
    println!("file size       : {total_bytes} B");
    println!(
        "accesses        : {} ({loads} loads, {stores} stores)",
        loads + stores
    );
    ExitCode::SUCCESS
}

fn print_histogram(h: &Histogram, csv: bool) {
    let n = h.normalized();
    let sep = if csv { "," } else { "  " };
    for b in n.buckets() {
        let bar_len = (b.weight * 50.0).round() as usize;
        if csv {
            println!("{}{sep}{}{sep}{:.6}", b.range.lo, b.range.hi, b.weight);
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                b.range.lo,
                b.range.hi,
                b.weight * 100.0,
                "#".repeat(bar_len)
            );
        }
    }
    if n.infinite_weight() > 0.0 {
        if csv {
            println!("inf{sep}inf{sep}{:.6}", n.infinite_weight());
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                "cold",
                "",
                n.infinite_weight() * 100.0,
                "#".repeat((n.infinite_weight() * 50.0).round() as usize)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn parses_left_to_right() {
        let opts = Opts::parse(
            &to_args(&["--accesses", "1000", "--exact", "--jobs", "4"]),
            PROFILE_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.accesses, Some(1000));
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.exact);
        assert!(!opts.csv);
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = Opts::parse(&to_args(&["--bogus", "3"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn rejects_duplicate_value_flag() {
        let err = Opts::parse(
            &to_args(&["--period", "512", "--period", "1024"]),
            PROFILE_FLAGS,
        )
        .unwrap_err();
        assert!(err.contains("duplicate flag '--period'"), "{err}");
    }

    #[test]
    fn rejects_duplicate_boolean_flag() {
        let err = Opts::parse(&to_args(&["--csv", "--csv"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag '--csv'"), "{err}");
    }

    #[test]
    fn rejects_missing_value() {
        let err = Opts::parse(&to_args(&["--accesses"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn rejects_flag_as_value() {
        // A flag immediately following a value flag is consumed as its
        // value and fails to parse — it is never silently skipped.
        let err = Opts::parse(&to_args(&["--accesses", "--csv"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("--accesses"), "{err}");
    }

    #[test]
    fn suite_flags_exclude_registers() {
        let err = Opts::parse(&to_args(&["--registers", "2"]), SUITE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn metrics_flag_parses_for_both_commands() {
        for flags in [PROFILE_FLAGS, SUITE_FLAGS] {
            let opts = Opts::parse(&to_args(&["--metrics"]), flags).unwrap();
            assert!(opts.metrics);
        }
        let err = Opts::parse(&to_args(&["--metrics", "--metrics"]), SUITE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag '--metrics'"), "{err}");
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdx-cli-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn trace_cmd_accepts_valid_and_rejects_corrupt_files() {
        let trace =
            rdx_trace::Trace::from_addresses("roundtrip", (0..500u64).map(|i| (i % 37) * 8));
        let bytes = rdx_trace::io::to_bytes(&trace);
        let good = temp_path("good.rdxt");
        std::fs::write(&good, &bytes).unwrap();
        assert_eq!(trace_cmd(&[good.display().to_string()]), ExitCode::SUCCESS);

        // Truncating the record stream must yield a decode error, not a
        // panic — the CLI recovers and reports the position reached.
        let cut = temp_path("cut.rdxt");
        std::fs::write(&cut, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(trace_cmd(&[cut.display().to_string()]), ExitCode::FAILURE);

        let _ = std::fs::remove_file(good);
        let _ = std::fs::remove_file(cut);
    }

    #[test]
    fn metrics_crosscheck_rows_sum_profiles() {
        let params = rdx_workloads::Params::default()
            .with_accesses(30_000)
            .with_elements(400);
        let runner = RdxRunner::new(RdxConfig::default().with_period(512));
        let rows: Vec<(String, RdxProfile)> = ["zipf", "stream_triad"]
            .iter()
            .map(|n| {
                (
                    (*n).to_string(),
                    runner.profile(by_name(n).unwrap().stream(&params)),
                )
            })
            .collect();
        let checks = crosscheck_rows(&rows);
        let samples: u64 = rows.iter().map(|(_, p)| p.samples).sum();
        assert!(checks.contains(&("rdx.profiler.samples", samples)));
        assert!(samples > 0);
    }
}
