//! `rdx` — profile a workload's reuse distances from the command line.
//!
//! ```text
//! rdx list
//! rdx profile <workload|file.rdxt> [--accesses N] [--elements N]
//!             [--period N] [--seed N] [--registers N] [--jobs N]
//!             [--exact] [--mrc] [--csv] [--metrics] [--save file.rdxp]
//!             [--pipelined|--no-pipelined] [--decode-buffer N]
//!             [--decode-ahead N] [--kernel auto|scalar|swar|simd]
//! rdx suite [file.rdxt ...] [--accesses N] [--elements N] [--period N]
//!           [--seed N] [--jobs N] [--csv] [--metrics]
//!           [--merge] [--out file.rdxp]
//!           [--pipelined|--no-pipelined] [--decode-buffer N]
//!           [--decode-ahead N] [--kernel auto|scalar|swar|simd]
//! rdx merge <file.rdxp ...> [--out file.rdxp] [--jobs N]
//!           [--kernel auto|scalar|swar|simd] [--csv] [--mrc]
//! rdx trace <file> [--decode-buffer N] [--kernel auto|scalar|swar|simd]
//!           [--metrics]
//! rdx serve --listen <addr|socket-path> [--max-conns N]
//!           [--max-session-bytes N]
//! rdx client <addr|socket-path> <workload|file.rdxt> [--accesses N]
//!            [--elements N] [--period N] [--seed N] [--registers N]
//!            [--chunk-bytes N] [--aggregate N] [--crosscheck] [--metrics]
//!            [--pipelined|--no-pipelined] [--decode-buffer N]
//!            [--decode-ahead N]
//! rdx sim [--seed N] [--schedules N] [--faults LIST]
//! rdx static <kernel> [--accesses N] [--elements N] [--seed N]
//!            [--exact] [--mrc] [--csv] [--metrics]
//! ```
//!
//! `profile` accepts either a registry workload name or a path to a
//! serialized RDXT trace; `suite` profiles the whole registry, or — when
//! leading file arguments are given — each trace file in parallel. File
//! inputs are decoded ahead on a dedicated thread by default
//! (`--no-pipelined` decodes in bulk on the profiling thread;
//! `--decode-buffer`/`--decode-ahead` size the chunk and the buffer
//! ring).
//!
//! Profiles are a merge monoid: `profile --save` writes a profile in
//! the versioned RDXP wire format, `merge` folds RDXP files from disk
//! into one fleet profile (parallel tree reduction over `--jobs`
//! threads; bit-identical for every job count and `--kernel`), and
//! `suite --merge` appends the whole registry's fleet profile — `--out`
//! writes it as RDXP for a later `rdx merge`. Incompatible inputs
//! (version, binning, granularity, or cost-model mismatches) are typed
//! errors naming both sides, never panics.
//!
//! `--kernel` forces the hot-loop kernels — the machine fast path's
//! needle scanner and the trace layer's bulk varint decoder — to one
//! implementation family (`auto`, the default, picks the cheapest
//! available per the capability tables; a forced kind that is
//! unavailable on this host degrades per the table, e.g. `simd` decode
//! runs the SWAR kernel). Every kernel is bit-identical in output;
//! `rdx trace` prints the resolved kernel it decoded with.
//!
//! `serve` runs the long-lived framed profiling daemon from
//! `rdx-server`; `client` streams a workload or trace file to such a
//! daemon in `--chunk-bytes`-sized pieces and prints the profile the
//! server measured. `--crosscheck` additionally profiles the same bytes
//! locally and fails unless the two profiles are bit-identical.
//!
//! Numeric flags are validated at parse time against
//! `rdx_core::limits` — `--period 0` or `--registers 7` is a flag
//! error, not a silently adjusted experiment — and the server applies
//! the same checks to session options arriving over the wire.
//!
//! `--jobs N` parallelizes: `suite` fans workloads over `N` profiler
//! threads (deterministic, same output as `--jobs 1`), and `profile
//! --exact` measures ground truth with `N` shards.
//!
//! `sim` runs the deterministic simulation suite from `rdx-sim`: the
//! concurrent paths (pipelined decode-ahead, batch dispatch, server
//! sessions) driven step by step under seeded schedules with fault
//! injection. A violation prints the seed that replays it and exits
//! nonzero. `--faults` takes `all`, `none`, or a comma-separated subset
//! of `truncate`, `overlong`, `worker-death`, `batch-panic`,
//! `session-disorder`.
//!
//! `static` estimates an affine kernel's reuse profile symbolically
//! (`rdx-static`) without generating or executing a single access:
//! `--mrc` pushes the estimate through `rdx-cache::predict` for
//! trace-free miss-ratio what-ifs, `--exact` compares against exact
//! Olken ground truth, and `--metrics` proves the zero-access claim by
//! crosschecking that every trace/profiler counter stayed zero.
//! Non-affine workloads are rejected with a typed explanation.
//!
//! `--metrics` appends a JSON observability report (from `rdx-metrics`)
//! that crosschecks the registry counters against the profile fields;
//! a mismatch is a failure. `rdx trace <file>` validates a serialized
//! trace with the bulk chunk decoder, reporting decode throughput and
//! chunk statistics — and decode errors instead of crashing on corrupt
//! input.

#![forbid(unsafe_code)]

use rdx_core::{
    load_rdxt, profile_batch, profile_rdxt_batch, BatchTask, IngestOptions, RdxConfig, RdxProfile,
    RdxRunner, RdxtInput,
};
use rdx_groundtruth::{ExactProfile, ShardedExact};
use rdx_histogram::accuracy::histogram_intersection;
use rdx_histogram::{Binning, Histogram};
use rdx_trace::{
    AccessKind, Chunk, Granularity, KernelChoice, TraceReader, DEFAULT_CHUNK_CAPACITY,
};
use rdx_workloads::{by_name, suite, Params, WorkloadSpec};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  rdx list\n  rdx profile <workload|file.rdxt> [--accesses N] \
         [--elements N] [--period N]\n              [--seed N] [--registers N] [--jobs N] \
         [--exact] [--mrc] [--csv] [--metrics]\n              [--save file.rdxp] \
         [--pipelined|--no-pipelined]\n              \
         [--decode-buffer N] [--decode-ahead N]\n              \
         [--kernel auto|scalar|swar|simd]\n  rdx suite [file.rdxt ...] [--accesses N] \
         [--elements N] [--period N] [--seed N]\n            [--jobs N] [--csv] [--metrics] \
         [--merge] [--out file.rdxp]\n            [--pipelined|--no-pipelined]\n            \
         [--decode-buffer N] [--decode-ahead N] \
         [--kernel auto|scalar|swar|simd]\n  \
         rdx merge <file.rdxp ...> [--out file.rdxp] [--jobs N]\n            \
         [--kernel auto|scalar|swar|simd] [--csv] [--mrc]\n  \
         rdx trace <file> [--decode-buffer N] [--kernel auto|scalar|swar|simd] [--metrics]\n  \
         rdx serve --listen <addr|socket-path> [--max-conns N] [--max-session-bytes N]\n  \
         rdx client <addr|socket-path> <workload|file.rdxt> [--accesses N] [--elements N]\n             \
         [--period N] [--seed N] [--registers N] [--chunk-bytes N]\n             \
         [--aggregate N] [--crosscheck] [--metrics] [--pipelined|--no-pipelined]\n             \
         [--decode-buffer N] [--decode-ahead N]\n  \
         rdx sim [--seed N] [--schedules N] [--faults LIST]\n  \
         rdx static <kernel> [--accesses N] [--elements N] [--seed N]\n             \
         [--exact] [--mrc] [--csv] [--metrics]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            println!("{:16} {:32} description", "name", "spec analog");
            for w in suite() {
                println!("{:16} {:32} {}", w.name, w.spec_analog, w.description);
            }
            ExitCode::SUCCESS
        }
        Some("profile") => profile(&args[1..]),
        Some("suite") => suite_cmd(&args[1..]),
        Some("merge") => merge_cmd(&args[1..]),
        Some("trace") => trace_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        Some("sim") => sim_cmd(&args[1..]),
        Some("static") => static_cmd(&args[1..]),
        _ => usage(),
    }
}

/// Parsed command-line options, filled by a single left-to-right scan.
#[derive(Debug, Default, PartialEq, Eq)]
struct Opts {
    accesses: Option<u64>,
    elements: Option<u64>,
    seed: Option<u64>,
    period: Option<u64>,
    registers: Option<u64>,
    jobs: Option<u64>,
    decode_buffer: Option<u64>,
    decode_ahead: Option<u64>,
    chunk_bytes: Option<u64>,
    aggregate: Option<u64>,
    kernel: Option<KernelChoice>,
    save: Option<String>,
    out: Option<String>,
    exact: bool,
    mrc: bool,
    csv: bool,
    metrics: bool,
    pipelined: bool,
    no_pipelined: bool,
    crosscheck: bool,
    merge: bool,
}

impl Opts {
    /// Parses `args` strictly left to right. Flags not in `allowed` are
    /// rejected, as is any flag given twice; every value flag consumes
    /// exactly the argument that follows it.
    fn parse(args: &[String], allowed: &[&str]) -> Result<Opts, String> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let flag = arg.as_str();
            if !allowed.contains(&flag) {
                return Err(format!("unknown flag '{flag}'"));
            }
            match flag {
                "--exact" | "--mrc" | "--csv" | "--metrics" | "--pipelined" | "--no-pipelined"
                | "--crosscheck" | "--merge" => {
                    let slot = match flag {
                        "--exact" => &mut opts.exact,
                        "--mrc" => &mut opts.mrc,
                        "--metrics" => &mut opts.metrics,
                        "--pipelined" => &mut opts.pipelined,
                        "--no-pipelined" => &mut opts.no_pipelined,
                        "--crosscheck" => &mut opts.crosscheck,
                        "--merge" => &mut opts.merge,
                        _ => &mut opts.csv,
                    };
                    if *slot {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    *slot = true;
                }
                "--save" | "--out" => {
                    let slot = if flag == "--save" {
                        &mut opts.save
                    } else {
                        &mut opts.out
                    };
                    if slot.is_some() {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                    *slot = Some(value.clone());
                }
                "--kernel" => {
                    if opts.kernel.is_some() {
                        return Err("duplicate flag '--kernel'".to_string());
                    }
                    let value = it.next().ok_or("--kernel needs a value")?;
                    opts.kernel = Some(KernelChoice::parse(value).ok_or_else(|| {
                        format!("--kernel must be auto, scalar, swar or simd (got '{value}')")
                    })?);
                }
                _ => {
                    let slot = match flag {
                        "--accesses" => &mut opts.accesses,
                        "--elements" => &mut opts.elements,
                        "--seed" => &mut opts.seed,
                        "--period" => &mut opts.period,
                        "--registers" => &mut opts.registers,
                        "--jobs" => &mut opts.jobs,
                        "--decode-buffer" => &mut opts.decode_buffer,
                        "--decode-ahead" => &mut opts.decode_ahead,
                        "--chunk-bytes" => &mut opts.chunk_bytes,
                        "--aggregate" => &mut opts.aggregate,
                        _ => unreachable!("allowed flags are handled above"),
                    };
                    if slot.is_some() {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .parse::<u64>()
                        .map_err(|e| format!("{flag}: {e}"))?;
                    *slot = Some(value);
                }
            }
        }
        if opts.pipelined && opts.no_pipelined {
            return Err("'--pipelined' conflicts with '--no-pipelined'".to_string());
        }
        opts.validate()?;
        Ok(opts)
    }

    /// Bounds-checks every numeric flag against `rdx_core::limits` at
    /// parse time, so `--period 0` or `--registers 7` is a flag error
    /// here rather than a silently clamped experiment downstream. The
    /// server applies the same checks to options arriving over the wire.
    fn validate(&self) -> Result<(), String> {
        use rdx_core::limits::{
            check_accesses, check_decode_ahead, check_decode_buffer, check_elements, check_jobs,
            check_period, check_registers,
        };
        let err = |e: rdx_core::LimitError| format!("--{e}");
        if let Some(v) = self.accesses {
            check_accesses(v).map_err(err)?;
        }
        if let Some(v) = self.elements {
            check_elements(v).map_err(err)?;
        }
        if let Some(v) = self.period {
            check_period(v).map_err(err)?;
        }
        if let Some(v) = self.registers {
            check_registers(usize::try_from(v).unwrap_or(usize::MAX)).map_err(err)?;
        }
        if let Some(v) = self.jobs {
            check_jobs(usize::try_from(v).unwrap_or(usize::MAX)).map_err(err)?;
        }
        if let Some(v) = self.decode_buffer {
            check_decode_buffer(usize::try_from(v).unwrap_or(usize::MAX)).map_err(err)?;
        }
        if let Some(v) = self.decode_ahead {
            check_decode_ahead(usize::try_from(v).unwrap_or(usize::MAX)).map_err(err)?;
        }
        if self.chunk_bytes == Some(0) {
            return Err("--chunk-bytes must be at least 1 (got 0)".to_string());
        }
        if let Some(v) = self.aggregate {
            if !(1..=64).contains(&v) {
                return Err(format!("--aggregate must be between 1 and 64 (got {v})"));
            }
        }
        Ok(())
    }

    fn params(&self) -> Params {
        let mut p = Params::default().with_accesses(4_000_000);
        if let Some(v) = self.accesses {
            p = p.with_accesses(v);
        }
        if let Some(v) = self.elements {
            p = p.with_elements(v);
        }
        if let Some(v) = self.seed {
            p = p.with_seed(v);
        }
        p
    }

    fn config(&self) -> RdxConfig {
        let mut c = RdxConfig::default().with_period(self.period.unwrap_or(2048));
        if let Some(v) = self.seed {
            c = c.with_seed(v);
        }
        if let Some(v) = self.registers {
            c = c.with_registers(v as usize);
        }
        if let Some(k) = self.kernel {
            c = c.with_scan_kernel(k);
        }
        c
    }

    fn jobs(&self) -> usize {
        match self.jobs {
            Some(v) => usize::try_from(v.max(1)).unwrap_or(1),
            None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }

    /// How file inputs should be decoded (pipelined decode-ahead unless
    /// `--no-pipelined`; `--decode-buffer`/`--decode-ahead` size it).
    fn ingest(&self) -> IngestOptions {
        let mut o = IngestOptions::default().with_pipelined(!self.no_pipelined);
        if let Some(v) = self.decode_buffer {
            o = o.with_chunk_capacity(usize::try_from(v).unwrap_or(usize::MAX).max(1));
        }
        if let Some(v) = self.decode_ahead {
            o = o.with_decode_ahead(usize::try_from(v).unwrap_or(usize::MAX));
        }
        if let Some(k) = self.kernel {
            o = o.with_decode_kernel(k);
        }
        o
    }

    /// The first decode-tuning flag present, if any — these only apply
    /// to trace-file inputs.
    fn decode_flag(&self) -> Option<&'static str> {
        if self.pipelined {
            Some("--pipelined")
        } else if self.no_pipelined {
            Some("--no-pipelined")
        } else if self.decode_buffer.is_some() {
            Some("--decode-buffer")
        } else if self.decode_ahead.is_some() {
            Some("--decode-ahead")
        } else {
            None
        }
    }
}

const PROFILE_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--registers",
    "--jobs",
    "--decode-buffer",
    "--decode-ahead",
    "--kernel",
    "--exact",
    "--mrc",
    "--csv",
    "--metrics",
    "--save",
    "--pipelined",
    "--no-pipelined",
];

const SUITE_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--jobs",
    "--decode-buffer",
    "--decode-ahead",
    "--kernel",
    "--csv",
    "--metrics",
    "--merge",
    "--out",
    "--pipelined",
    "--no-pipelined",
];

const MERGE_FLAGS: &[&str] = &["--out", "--jobs", "--kernel", "--csv", "--mrc"];

const TRACE_FLAGS: &[&str] = &["--decode-buffer", "--kernel", "--metrics"];

const STATIC_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--exact",
    "--mrc",
    "--csv",
    "--metrics",
];

const CLIENT_FLAGS: &[&str] = &[
    "--accesses",
    "--elements",
    "--seed",
    "--period",
    "--registers",
    "--chunk-bytes",
    "--aggregate",
    "--decode-buffer",
    "--decode-ahead",
    "--crosscheck",
    "--metrics",
    "--pipelined",
    "--no-pipelined",
];

fn profile(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    if name.starts_with("--") {
        return usage();
    }
    let opts = match Opts::parse(&args[1..], PROFILE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(workload) = by_name(name) {
        return profile_workload(workload, &opts);
    }
    if std::path::Path::new(name).exists() {
        return profile_file(name, &opts);
    }
    eprintln!("unknown workload '{name}' and no such trace file; try `rdx list`");
    ExitCode::FAILURE
}

fn profile_workload(workload: &WorkloadSpec, opts: &Opts) -> ExitCode {
    if let Some(flag) = opts.decode_flag() {
        eprintln!(
            "error: {flag} applies to trace-file inputs; '{}' is a generated workload",
            workload.name
        );
        return ExitCode::FAILURE;
    }
    let params = opts.params();
    let config = opts.config();
    let csv = opts.csv;

    if opts.metrics {
        rdx_metrics::reset();
    }
    let profile = RdxRunner::new(config).profile(workload.stream(&params));
    if !csv {
        println!(
            "workload        : {} ({})",
            workload.name, workload.spec_analog
        );
        println!("accesses        : {}", profile.accesses);
        println!("samples/traps   : {} / {}", profile.samples, profile.traps);
        println!("est. blocks     : {:.0}", profile.m_estimate);
        println!("time overhead   : {:.2}%", profile.time_overhead * 100.0);
        println!(
            "memory overhead : {:.2}% (of {} B footprint)",
            profile.memory_overhead(params.footprint_bytes()) * 100.0,
            params.footprint_bytes()
        );
        println!(
            "instrumentation : {:.0}x slowdown (for contrast)",
            profile.instrumentation_slowdown()
        );
        println!("\nreuse-distance histogram (weights normalized):");
    }
    print_histogram(profile.rd.as_histogram(), csv);

    if opts.mrc {
        print_mrc(&profile);
    }

    if opts.exact {
        let jobs = opts.jobs();
        let exact = if jobs > 1 {
            ShardedExact::new(jobs).measure(
                workload.stream(&params),
                Granularity::WORD,
                Binning::log2(),
            )
        } else {
            ExactProfile::measure(workload.stream(&params), Granularity::WORD, Binning::log2())
        };
        let acc = histogram_intersection(profile.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        println!("\nexact (ground-truth) histogram:");
        print_histogram(exact.rd.as_histogram(), csv);
        println!("\naccuracy vs ground truth: {:.1}%", acc * 100.0);
    }
    if let Some(path) = &opts.save {
        let code = save_profile(path, &profile);
        if code != ExitCode::SUCCESS {
            return code;
        }
    }
    if opts.metrics {
        return emit_metrics_report(&[(workload.name.to_string(), profile)]);
    }
    ExitCode::SUCCESS
}

/// Profiles one serialized RDXT trace file. Decoding is pipelined ahead
/// of the profiler by default; the profile covers the decodable prefix,
/// and a short or trailing-data decode is a failure after reporting.
fn profile_file(path: &str, opts: &Opts) -> ExitCode {
    for (flag, given) in [
        ("--accesses", opts.accesses.is_some()),
        ("--elements", opts.elements.is_some()),
        ("--exact", opts.exact),
    ] {
        if given {
            eprintln!("error: {flag} applies to generated workloads; '{path}' is a trace file");
            return ExitCode::FAILURE;
        }
    }
    if opts.metrics {
        rdx_metrics::reset();
    }
    let input = match load_rdxt(path) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let label = input.label.clone();
    let declared = input.declared;
    let ingest = opts.ingest();
    let csv = opts.csv;
    let (profile, verdict) = RdxRunner::new(opts.config()).profile_rdxt(input, &ingest);
    if !csv {
        println!("trace           : {label}");
        println!("source          : {path} ({declared} declared accesses)");
        println!("accesses        : {}", profile.accesses);
        println!("samples/traps   : {} / {}", profile.samples, profile.traps);
        println!("est. blocks     : {:.0}", profile.m_estimate);
        println!("time overhead   : {:.2}%", profile.time_overhead * 100.0);
        println!(
            "ingestion       : {} (chunk capacity {})",
            if ingest.pipelined {
                "pipelined decode-ahead"
            } else {
                "bulk decode"
            },
            ingest.chunk_capacity
        );
        println!("\nreuse-distance histogram (weights normalized):");
    }
    print_histogram(profile.rd.as_histogram(), csv);
    if opts.mrc {
        print_mrc(&profile);
    }
    let mut code = ExitCode::SUCCESS;
    if let Err(e) = verdict {
        eprintln!(
            "error: '{path}' decoded {} of {declared} declared accesses: {e}",
            profile.accesses
        );
        code = ExitCode::FAILURE;
    }
    if let Some(save) = &opts.save {
        let save_code = save_profile(save, &profile);
        if code == ExitCode::SUCCESS {
            code = save_code;
        }
    }
    if opts.metrics {
        let metrics_code = emit_metrics_report(&[(label, profile)]);
        if code == ExitCode::SUCCESS {
            code = metrics_code;
        }
    }
    code
}

fn print_mrc(profile: &RdxProfile) {
    let mrc = profile.miss_ratio_curve();
    println!("\nmiss-ratio curve (capacity in blocks):");
    for cap in [1u64 << 6, 1 << 9, 1 << 12, 1 << 15, 1 << 18, 1 << 21] {
        println!("  {:>10} {:.4}", cap, mrc.miss_ratio(cap));
    }
}

/// Profiles every registry workload in parallel and prints one summary
/// row per workload (identical output for any `--jobs` value). Leading
/// non-flag arguments are RDXT trace files to profile instead.
fn suite_cmd(args: &[String]) -> ExitCode {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (files, flag_args) = args.split_at(split);
    let opts = match Opts::parse(flag_args, SUITE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.out.is_some() && !opts.merge {
        eprintln!("error: --out requires --merge (it writes the merged fleet profile)");
        return ExitCode::FAILURE;
    }
    if !files.is_empty() {
        return suite_files(files, &opts);
    }
    if let Some(flag) = opts.decode_flag() {
        eprintln!("error: {flag} applies to trace-file inputs; pass RDXT files to `rdx suite`");
        return ExitCode::FAILURE;
    }
    let params = opts.params();
    let config = opts.config();
    let jobs = opts.jobs();

    if opts.metrics {
        rdx_metrics::reset();
    }
    let tasks: Vec<_> = suite()
        .iter()
        .map(|w| BatchTask {
            config,
            make_stream: move || w.stream(&params),
        })
        .collect();
    let profiles = profile_batch(tasks, jobs);

    if opts.csv {
        println!("workload,accesses,samples,traps,est_blocks,time_overhead,mean_rd");
    } else {
        println!(
            "suite: {} workloads, {} accesses each, period {}, {} jobs\n",
            suite().len(),
            params.accesses,
            config.machine.sampling.period,
            jobs
        );
        println!(
            "{:16} {:>10} {:>8} {:>8} {:>11} {:>9} {:>10}",
            "workload", "accesses", "samples", "traps", "est. blocks", "overhead", "mean rd"
        );
    }
    for (w, p) in suite().iter().zip(&profiles) {
        let mean_rd = p.rd.as_histogram().finite_mean().unwrap_or(f64::NAN);
        if opts.csv {
            println!(
                "{},{},{},{},{:.0},{:.6},{:.1}",
                w.name, p.accesses, p.samples, p.traps, p.m_estimate, p.time_overhead, mean_rd
            );
        } else {
            println!(
                "{:16} {:>10} {:>8} {:>8} {:>11.0} {:>8.2}% {:>10.1}",
                w.name,
                p.accesses,
                p.samples,
                p.traps,
                p.m_estimate,
                p.time_overhead * 100.0,
                mean_rd
            );
        }
    }
    if !opts.csv {
        let total: u64 = profiles.iter().map(|p: &RdxProfile| p.accesses).sum();
        println!("\ntotal accesses profiled: {total}");
    }
    let mut code = ExitCode::SUCCESS;
    if opts.merge {
        code = emit_fleet(profiles.clone(), profiles.len(), &opts);
    }
    if opts.metrics {
        let rows: Vec<(String, RdxProfile)> = suite()
            .iter()
            .map(|w| w.name.to_string())
            .zip(profiles)
            .collect();
        let metrics_code = emit_metrics_report(&rows);
        if code == ExitCode::SUCCESS {
            code = metrics_code;
        }
    }
    code
}

/// Profiles a set of RDXT trace files in parallel, one summary row per
/// file. A file that decodes short of its declared record count is
/// reported (its profile covers the decodable prefix) and fails the run.
fn suite_files(files: &[String], opts: &Opts) -> ExitCode {
    for (flag, given) in [
        ("--accesses", opts.accesses.is_some()),
        ("--elements", opts.elements.is_some()),
    ] {
        if given {
            eprintln!("error: {flag} applies to generated workloads, not trace files");
            return ExitCode::FAILURE;
        }
    }
    if opts.metrics {
        rdx_metrics::reset();
    }
    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        match load_rdxt(path) {
            Ok(input) => inputs.push(input),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let config = opts.config();
    let jobs = opts.jobs();
    let ingest = opts.ingest();
    let reports = profile_rdxt_batch(config, inputs, &ingest, jobs);

    if opts.csv {
        println!("trace,declared,accesses,samples,traps,est_blocks,time_overhead,mean_rd,clean");
    } else {
        println!(
            "suite: {} trace files, period {}, {} jobs, {} decode\n",
            reports.len(),
            config.machine.sampling.period,
            jobs,
            if ingest.pipelined {
                "pipelined"
            } else {
                "bulk"
            }
        );
        println!(
            "{:16} {:>10} {:>10} {:>8} {:>8} {:>11} {:>9} {:>10}",
            "trace",
            "declared",
            "accesses",
            "samples",
            "traps",
            "est. blocks",
            "overhead",
            "mean rd"
        );
    }
    for r in &reports {
        let p = &r.profile;
        let mean_rd = p.rd.as_histogram().finite_mean().unwrap_or(f64::NAN);
        if opts.csv {
            println!(
                "{},{},{},{},{},{:.0},{:.6},{:.1},{}",
                r.label,
                r.declared,
                p.accesses,
                p.samples,
                p.traps,
                p.m_estimate,
                p.time_overhead,
                mean_rd,
                !r.truncated()
            );
        } else {
            println!(
                "{:16} {:>10} {:>10} {:>8} {:>8} {:>11.0} {:>8.2}% {:>10.1}{}",
                r.label,
                r.declared,
                p.accesses,
                p.samples,
                p.traps,
                p.m_estimate,
                p.time_overhead * 100.0,
                mean_rd,
                if r.truncated() { "  [truncated]" } else { "" }
            );
        }
    }
    let truncated = reports.iter().filter(|r| r.truncated()).count();
    for r in reports.iter().filter(|r| r.truncated()) {
        eprintln!(
            "warning: '{}' decoded {} of {} declared accesses",
            r.label, r.profile.accesses, r.declared
        );
    }
    let mut code = ExitCode::SUCCESS;
    if truncated > 0 {
        eprintln!(
            "error: {truncated} of {} trace files were truncated or corrupt",
            reports.len()
        );
        code = ExitCode::FAILURE;
    }
    if opts.merge {
        let fleet: Vec<RdxProfile> = reports.iter().map(|r| r.profile.clone()).collect();
        let n = fleet.len();
        let merge_code = emit_fleet(fleet, n, opts);
        if code == ExitCode::SUCCESS {
            code = merge_code;
        }
    }
    if opts.metrics {
        let rows: Vec<(String, RdxProfile)> =
            reports.into_iter().map(|r| (r.label, r.profile)).collect();
        let metrics_code = emit_metrics_report(&rows);
        if code == ExitCode::SUCCESS {
            code = metrics_code;
        }
    }
    code
}

/// Writes a profile to `path` in the versioned RDXP wire format.
fn save_profile(path: &str, profile: &RdxProfile) -> ExitCode {
    let bytes = rdx_core::encode_profile(profile);
    match std::fs::write(path, &bytes) {
        Ok(()) => {
            println!(
                "saved profile   : {path} ({} B, RDXP v{})",
                bytes.len(),
                rdx_core::RDXP_VERSION
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write '{path}': {e}");
            ExitCode::FAILURE
        }
    }
}

/// Merges a batch of profiles into one fleet profile and prints it
/// (used by both `rdx merge` and `rdx suite --merge`). The reduction is
/// a deterministic tree over `--jobs` threads — the output is
/// bit-identical for every job count and kernel choice.
fn emit_fleet(profiles: Vec<RdxProfile>, sources: usize, opts: &Opts) -> ExitCode {
    let jobs = opts.jobs();
    let merged =
        match rdx_core::merge_batch_with(profiles, jobs, opts.kernel.unwrap_or(KernelChoice::Auto))
        {
            Ok(Some(p)) => p,
            Ok(None) => {
                eprintln!("error: nothing to merge");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: profiles are not mergeable: {e}");
                return ExitCode::FAILURE;
            }
        };
    if !opts.csv {
        println!("\nfleet profile   : {sources} profiles merged ({jobs} jobs)");
        println!("accesses        : {}", merged.accesses);
        println!("samples/traps   : {} / {}", merged.samples, merged.traps);
        println!("est. blocks     : {:.0}", merged.m_estimate);
        println!("time overhead   : {:.2}%", merged.time_overhead * 100.0);
        println!("\nmerged reuse-distance histogram (weights normalized):");
    }
    print_histogram(merged.rd.as_histogram(), opts.csv);
    if opts.mrc {
        print_mrc(&merged);
    }
    match &opts.out {
        Some(path) => save_profile(path, &merged),
        None => ExitCode::SUCCESS,
    }
}

/// Merges serialized RDXP profiles from disk into one fleet profile.
/// Decode failures (bad magic, version mismatch, truncation) and merge
/// incompatibilities (binning, granularity, cost model) are typed,
/// per-file errors — never panics.
fn merge_cmd(args: &[String]) -> ExitCode {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (files, flag_args) = args.split_at(split);
    if files.is_empty() {
        eprintln!("error: merge needs at least one RDXP profile file");
        return usage();
    }
    let opts = match Opts::parse(flag_args, MERGE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut profiles = Vec::with_capacity(files.len());
    for path in files {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read '{path}': {e}");
                return ExitCode::FAILURE;
            }
        };
        match rdx_core::decode_profile(&bytes) {
            Ok(p) => profiles.push(p),
            Err(e) => {
                eprintln!("error: '{path}' is not a loadable RDXP profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if !opts.csv {
        println!("merging {} profile(s):", files.len());
        for (path, p) in files.iter().zip(&profiles) {
            println!(
                "  {path}: {} accesses, {} samples, {} traps",
                p.accesses, p.samples, p.traps
            );
        }
    }
    emit_fleet(profiles, files.len(), &opts)
}

/// Counter names whose registry totals must equal the summed profile
/// fields — the observability layer is only trustworthy if it agrees
/// exactly with the numbers the profiler itself reports.
fn crosscheck_rows(rows: &[(String, RdxProfile)]) -> [(&'static str, u64); 6] {
    let sum = |f: fn(&RdxProfile) -> u64| rows.iter().map(|(_, p)| f(p)).sum();
    [
        ("rdx.profiler.samples", sum(|p| p.samples)),
        ("rdx.profiler.traps", sum(|p| p.traps)),
        ("rdx.profiler.evictions", sum(|p| p.evictions)),
        ("rdx.profiler.end_censored", sum(|p| p.end_censored)),
        ("rdx.profiler.dropped_samples", sum(|p| p.dropped_samples)),
        (
            "rdx.profiler.duplicate_samples",
            sum(|p| p.duplicate_samples),
        ),
    ]
}

/// Prints the `--metrics` JSON report: per-workload profile counters,
/// the counter crosscheck, and the full registry snapshot. Returns
/// FAILURE when a crosscheck row disagrees (collection bug), SUCCESS
/// otherwise. With metrics compiled out the report says so and the
/// crosscheck is skipped.
fn emit_metrics_report(rows: &[(String, RdxProfile)]) -> ExitCode {
    use std::fmt::Write as _;
    let snap = rdx_metrics::snapshot();
    let checks = crosscheck_rows(rows);
    let matched = !rdx_metrics::enabled()
        || checks
            .iter()
            .all(|&(name, want)| snap.counter(name).unwrap_or(0) == want);

    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"enabled\":{},", rdx_metrics::enabled());
    out.push_str("\"workloads\":[");
    for (i, (name, p)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"accesses\":{},\"samples\":{},\"traps\":{},\
             \"evictions\":{},\"end_censored\":{},\"dropped_samples\":{},\
             \"duplicate_samples\":{}}}",
            p.accesses,
            p.samples,
            p.traps,
            p.evictions,
            p.end_censored,
            p.dropped_samples,
            p.duplicate_samples
        );
    }
    out.push_str("],\"crosscheck\":[");
    for (i, &(name, want)) in checks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let got = snap.counter(name).unwrap_or(0);
        let _ = write!(
            out,
            "{{\"counter\":\"{name}\",\"expected\":{want},\"observed\":{got},\
             \"matched\":{}}}",
            !rdx_metrics::enabled() || got == want
        );
    }
    let _ = write!(
        out,
        "],\"matched\":{matched},\"registry\":{}",
        snap.to_json()
    );
    out.push('}');

    println!("\nmetrics report:");
    println!("{out}");
    if !rdx_metrics::enabled() {
        eprintln!("note: this binary was built without the `metrics` feature; probes are no-ops");
        return ExitCode::SUCCESS;
    }
    if matched {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: metrics counters disagree with profile fields (see crosscheck)");
        ExitCode::FAILURE
    }
}

/// Validates a serialized trace file with the bulk chunk decoder,
/// reporting decode throughput and chunk statistics. Corrupt or
/// truncated input is reported as a decode error with the position
/// reached — never a panic.
fn trace_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    if path.starts_with("--") {
        return usage();
    }
    let opts = match Opts::parse(&args[1..], TRACE_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.metrics {
        rdx_metrics::reset();
    }
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    let total_bytes = bytes.len();
    let mut reader = match TraceReader::new(bytes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: '{path}' is not an RDX trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(k) = opts.kernel {
        reader = reader.with_kernel(k);
    }
    let kernel = reader.kernel();
    let declared = reader.declared_len();
    let capacity = opts
        .decode_buffer
        .map_or(DEFAULT_CHUNK_CAPACITY, |v| {
            usize::try_from(v).unwrap_or(usize::MAX)
        })
        .max(1);
    let mut chunk = Chunk::default();
    let (mut stores, mut chunks, mut accesses) = (0u64, 0u64, 0u64);
    let (mut min_fill, mut max_fill) = (usize::MAX, 0usize);
    // Observational readout only: the elapsed time prints as a decode
    // rate and never feeds back into any measurement.
    // rdx-lint-allow: wall-clock — reports decode throughput to the user; not on a measurement path
    let start = std::time::Instant::now();
    let failure = loop {
        let result = reader.decode_chunk(&mut chunk, capacity);
        if !chunk.is_empty() {
            chunks += 1;
            accesses += chunk.len() as u64;
            min_fill = min_fill.min(chunk.len());
            max_fill = max_fill.max(chunk.len());
            stores += chunk
                .accesses
                .iter()
                .filter(|a| matches!(a.kind, AccessKind::Store))
                .count() as u64;
        }
        match result {
            Ok(0) => break None,
            Ok(_) => {}
            Err(e) => break Some(e),
        }
    };
    let elapsed = start.elapsed();
    if let Some(e) = failure {
        eprintln!(
            "error: '{path}' is corrupt after {} of {declared} declared accesses: {e}",
            reader.decoded(),
        );
        return ExitCode::FAILURE;
    }
    let name = reader.name().to_string();
    let decoded = reader.decoded();
    if let Err(e) = reader.finish() {
        eprintln!("error: '{path}': {e}");
        return ExitCode::FAILURE;
    }
    let loads = accesses - stores;
    println!("trace           : {name}");
    println!("file size       : {total_bytes} B");
    println!("decode kernel   : {}", kernel.name());
    println!("accesses        : {accesses} ({loads} loads, {stores} stores)");
    if chunks > 0 {
        println!("chunks          : {chunks} (capacity {capacity}, fill {min_fill}..={max_fill})");
    }
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 && accesses > 0 {
        println!(
            "decode rate     : {:.0} M acc/s ({:.0} MB/s)",
            accesses as f64 / secs / 1e6,
            total_bytes as f64 / secs / 1e6
        );
    }
    if opts.metrics {
        return emit_trace_metrics(decoded);
    }
    ExitCode::SUCCESS
}

/// Counters the `rdx trace --metrics` report prints, in output order.
const DECODE_COUNTERS: &[&str] = &[
    "rdx.trace.decode.accesses",
    "rdx.trace.decode.bytes",
    "rdx.trace.decode.chunks",
    "rdx.trace.decode.events",
    "rdx.trace.decode.recycled_buffers",
    "rdx.trace.decode.stalls",
];

/// Prints the `rdx trace --metrics` JSON report: the decode counters
/// and a crosscheck of `rdx.trace.decode.accesses` against the record
/// count the validator itself decoded. FAILURE when they disagree.
fn emit_trace_metrics(decoded: u64) -> ExitCode {
    use std::fmt::Write as _;
    let snap = rdx_metrics::snapshot();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let observed = counter("rdx.trace.decode.accesses");
    let matched = !rdx_metrics::enabled() || observed == decoded;

    let mut out = String::new();
    let _ = write!(out, "{{\"enabled\":{},", rdx_metrics::enabled());
    out.push_str("\"decode\":{");
    for (i, name) in DECODE_COUNTERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{name}\":{}", counter(name));
    }
    let _ = write!(
        out,
        "}},\"crosscheck\":[{{\"counter\":\"rdx.trace.decode.accesses\",\
         \"expected\":{decoded},\"observed\":{observed},\"matched\":{matched}}}],\
         \"matched\":{matched},\"registry\":{}",
        snap.to_json()
    );
    out.push('}');

    println!("\nmetrics report:");
    println!("{out}");
    if !rdx_metrics::enabled() {
        eprintln!("note: this binary was built without the `metrics` feature; probes are no-ops");
        return ExitCode::SUCCESS;
    }
    if matched {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: rdx.trace.decode.accesses disagrees with the validator's own count");
        ExitCode::FAILURE
    }
}

/// Runs the long-lived framed profiling daemon. `--listen` takes a TCP
/// address (`127.0.0.1:7979`, port 0 picks one) or a Unix socket path;
/// the resolved address is printed (and flushed) before serving so
/// scripts can capture it. With `--max-conns N` the server exits
/// cleanly after serving N connections.
fn serve_cmd(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut max_conns: Option<u64> = None;
    let mut max_session_bytes: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let flag = arg.as_str();
        let slot = match flag {
            "--listen" => {
                if listen.is_some() {
                    eprintln!("error: duplicate flag '--listen'");
                    return ExitCode::FAILURE;
                }
                let Some(value) = it.next() else {
                    eprintln!("error: --listen needs a value");
                    return ExitCode::FAILURE;
                };
                listen = Some(value.clone());
                continue;
            }
            "--max-conns" => &mut max_conns,
            "--max-session-bytes" => &mut max_session_bytes,
            _ => {
                eprintln!("error: unknown flag '{flag}'");
                return ExitCode::FAILURE;
            }
        };
        if slot.is_some() {
            eprintln!("error: duplicate flag '{flag}'");
            return ExitCode::FAILURE;
        }
        let value = match it.next().map(|v| v.parse::<u64>()) {
            Some(Ok(v)) if v > 0 => v,
            Some(Ok(v)) => {
                eprintln!("error: {flag} must be at least 1 (got {v})");
                return ExitCode::FAILURE;
            }
            Some(Err(e)) => {
                eprintln!("error: {flag}: {e}");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("error: {flag} needs a value");
                return ExitCode::FAILURE;
            }
        };
        *slot = Some(value);
    }
    let Some(spec) = listen else {
        eprintln!("error: serve requires --listen <addr|socket-path>");
        return usage();
    };
    let mut server_opts = rdx_server::ServerOptions::default();
    if let Some(n) = max_conns {
        server_opts = server_opts.with_max_connections(usize::try_from(n).unwrap_or(usize::MAX));
    }
    if let Some(n) = max_session_bytes {
        server_opts = server_opts.with_max_session_bytes(usize::try_from(n).unwrap_or(usize::MAX));
    }
    let mut handle = match rdx_server::Server::bind(&rdx_server::Listen::parse(&spec), server_opts)
    {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot listen on '{spec}': {e}");
            return ExitCode::FAILURE;
        }
    };
    // Flushed immediately: scripts (and CI) parse the resolved address
    // from this line while the server keeps running.
    println!("rdx-server listening on {}", handle.listen());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
    println!("rdx-server exiting (connection budget served)");
    ExitCode::SUCCESS
}

/// Streams a workload or RDXT trace file to a running server and prints
/// the profile the server measured, plus its registry-golden digest.
/// With `--crosscheck` the same bytes are also profiled locally and the
/// two profiles must be bit-identical.
fn client_cmd(args: &[String]) -> ExitCode {
    let (Some(addr), Some(target)) = (args.first(), args.get(1)) else {
        return usage();
    };
    if addr.starts_with("--") || target.starts_with("--") {
        return usage();
    }
    let opts = match Opts::parse(&args[2..], CLIENT_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The bytes to stream: a generated registry workload serialized to
    // RDXT, or a trace file read verbatim.
    let (label, bytes) = if let Some(w) = by_name(target) {
        let params = opts.params();
        let trace = rdx_trace::Trace::from_stream(w.name, w.stream(&params));
        (w.name.to_string(), rdx_trace::io::to_bytes(&trace).to_vec())
    } else if std::path::Path::new(target).exists() {
        for (flag, given) in [
            ("--accesses", opts.accesses.is_some()),
            ("--elements", opts.elements.is_some()),
        ] {
            if given {
                eprintln!(
                    "error: {flag} applies to generated workloads; '{target}' is a trace file"
                );
                return ExitCode::FAILURE;
            }
        }
        match std::fs::read(target) {
            Ok(b) => (target.clone(), b),
            Err(e) => {
                eprintln!("error: cannot read '{target}': {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        eprintln!("unknown workload '{target}' and no such trace file; try `rdx list`");
        return ExitCode::FAILURE;
    };

    let mut sopts = rdx_server::SessionOptions::default();
    if let Some(v) = opts.period {
        sopts.period = v;
    }
    if let Some(v) = opts.seed {
        sopts.seed = v;
    }
    if let Some(v) = opts.registers {
        sopts.registers = u32::try_from(v).unwrap_or(u32::MAX);
    }
    sopts.pipelined = !opts.no_pipelined;
    if let Some(v) = opts.decode_buffer {
        sopts.chunk_capacity = v;
    }
    if let Some(v) = opts.decode_ahead {
        sopts.decode_ahead = v;
    }
    let chunk_bytes = usize::try_from(opts.chunk_bytes.unwrap_or(64 << 10)).unwrap_or(usize::MAX);

    let listen = rdx_server::Listen::parse(addr);
    if let Some(n) = opts.aggregate {
        for (flag, given) in [
            ("--crosscheck", opts.crosscheck),
            ("--metrics", opts.metrics),
        ] {
            if given {
                eprintln!(
                    "error: {flag} does not apply to --aggregate mode \
                     (it always crosschecks the server fold bit for bit)"
                );
                return ExitCode::FAILURE;
            }
        }
        return match client_aggregate(&listen, &label, &bytes, sopts, chunk_bytes, n) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let served = (|| -> Result<_, rdx_server::ClientError> {
        let mut client = rdx_server::Client::connect(&listen)?;
        let session = client.open_session(&label, sopts)?;
        for chunk in bytes.chunks(chunk_bytes) {
            client.send_chunk(session, chunk)?;
        }
        let flush = client.flush(session)?;
        let metrics = if opts.metrics {
            Some(client.snapshot_metrics(session)?)
        } else {
            None
        };
        let close = client.close_session(session)?;
        Ok((flush, metrics, close))
    })();
    let (flush, metrics, close) = match served {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut digest = rdx_server::Fnv64::new();
    close.profile.fold_into(&mut digest);
    println!("session         : {label}");
    println!("server          : {listen}");
    println!(
        "sent            : {} B in {} chunk(s) of ≤{chunk_bytes} B",
        bytes.len(),
        bytes.len().div_ceil(chunk_bytes.max(1))
    );
    println!(
        "ingested        : {} B, {} records",
        flush.received_bytes, flush.records
    );
    println!("accesses        : {}", close.profile.accesses);
    println!(
        "samples/traps   : {} / {}",
        close.profile.samples, close.profile.traps
    );
    println!("est. blocks     : {:.0}", close.profile.m_estimate);
    println!("clean decode    : {}", close.clean);
    println!("profile digest  : {:#018x}", digest.value());
    if let Some(m) = &metrics {
        println!("\nserver metrics registry:");
        println!("{}", m.registry_json);
    }
    let mut code = if close.clean {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: server reported an unclean decode");
        ExitCode::FAILURE
    };

    if opts.crosscheck {
        // Profile the identical bytes locally with the identical
        // options; the server's answer must match bit for bit.
        let input = match RdxtInput::from_bytes(label.clone(), bytes) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("error: crosscheck cannot decode local bytes: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (local, _verdict) = RdxRunner::new(sopts.config()).profile_rdxt(input, &sopts.ingest());
        let mut local_digest = rdx_server::Fnv64::new();
        rdx_server::ProfileSnapshot::from_profile(&local).fold_into(&mut local_digest);
        if local_digest.value() == digest.value() {
            println!("crosscheck      : PASS (local digest matches)");
        } else {
            eprintln!(
                "error: crosscheck FAILED — local digest {:#018x} != server digest {:#018x}",
                local_digest.value(),
                digest.value()
            );
            code = ExitCode::FAILURE;
        }
    }
    code
}

/// `rdx client … --aggregate N`: stream the same bytes into `n`
/// sessions, ask the server to fold them with one `SnapshotAggregate`
/// request, and crosscheck the reply bit for bit against a client-side
/// fold of the per-session snapshots in the same session order — the
/// reply contract says the two must be identical. Returns whether the
/// crosscheck passed.
fn client_aggregate(
    listen: &rdx_server::Listen,
    label: &str,
    bytes: &[u8],
    sopts: rdx_server::SessionOptions,
    chunk_bytes: usize,
    n: u64,
) -> Result<bool, rdx_server::ClientError> {
    let mut client = rdx_server::Client::connect(listen)?;
    let mut sessions = Vec::new();
    for i in 0..n {
        let session = client.open_session(&format!("{label}#{i}"), sopts)?;
        for chunk in bytes.chunks(chunk_bytes) {
            client.send_chunk(session, chunk)?;
        }
        client.flush(session)?;
        sessions.push(session);
    }
    let mut expected = rdx_server::ProfileSnapshot::default();
    for &s in &sessions {
        expected.merge(&client.snapshot_histogram(s)?);
    }
    let reply = client.snapshot_aggregate(&sessions)?;
    for &s in &sessions {
        client.close_session(s)?;
    }
    let mut digest = rdx_server::Fnv64::new();
    reply.profile.fold_into(&mut digest);
    println!("sessions        : {} x {label}", reply.sessions);
    println!("accesses        : {}", reply.profile.accesses);
    println!(
        "samples/traps   : {} / {}",
        reply.profile.samples, reply.profile.traps
    );
    println!("aggregate digest: {:#018x}", digest.value());
    let ok = reply.sessions == u32::try_from(n).unwrap_or(u32::MAX) && reply.profile == expected;
    if ok {
        println!("crosscheck      : PASS (server fold matches client-side fold)");
    } else {
        eprintln!("error: aggregate crosscheck FAILED — server fold differs from client-side fold");
    }
    Ok(ok)
}

/// Parsed `rdx sim` options (its flags don't overlap the profiling
/// commands': `--seed` here names a schedule, not a workload).
#[derive(Debug, PartialEq, Eq)]
struct SimArgs {
    seed: u64,
    schedules: usize,
    faults: rdx_sim::FaultSet,
}

impl SimArgs {
    fn parse(args: &[String]) -> Result<SimArgs, String> {
        let mut seed: Option<u64> = None;
        let mut schedules: Option<u64> = None;
        let mut faults: Option<rdx_sim::FaultSet> = None;
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let flag = arg.as_str();
            match flag {
                "--seed" | "--schedules" => {
                    let slot = if flag == "--seed" {
                        &mut seed
                    } else {
                        &mut schedules
                    };
                    if slot.is_some() {
                        return Err(format!("duplicate flag '{flag}'"));
                    }
                    let value = it
                        .next()
                        .ok_or_else(|| format!("{flag} needs a value"))?
                        .parse::<u64>()
                        .map_err(|e| format!("{flag}: {e}"))?;
                    *slot = Some(value);
                }
                "--faults" => {
                    if faults.is_some() {
                        return Err("duplicate flag '--faults'".to_string());
                    }
                    let value = it.next().ok_or("--faults needs a value")?;
                    faults = Some(rdx_sim::FaultSet::parse(value)?);
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        let schedules = match schedules {
            Some(0) => return Err("--schedules must be at least 1 (got 0)".to_string()),
            Some(v) => usize::try_from(v).unwrap_or(usize::MAX),
            None => 64,
        };
        Ok(SimArgs {
            seed: seed.unwrap_or(0),
            schedules,
            faults: faults.unwrap_or_default(),
        })
    }
}

/// Runs the deterministic simulation suite: seeded schedules and fault
/// injection over the pipelined reader, batch dispatch, and server
/// sessions, plus the golden-digest reproduction through the virtual
/// pipeline. A violation prints its replay seed and exits FAILURE.
fn sim_cmd(args: &[String]) -> ExitCode {
    let parsed = match SimArgs::parse(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = rdx_sim::SimConfig {
        seed: parsed.seed,
        schedules: parsed.schedules,
        faults: parsed.faults,
    };
    println!(
        "sim: base seed {}, {} schedules per scenario",
        cfg.seed, cfg.schedules
    );
    match rdx_sim::run_suite(&cfg) {
        Ok(report) => {
            print!("{report}");
            println!(
                "sim: {} schedules passed, no invariant violations",
                report.total_schedules()
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("error: {v}");
            ExitCode::FAILURE
        }
    }
}

/// Counters that must read zero after a static estimate — the proof
/// that `rdx-static` neither generated, scanned, decoded, nor profiled
/// a single access. The snapshot is taken before any `--exact`
/// ground-truth run, which legitimately consumes a stream.
const STATIC_ZERO_COUNTERS: &[&str] = &[
    "rdx.machine.fastpath.scanned_accesses",
    "rdx.profiler.samples",
    "rdx.profiler.traps",
    "rdx.runner.accesses",
    "rdx.runner.profiles",
    "rdx.sharded.accesses",
    "rdx.trace.decode.accesses",
    "rdx.trace.encode.events",
];

/// Estimates a kernel's reuse profile symbolically via `rdx-static` —
/// no access is generated or executed. `--mrc` feeds the estimate into
/// `rdx-cache::predict`; `--exact` compares against exact Olken ground
/// truth; `--metrics` proves the zero-access claim by crosschecking
/// that every dynamic-path counter stayed zero. Non-affine workloads
/// exit FAILURE with a typed explanation, never a wrong profile.
fn static_cmd(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    if name.starts_with("--") {
        return usage();
    }
    let opts = match Opts::parse(&args[1..], STATIC_FLAGS) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.metrics {
        rdx_metrics::reset();
    }
    let params = opts.params();
    let stat = match rdx_static::estimate(name, &params) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            if matches!(e, rdx_static::StaticError::NotAffine { .. }) {
                eprintln!(
                    "note: static models exist for: {}",
                    rdx_static::affine_kernels().join(", ")
                );
            }
            return ExitCode::FAILURE;
        }
    };
    // Snapshot now, not at exit: the zero-access proof covers the
    // estimate itself, not a later --exact comparison run.
    let snap = opts.metrics.then(rdx_metrics::snapshot);
    let csv = opts.csv;
    if !csv {
        println!("kernel          : {} (static estimate)", stat.kernel);
        println!("modeled accesses: {}", stat.accesses);
        println!("period          : {} accesses", stat.period);
        println!("footprint       : {} blocks", stat.footprint);
        println!("stores          : {}", stat.stores);
        println!("reuse classes   : {}", stat.classes);
        println!("\nstatic reuse-distance histogram (weights normalized):");
    }
    print_histogram(stat.rd.as_histogram(), csv);

    if opts.mrc {
        let levels = rdx_cache::hierarchy();
        // Word-granular estimate: 8-byte blocks, like Granularity::WORD.
        let preds = rdx_cache::predict::miss_ratios(&stat.rd, &levels, 8);
        println!("\npredicted miss ratios (rdx-cache hierarchy, full associativity):");
        for lvl in &preds {
            println!(
                "  {:4} {:>10} blocks  {:.4}",
                lvl.name, lvl.capacity_blocks, lvl.miss_ratio
            );
        }
    }

    let mut code = ExitCode::SUCCESS;
    if opts.exact {
        let spec = by_name(name).expect("affine kernels are registry members");
        let exact = ExactProfile::measure(spec.stream(&params), Granularity::WORD, Binning::log2());
        let acc = histogram_intersection(stat.rd.as_histogram(), exact.rd.as_histogram())
            .expect("same binning");
        println!("\nexact (ground-truth) histogram:");
        print_histogram(exact.rd.as_histogram(), csv);
        println!("\nstatic accuracy vs ground truth: {:.1}%", acc * 100.0);
        if stat.footprint != exact.distinct_blocks {
            eprintln!(
                "error: static footprint {} != exact distinct blocks {}",
                stat.footprint, exact.distinct_blocks
            );
            code = ExitCode::FAILURE;
        }
    }
    if let Some(snap) = snap {
        let metrics_code = emit_static_metrics(&snap);
        if code == ExitCode::SUCCESS {
            code = metrics_code;
        }
    }
    code
}

/// Prints the `rdx static --metrics` JSON report: the static counters
/// plus the zero-access crosscheck — every dynamic-path counter in
/// [`STATIC_ZERO_COUNTERS`] must read zero, or the trace-free claim is
/// false and the command FAILs.
fn emit_static_metrics(snap: &rdx_metrics::Snapshot) -> ExitCode {
    use std::fmt::Write as _;
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let matched = !rdx_metrics::enabled()
        || (counter("rdx.static.estimates") == 1
            && STATIC_ZERO_COUNTERS.iter().all(|n| counter(n) == 0));

    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"enabled\":{},\"static\":{{\"estimates\":{},\"rejected\":{}}},",
        rdx_metrics::enabled(),
        counter("rdx.static.estimates"),
        counter("rdx.static.rejected")
    );
    out.push_str("\"zero_access_crosscheck\":[");
    for (i, name) in STATIC_ZERO_COUNTERS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let got = counter(name);
        let _ = write!(
            out,
            "{{\"counter\":\"{name}\",\"expected\":0,\"observed\":{got},\"matched\":{}}}",
            !rdx_metrics::enabled() || got == 0
        );
    }
    let _ = write!(
        out,
        "],\"matched\":{matched},\"registry\":{}",
        snap.to_json()
    );
    out.push('}');

    println!("\nmetrics report:");
    println!("{out}");
    if !rdx_metrics::enabled() {
        eprintln!("note: this binary was built without the `metrics` feature; probes are no-ops");
        return ExitCode::SUCCESS;
    }
    if matched {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "error: a dynamic-path counter is nonzero; the static estimate is not trace-free"
        );
        ExitCode::FAILURE
    }
}

fn print_histogram(h: &Histogram, csv: bool) {
    let n = h.normalized();
    let sep = if csv { "," } else { "  " };
    for b in n.buckets() {
        let bar_len = (b.weight * 50.0).round() as usize;
        if csv {
            println!("{}{sep}{}{sep}{:.6}", b.range.lo, b.range.hi, b.weight);
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                b.range.lo,
                b.range.hi,
                b.weight * 100.0,
                "#".repeat(bar_len)
            );
        }
    }
    if n.infinite_weight() > 0.0 {
        if csv {
            println!("inf{sep}inf{sep}{:.6}", n.infinite_weight());
        } else {
            println!(
                "  [{:>10}, {:>10})  {:>7.3}%  {}",
                "cold",
                "",
                n.infinite_weight() * 100.0,
                "#".repeat((n.infinite_weight() * 50.0).round() as usize)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes access to the process-global metrics registry: every
    /// test that decodes traces or profiles must hold this so the
    /// `--metrics` crosschecks see only their own increments.
    static METRICS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn metrics_guard() -> std::sync::MutexGuard<'static, ()> {
        METRICS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_string()).collect()
    }

    #[test]
    fn parses_left_to_right() {
        let opts = Opts::parse(
            &to_args(&["--accesses", "1000", "--exact", "--jobs", "4"]),
            PROFILE_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.accesses, Some(1000));
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.exact);
        assert!(!opts.csv);
    }

    #[test]
    fn rejects_unknown_flag() {
        let err = Opts::parse(&to_args(&["--bogus", "3"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn rejects_duplicate_value_flag() {
        let err = Opts::parse(
            &to_args(&["--period", "512", "--period", "1024"]),
            PROFILE_FLAGS,
        )
        .unwrap_err();
        assert!(err.contains("duplicate flag '--period'"), "{err}");
    }

    #[test]
    fn rejects_duplicate_boolean_flag() {
        let err = Opts::parse(&to_args(&["--csv", "--csv"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag '--csv'"), "{err}");
    }

    #[test]
    fn rejects_missing_value() {
        let err = Opts::parse(&to_args(&["--accesses"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn rejects_flag_as_value() {
        // A flag immediately following a value flag is consumed as its
        // value and fails to parse — it is never silently skipped.
        let err = Opts::parse(&to_args(&["--accesses", "--csv"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("--accesses"), "{err}");
    }

    #[test]
    fn suite_flags_exclude_registers() {
        let err = Opts::parse(&to_args(&["--registers", "2"]), SUITE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn metrics_flag_parses_for_both_commands() {
        for flags in [PROFILE_FLAGS, SUITE_FLAGS] {
            let opts = Opts::parse(&to_args(&["--metrics"]), flags).unwrap();
            assert!(opts.metrics);
        }
        let err = Opts::parse(&to_args(&["--metrics", "--metrics"]), SUITE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag '--metrics'"), "{err}");
    }

    #[test]
    fn decode_flags_parse_and_conflict() {
        for flags in [PROFILE_FLAGS, SUITE_FLAGS] {
            let opts = Opts::parse(
                &to_args(&[
                    "--no-pipelined",
                    "--decode-buffer",
                    "4096",
                    "--decode-ahead",
                    "3",
                ]),
                flags,
            )
            .unwrap();
            assert!(opts.no_pipelined);
            assert_eq!(opts.decode_buffer, Some(4096));
            assert_eq!(opts.decode_ahead, Some(3));
            let ingest = opts.ingest();
            assert!(!ingest.pipelined);
            assert_eq!(ingest.chunk_capacity, 4096);
            assert_eq!(ingest.decode_ahead, 3);
        }
        let err =
            Opts::parse(&to_args(&["--pipelined", "--no-pipelined"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("conflicts"), "{err}");
    }

    #[test]
    fn kernel_flag_parses_and_validates() {
        for flags in [PROFILE_FLAGS, SUITE_FLAGS, TRACE_FLAGS] {
            for (value, want) in [
                ("auto", KernelChoice::Auto),
                ("scalar", KernelChoice::Scalar),
                ("swar", KernelChoice::Swar),
                ("simd", KernelChoice::Simd),
            ] {
                let opts = Opts::parse(&to_args(&["--kernel", value]), flags).unwrap();
                assert_eq!(opts.kernel, Some(want));
            }
        }
        let err = Opts::parse(&to_args(&["--kernel", "avx512"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("--kernel must be"), "{err}");
        let err = Opts::parse(&to_args(&["--kernel"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = Opts::parse(
            &to_args(&["--kernel", "swar", "--kernel", "scalar"]),
            PROFILE_FLAGS,
        )
        .unwrap_err();
        assert!(err.contains("duplicate flag '--kernel'"), "{err}");
        // The choice threads into both the machine config and ingestion.
        let opts = Opts::parse(&to_args(&["--kernel", "scalar"]), PROFILE_FLAGS).unwrap();
        assert_eq!(opts.config().machine.scan_kernel, KernelChoice::Scalar);
        assert_eq!(opts.ingest().decode_kernel, KernelChoice::Scalar);
    }

    #[test]
    fn trace_cmd_accepts_kernel_flag() {
        let _guard = metrics_guard();
        let (path, _) = write_sample_trace("trace-kernel", 5_000);
        for kernel in ["scalar", "swar", "auto", "simd"] {
            let code = trace_cmd(&to_args(&[&path.display().to_string(), "--kernel", kernel]));
            assert_eq!(code, ExitCode::SUCCESS, "--kernel {kernel}");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_flags_reject_profile_flags() {
        let err = Opts::parse(&to_args(&["--period", "512"]), TRACE_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        let opts = Opts::parse(
            &to_args(&["--decode-buffer", "128", "--metrics"]),
            TRACE_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.decode_buffer, Some(128));
        assert!(opts.metrics);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rdx-cli-test-{}-{name}", std::process::id()))
    }

    fn write_sample_trace(name: &str, accesses: u64) -> (std::path::PathBuf, Vec<u8>) {
        let trace = rdx_trace::Trace::from_addresses(name, (0..accesses).map(|i| (i % 257) * 64));
        let bytes = rdx_trace::io::to_bytes(&trace).to_vec();
        let path = temp_path(&format!("{name}.rdxt"));
        std::fs::write(&path, &bytes).unwrap();
        (path, bytes)
    }

    #[test]
    fn trace_cmd_accepts_valid_and_rejects_corrupt_files() {
        let _guard = metrics_guard();
        let trace =
            rdx_trace::Trace::from_addresses("roundtrip", (0..500u64).map(|i| (i % 37) * 8));
        let bytes = rdx_trace::io::to_bytes(&trace);
        let good = temp_path("good.rdxt");
        std::fs::write(&good, &bytes).unwrap();
        assert_eq!(trace_cmd(&[good.display().to_string()]), ExitCode::SUCCESS);

        // Truncating the record stream must yield a decode error, not a
        // panic — the CLI recovers and reports the position reached.
        let cut = temp_path("cut.rdxt");
        std::fs::write(&cut, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(trace_cmd(&[cut.display().to_string()]), ExitCode::FAILURE);

        let _ = std::fs::remove_file(good);
        let _ = std::fs::remove_file(cut);
    }

    #[test]
    fn trace_cmd_metrics_crosscheck_passes() {
        let _guard = metrics_guard();
        let (path, _) = write_sample_trace("trace-metrics", 20_000);
        // A small decode buffer forces many chunks; the counter
        // crosscheck must still match the validator's own count.
        let code = trace_cmd(&to_args(&[
            &path.display().to_string(),
            "--decode-buffer",
            "1000",
            "--metrics",
        ]));
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn profile_accepts_trace_files_and_flags_corruption() {
        let _guard = metrics_guard();
        let (path, bytes) = write_sample_trace("profile-file", 30_000);
        let arg = path.display().to_string();
        for extra in [
            &["--period", "512", "--csv"][..],
            &["--no-pipelined", "--csv"][..],
        ] {
            let mut args = vec![arg.clone()];
            args.extend(extra.iter().map(|s| (*s).to_string()));
            assert_eq!(profile(&args), ExitCode::SUCCESS, "{extra:?}");
        }
        // Workload-only flags are rejected for file inputs.
        assert_eq!(profile(&to_args(&[&arg, "--exact"])), ExitCode::FAILURE);
        // A truncated file profiles its prefix but exits FAILURE.
        let cut = temp_path("profile-cut.rdxt");
        std::fs::write(&cut, &bytes[..bytes.len() - 7]).unwrap();
        assert_eq!(
            profile(&to_args(&[&cut.display().to_string(), "--csv"])),
            ExitCode::FAILURE
        );
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(cut);
    }

    #[test]
    fn profile_rejects_decode_flags_for_workloads() {
        let code = profile(&to_args(&["zipf", "--pipelined", "--accesses", "1000"]));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn suite_profiles_trace_files_and_flags_truncation() {
        let _guard = metrics_guard();
        let (a, _) = write_sample_trace("suite-a", 20_000);
        let (b, bytes) = write_sample_trace("suite-b", 25_000);
        let args = to_args(&[
            &a.display().to_string(),
            &b.display().to_string(),
            "--period",
            "512",
            "--csv",
            "--jobs",
            "2",
        ]);
        assert_eq!(suite_cmd(&args), ExitCode::SUCCESS);

        // One corrupt member fails the whole run.
        let cut = temp_path("suite-cut.rdxt");
        std::fs::write(&cut, &bytes[..bytes.len() - 9]).unwrap();
        let args = to_args(&[
            &a.display().to_string(),
            &cut.display().to_string(),
            "--csv",
        ]);
        assert_eq!(suite_cmd(&args), ExitCode::FAILURE);

        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
        let _ = std::fs::remove_file(cut);
    }

    #[test]
    fn numeric_flags_validated_at_parse_time() {
        for (args, needle) in [
            (
                &["--period", "0"][..],
                "--period must be at least 1 (got 0)",
            ),
            (
                &["--registers", "0"][..],
                "--registers must be between 1 and 4 (got 0)",
            ),
            (
                &["--registers", "7"][..],
                "--registers must be between 1 and 4 (got 7)",
            ),
            (&["--jobs", "0"][..], "--jobs must be at least 1 (got 0)"),
            (
                &["--decode-buffer", "0"][..],
                "--decode-buffer must be at least 1 (got 0)",
            ),
            (
                &["--decode-ahead", "1"][..],
                "--decode-ahead must be at least 2 (got 1)",
            ),
            (
                &["--decode-ahead", "0"][..],
                "--decode-ahead must be at least 2 (got 0)",
            ),
        ] {
            let err = Opts::parse(&to_args(args), PROFILE_FLAGS).unwrap_err();
            assert_eq!(err, needle);
        }
        let err = Opts::parse(&to_args(&["--chunk-bytes", "0"]), CLIENT_FLAGS).unwrap_err();
        assert_eq!(err, "--chunk-bytes must be at least 1 (got 0)");
        // In-range values still parse.
        let opts = Opts::parse(
            &to_args(&["--period", "1", "--registers", "4", "--decode-ahead", "2"]),
            PROFILE_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.period, Some(1));
        assert_eq!(opts.registers, Some(4));
    }

    #[test]
    fn client_streams_to_server_and_crosschecks() {
        let _guard = metrics_guard();
        let handle = rdx_server::Server::bind(
            &rdx_server::Listen::parse("127.0.0.1:0"),
            rdx_server::ServerOptions::default(),
        )
        .unwrap();
        let addr = handle.listen().to_string();
        // Generated workload, odd chunk size, crosscheck against the
        // local profiling path: the digests must agree bit for bit.
        let code = client_cmd(&to_args(&[
            &addr,
            "zipf",
            "--accesses",
            "20000",
            "--elements",
            "400",
            "--period",
            "512",
            "--seed",
            "7",
            "--chunk-bytes",
            "9973",
            "--crosscheck",
        ]));
        assert_eq!(code, ExitCode::SUCCESS);

        // A trace file streams and crosschecks too.
        let (path, _) = write_sample_trace("client-file", 10_000);
        let code = client_cmd(&to_args(&[
            &addr,
            &path.display().to_string(),
            "--crosscheck",
        ]));
        assert_eq!(code, ExitCode::SUCCESS);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn client_rejects_bad_targets_and_dead_servers() {
        // Unknown workload/file never even connects.
        let code = client_cmd(&to_args(&["127.0.0.1:1", "no-such-workload"]));
        assert_eq!(code, ExitCode::FAILURE);
        // A server that isn't there is an error, not a hang or panic.
        let code = client_cmd(&to_args(&["127.0.0.1:9", "zipf", "--accesses", "100"]));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn sim_args_parse_and_validate() {
        let a = SimArgs::parse(&to_args(&["--seed", "42", "--schedules", "8"])).unwrap();
        assert_eq!(a.seed, 42);
        assert_eq!(a.schedules, 8);
        assert_eq!(a.faults, rdx_sim::FaultSet::all());

        let a = SimArgs::parse(&to_args(&["--faults", "truncate,worker-death"])).unwrap();
        assert!(a.faults.truncate && a.faults.worker_death);
        assert!(!a.faults.overlong && !a.faults.batch_panic && !a.faults.session_disorder);

        for (args, needle) in [
            (&["--faults", "bogus"][..], "unknown fault class"),
            (&["--schedules", "0"][..], "--schedules must be at least 1"),
            (&["--seed", "1", "--seed", "2"][..], "duplicate flag"),
            (&["--period", "512"][..], "unknown flag"),
        ] {
            let err = SimArgs::parse(&to_args(args)).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn sim_cmd_runs_a_small_sweep() {
        // A tiny schedule count keeps this fast; the full sweep runs in
        // rdx-sim's own tests and the CI sim leg.
        let code = sim_cmd(&to_args(&["--seed", "1", "--schedules", "2"]));
        assert_eq!(code, ExitCode::SUCCESS);
        let code = sim_cmd(&to_args(&["--bogus"]));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn static_flags_reject_dynamic_tuning() {
        for args in [
            &["--period", "512"][..],
            &["--registers", "2"][..],
            &["--jobs", "4"][..],
            &["--kernel", "swar"][..],
            &["--pipelined"][..],
        ] {
            let err = Opts::parse(&to_args(args), STATIC_FLAGS).unwrap_err();
            assert!(err.contains("unknown flag"), "{args:?}: {err}");
        }
        let opts = Opts::parse(
            &to_args(&["--accesses", "5000", "--elements", "300", "--mrc"]),
            STATIC_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.accesses, Some(5000));
        assert!(opts.mrc);
    }

    #[test]
    fn zero_accesses_and_elements_are_flag_errors() {
        // Params::with_accesses(0) would panic downstream; the boundary
        // rejects it as a per-parameter error first.
        for flags in [PROFILE_FLAGS, SUITE_FLAGS, STATIC_FLAGS] {
            let err = Opts::parse(&to_args(&["--accesses", "0"]), flags).unwrap_err();
            assert_eq!(err, "--accesses must be at least 1 (got 0)");
            let err = Opts::parse(&to_args(&["--elements", "0"]), flags).unwrap_err();
            assert_eq!(err, "--elements must be at least 1 (got 0)");
        }
    }

    #[test]
    fn static_cmd_estimates_affine_and_rejects_non_affine() {
        let _guard = metrics_guard();
        let code = static_cmd(&to_args(&[
            "stream_triad",
            "--accesses",
            "60000",
            "--elements",
            "3000",
            "--exact",
            "--mrc",
            "--csv",
        ]));
        assert_eq!(code, ExitCode::SUCCESS);

        // Non-affine workloads are a typed refusal, not a wrong answer.
        let code = static_cmd(&to_args(&["pointer_chase", "--accesses", "1000"]));
        assert_eq!(code, ExitCode::FAILURE);
        let code = static_cmd(&to_args(&["no-such-kernel"]));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn static_cmd_metrics_prove_zero_dynamic_accesses() {
        let _guard = metrics_guard();
        // The crosscheck fails the command if any trace/profiler/runner
        // counter moved — the trace-free claim, enforced.
        let code = static_cmd(&to_args(&[
            "matmul_naive",
            "--accesses",
            "50000",
            "--elements",
            "768",
            "--metrics",
        ]));
        assert_eq!(code, ExitCode::SUCCESS);
        if rdx_metrics::enabled() {
            let snap = rdx_metrics::snapshot();
            assert_eq!(snap.counter("rdx.static.estimates"), Some(1));
            for name in STATIC_ZERO_COUNTERS {
                assert_eq!(snap.counter(name).unwrap_or(0), 0, "{name}");
            }
        }
    }

    #[test]
    fn save_out_and_merge_flags_parse() {
        let opts = Opts::parse(&to_args(&["--save", "p.rdxp"]), PROFILE_FLAGS).unwrap();
        assert_eq!(opts.save.as_deref(), Some("p.rdxp"));
        let err = Opts::parse(&to_args(&["--save"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err =
            Opts::parse(&to_args(&["--save", "a", "--save", "b"]), PROFILE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag '--save'"), "{err}");

        let opts = Opts::parse(&to_args(&["--merge", "--out", "fleet.rdxp"]), SUITE_FLAGS).unwrap();
        assert!(opts.merge);
        assert_eq!(opts.out.as_deref(), Some("fleet.rdxp"));

        // merge takes only aggregation flags; profiling knobs are rejected.
        for args in [&["--period", "512"][..], &["--save", "x"][..]] {
            let err = Opts::parse(&to_args(args), MERGE_FLAGS).unwrap_err();
            assert!(err.contains("unknown flag"), "{args:?}: {err}");
        }
        let opts = Opts::parse(
            &to_args(&["--out", "f", "--jobs", "2", "--kernel", "swar"]),
            MERGE_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.out.as_deref(), Some("f"));
        assert_eq!(opts.kernel, Some(KernelChoice::Swar));
    }

    #[test]
    fn profile_save_then_merge_round_trips() {
        let _guard = metrics_guard();
        let shard_a = temp_path("shard-a.rdxp").display().to_string();
        let shard_b = temp_path("shard-b.rdxp").display().to_string();
        let fleet = temp_path("fleet.rdxp").display().to_string();
        for (path, seed) in [(&shard_a, "3"), (&shard_b, "4")] {
            let code = profile(&to_args(&[
                "zipf",
                "--accesses",
                "20000",
                "--elements",
                "400",
                "--period",
                "512",
                "--seed",
                seed,
                "--csv",
                "--save",
                path,
            ]));
            assert_eq!(code, ExitCode::SUCCESS);
        }
        let code = merge_cmd(&to_args(&[
            &shard_a, &shard_b, "--csv", "--jobs", "2", "--out", &fleet,
        ]));
        assert_eq!(code, ExitCode::SUCCESS);

        // The written fleet profile is exactly merge_batch of the parts.
        let a = rdx_core::decode_profile(&std::fs::read(&shard_a).unwrap()).unwrap();
        let b = rdx_core::decode_profile(&std::fs::read(&shard_b).unwrap()).unwrap();
        let merged = rdx_core::decode_profile(&std::fs::read(&fleet).unwrap()).unwrap();
        let direct = rdx_core::merge_batch(vec![a.clone(), b.clone()], 1)
            .unwrap()
            .unwrap();
        assert_eq!(merged, direct);
        assert_eq!(merged.accesses, a.accesses + b.accesses);

        for p in [shard_a, shard_b, fleet] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_cmd_reports_typed_errors() {
        let _guard = metrics_guard();
        // No inputs at all.
        assert_eq!(merge_cmd(&to_args(&["--csv"])), ExitCode::FAILURE);
        // Missing file.
        assert_eq!(
            merge_cmd(&to_args(&["/no/such/profile.rdxp"])),
            ExitCode::FAILURE
        );
        // Not an RDXP payload: recoverable decode error, not a panic.
        let junk = temp_path("junk.rdxp");
        std::fs::write(&junk, b"definitely not a profile").unwrap();
        assert_eq!(merge_cmd(&[junk.display().to_string()]), ExitCode::FAILURE);

        // Two structurally valid profiles with different binnings: the
        // merge itself fails with a typed incompatibility.
        let good = temp_path("good.rdxp");
        let odd = temp_path("odd.rdxp");
        let params = rdx_workloads::Params::default()
            .with_accesses(5_000)
            .with_elements(100);
        let p = RdxRunner::new(RdxConfig::default().with_period(512))
            .profile(by_name("zipf").unwrap().stream(&params));
        std::fs::write(&good, rdx_core::encode_profile(&p)).unwrap();
        let mut q = p.clone();
        q.rd = rdx_histogram::RdHistogram::new(Binning::linear(64));
        std::fs::write(&odd, rdx_core::encode_profile(&q)).unwrap();
        assert_eq!(
            merge_cmd(&to_args(&[
                &good.display().to_string(),
                &odd.display().to_string(),
                "--csv",
            ])),
            ExitCode::FAILURE
        );
        for p in [junk, good, odd] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn suite_merge_emits_one_fleet_profile() {
        let _guard = metrics_guard();
        let fleet = temp_path("suite-fleet.rdxp").display().to_string();
        let code = suite_cmd(&to_args(&[
            "--accesses",
            "4000",
            "--elements",
            "200",
            "--period",
            "512",
            "--csv",
            "--merge",
            "--out",
            &fleet,
        ]));
        assert_eq!(code, ExitCode::SUCCESS);
        let merged = rdx_core::decode_profile(&std::fs::read(&fleet).unwrap()).unwrap();
        // One fleet profile covering every registry workload's accesses.
        assert_eq!(merged.accesses, 4000 * suite().len() as u64);
        let _ = std::fs::remove_file(fleet);

        // --out without --merge is a flag error.
        assert_eq!(suite_cmd(&to_args(&["--out", "x.rdxp"])), ExitCode::FAILURE);
    }

    #[test]
    fn metrics_crosscheck_rows_sum_profiles() {
        let _guard = metrics_guard();
        let params = rdx_workloads::Params::default()
            .with_accesses(30_000)
            .with_elements(400);
        let runner = RdxRunner::new(RdxConfig::default().with_period(512));
        let rows: Vec<(String, RdxProfile)> = ["zipf", "stream_triad"]
            .iter()
            .map(|n| {
                (
                    (*n).to_string(),
                    runner.profile(by_name(n).unwrap().stream(&params)),
                )
            })
            .collect();
        let checks = crosscheck_rows(&rows);
        let samples: u64 = rows.iter().map(|(_, p)| p.samples).sum();
        assert!(checks.contains(&("rdx.profiler.samples", samples)));
        assert!(samples > 0);
    }
}
