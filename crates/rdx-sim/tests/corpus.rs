//! Fixed-seed regression corpus: one pinned scenario per bug the
//! simulator was built to catch, plus determinism pins.
//!
//! Every entry names a specific historical failure mode and replays it
//! under fixed seeds forever. When one of these fails, the seed in the
//! violation message reproduces the exact schedule — `rdx sim --seed N`
//! from the command line, or the same call here under a debugger.

use rdx_sim::fault::InputFault;
use rdx_sim::{batch, pipeline, session, FaultSet, SimConfig};

/// Bug: `reap_worker` blamed the *input* (`TraceError::Truncated`) when
/// the decoder thread died without delivering a verdict. The fix types
/// it `Internal`. Every seed here schedules a decoder death; the
/// invariant inside the runner rejects any non-`Internal` report.
#[test]
fn decoder_death_is_internal_not_truncated() {
    for seed in [0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144] {
        pipeline::run_worker_death_seeded(seed).expect("death typed Internal");
    }
}

/// Bug class: the decode-ahead pipeline reordering or dropping accesses
/// under uncommon thread interleavings. Exhaustive over the small
/// scenario — every schedule, not a sample.
#[test]
fn every_small_pipeline_schedule_matches_the_oracle() {
    let n = pipeline::explore_clean_exhaustive(8192).expect("all schedules match oracle");
    assert!(n > 10, "schedule tree collapsed to {n} schedules");
}

/// Corrupt input must surface as decoded-prefix-then-typed-error under
/// any schedule, for both corruption classes.
#[test]
fn corrupt_input_delivers_prefix_then_typed_error() {
    for seed in [7, 11, 42, 1009, 65537] {
        pipeline::run_faulted_seeded(seed, InputFault::TruncateTail).expect("truncate invariant");
        pipeline::run_faulted_seeded(seed, InputFault::OverlongVarint).expect("overlong invariant");
    }
}

/// Bug: `profile_batch`'s result channel was unbounded, hiding any
/// backpressure deadlock the bounded fix could have introduced. The sim
/// proves the bound (capacity = worker count) quiesces under *every*
/// schedule of the small scenario and under seeded large ones.
#[test]
fn bounded_batch_queue_never_deadlocks() {
    let n = batch::explore_exhaustive_small(8192).expect("every schedule quiesces");
    assert!(n > 10, "schedule tree collapsed to {n} schedules");
    for seed in 0..32 {
        batch::run_seeded(seed, true).expect("seeded batch schedule quiesces");
    }
}

/// Panic propagation is task-ordered: the lowest-indexed failed task's
/// payload is the one re-raised, under every claim interleaving.
#[test]
fn batch_panic_propagation_is_task_ordered() {
    for seed in [3, 17, 2024, 9000] {
        batch::run_seeded(seed, true).expect("task-order propagation");
    }
}

/// Session invariants: clean streams ack byte counts exactly; corrupt
/// streams fail typed, sticky, and dirty-close; disorderly command
/// streams get NotReady (not a crash) and silence after Close.
#[test]
fn session_failure_ordering_is_pinned() {
    for seed in [0, 9, 77, 512, 4096] {
        session::run_clean_seeded(seed).expect("clean session");
        session::run_corrupt_seeded(seed).expect("corrupt session");
        session::run_disorder_seeded(seed).expect("disorder session");
    }
}

/// Determinism pin: the same seed must replay to the same outcome —
/// byte-for-byte equal violations or byte-for-byte equal success.
#[test]
fn same_seed_replays_identically() {
    let cfg = SimConfig {
        seed: 1234,
        schedules: 8,
        faults: FaultSet::all(),
    };
    let a = rdx_sim::run_suite(&cfg).expect("suite passes");
    let b = rdx_sim::run_suite(&cfg).expect("suite passes");
    assert_eq!(a.scenarios, b.scenarios);
    assert_eq!(a.golden_digest, b.golden_digest);
}

/// Smoke: the full suite at a small schedule count, exactly what the CI
/// sim leg runs before the randomized sweep.
#[test]
fn run_suite_smoke() {
    let report = rdx_sim::run_suite(&SimConfig {
        seed: 0,
        schedules: 4,
        faults: FaultSet::all(),
    })
    .expect("full suite passes");
    assert_eq!(report.golden_digest, rdx_sim::REGISTRY_GOLDEN_DIGEST);
    assert!(report.total_schedules() > 0);
}
